//! The served frontend: the eSSD pool behind real network connections.
//!
//! Every workload so far was generated in-process; the paper's contract,
//! though, is about how *tenants'* traffic meets elastic SSDs — over
//! connections, with slow clients, bursts and overload. This crate
//! exposes the [`SharedDevice`](uc_blockdev::SharedDevice) session seam
//! as a storage target, std-only (hand-rolled threads, `std::net` TCP
//! and Unix-domain sockets):
//!
//! * **wire** ([`Frame`]) — the `uc.wire.v1` request/response framing on
//!   the `uc-persist` record envelope (magic, version, kind tag,
//!   CRC-32): OPEN_SESSION / SUBMIT_BATCH / COMPLETIONS / STATS / CLOSE,
//!   plus typed BUSY backpressure and ERR frames. Corruption closes the
//!   connection with a typed error; it never panics the server;
//! * **pool** ([`ServePool`]) — the served device lanes: per-connection
//!   sessions with a bounded submission ring, overload shedding above an
//!   in-flight ceiling, optional per-session token-bucket rate budgets,
//!   and the device-side [`ServeReport`];
//! * **server** ([`serve_sessions`]) — thread-per-connection serving
//!   with a bounded accept count; the device mutex is never held across
//!   a socket write, so a stalled reader cannot block other sessions;
//! * **client** ([`RemoteDevice`]) — a
//!   [`BlockDevice`](uc_blockdev::BlockDevice) over a connection, so the
//!   trace replayer (`trace --remote`) becomes the load generator
//!   unchanged, with ring-full splits and overload backoff built in.
//!
//! The acceptance bar is determinism: a replay driven through a loopback
//! server produces a device-side report **equal** (and byte-identically
//! rendered) to the same replay run in-process — the network adds
//! wall-clock latency but must not perturb the simulated schedule.
//!
//! # Example: loopback serving
//!
//! ```
//! use std::sync::Arc;
//! use uc_blockdev::{BlockDevice, IoRequest};
//! use uc_serve::{Endpoint, Listener, PoolConfig, RemoteDevice, ServePool, serve_sessions};
//! use uc_sim::SimTime;
//! use uc_ssd::{Ssd, SsdConfig};
//!
//! let pool = Arc::new(ServePool::new(
//!     vec![("ssd".to_string(),
//!           Box::new(Ssd::new(SsdConfig::samsung_970_pro(256 << 20))) as _)],
//!     PoolConfig::default(),
//! ));
//! let listener = Listener::bind(&Endpoint::parse("tcp:127.0.0.1:0").unwrap())?;
//! let endpoint = listener.local_endpoint()?;
//! let server = {
//!     let pool = Arc::clone(&pool);
//!     std::thread::spawn(move || serve_sessions(&listener, &pool, 1))
//! };
//!
//! let mut dev = RemoteDevice::open(&endpoint, 0)?;
//! let done = dev.submit(&IoRequest::write(0, 4096, SimTime::ZERO)).unwrap();
//! assert!(done > SimTime::ZERO);
//! dev.close()?;
//! server.join().unwrap()?;
//! assert_eq!(pool.report().total_ios(), 1);
//! # Ok::<(), std::io::Error>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod client;
mod net;
mod pool;
mod server;
mod wire;

pub use client::RemoteDevice;
pub use net::{Endpoint, Listener, Stream};
pub use pool::{
    DeviceLaneReport, InflightGuard, PoolConfig, PoolDevice, PoolSession, Rejection, ServePool,
    ServeReport,
};
pub use server::{serve_connection, serve_sessions};
pub use wire::{BusyReason, Frame, WireStats, ALL_KINDS};

/// Upper bound on the request (and completion) count one frame may
/// claim, checked before any allocation: a hostile length field cannot
/// balloon server memory. Far above any real doorbell ring.
pub const MAX_FRAME_REQUESTS: u64 = 1 << 16;
