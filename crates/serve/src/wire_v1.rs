//! The legacy `uc.wire.v1` frame vocabulary.
//!
//! v1 is the single-lane, thread-per-connection protocol PR 8 shipped.
//! The live protocol is [`uc.wire.v2`](crate::wire); v1 remains fully
//! decodable so the version negotiation in v2's `OPEN` can recognize an
//! old client and reject it with a typed `UnsupportedVersion` instead of
//! a checksum error — and so archived captures still parse.
//!
//! Every frame rides the `uc-persist` record envelope (8-byte magic,
//! format version, kind tag, payload, CRC-32), so corruption anywhere on
//! the connection — a truncated read, a flipped bit, a foreign kind tag —
//! decodes to a typed [`DecodeError`], never a panic. The frame kinds:
//!
//! | kind tag                 | direction | payload |
//! |--------------------------|-----------|---------|
//! | `uc.wire.open.v1`        | C → S     | device index |
//! | `uc.wire.open-ok.v1`     | S → C     | session id, device name, capacity, logical block |
//! | `uc.wire.submit.v1`      | C → S     | session id, sequence number, request list |
//! | `uc.wire.completions.v1` | S → C     | sequence number, completion list |
//! | `uc.wire.busy.v1`        | S → C     | sequence number, backpressure reason |
//! | `uc.wire.stats.v1`       | C → S     | session id |
//! | `uc.wire.stats-ok.v1`    | S → C     | session ledger + queue head |
//! | `uc.wire.close.v1`       | C → S     | (empty) |
//! | `uc.wire.close-ok.v1`    | S → C     | (empty) |
//! | `uc.wire.err.v1`         | S → C     | optional [`IoError`], diagnostic message |
//!
//! A submit frame's request list is validated on decode: submit instants
//! must be non-decreasing (the [`IoBatch`](uc_blockdev::IoBatch) queue
//! discipline), so a hostile client cannot push a time-travelling batch
//! past the wire layer and trip a server-side debug assertion.

use crate::wire::{BusyReason, WireStats};
use std::io::{Read, Write};
use uc_blockdev::{Completion, IoError, IoKind, IoRequest, SessionStats};
use uc_persist::{encode_record, read_record_from, DecodeError, Decoder, Encoder};
use uc_sim::SimTime;

/// One `uc.wire.v1` frame.
#[derive(Debug, Clone, PartialEq)]
pub enum FrameV1 {
    /// Open a session on device lane `device`. Must be the first frame
    /// on every connection.
    OpenSession {
        /// Index of the device lane to attach to.
        device: u32,
    },
    /// The server's reply to [`FrameV1::OpenSession`].
    OpenOk {
        /// The session id the connection was assigned.
        session: u32,
        /// The device's name.
        name: String,
        /// The device's capacity in bytes.
        capacity: u64,
        /// The device's logical block size in bytes.
        logical_block: u32,
    },
    /// Submit a batch of requests under an open session.
    Submit {
        /// The session the requests belong to.
        session: u32,
        /// Client-chosen sequence number, echoed in the reply.
        seq: u64,
        /// The requests, submit instants non-decreasing.
        reqs: Vec<IoRequest>,
    },
    /// The completions of an accepted submit frame, index-aligned with
    /// its request list.
    Completions {
        /// The submit frame's sequence number.
        seq: u64,
        /// One completion per request, in submission order.
        completions: Vec<Completion>,
    },
    /// Backpressure: the submit frame was refused, nothing was issued.
    Busy {
        /// The submit frame's sequence number.
        seq: u64,
        /// Why the frame was refused.
        reason: BusyReason,
    },
    /// Ask for the session's server-side ledger.
    Stats {
        /// The session to report on.
        session: u32,
    },
    /// The server's reply to [`FrameV1::Stats`].
    StatsOk {
        /// The session reported on.
        session: u32,
        /// The ledger and the lane's queue head.
        stats: WireStats,
    },
    /// Orderly shutdown of the connection.
    Close,
    /// The server's reply to [`FrameV1::Close`]; the connection ends after
    /// this frame.
    CloseOk,
    /// A typed failure. `io` carries the device's [`IoError`] when the
    /// device rejected a request; `None` means a protocol error (the
    /// message says which). The server closes the connection after
    /// sending this frame.
    Err {
        /// The device error, if the failure was an I/O rejection.
        io: Option<IoError>,
        /// Human-readable diagnostic.
        message: String,
    },
}

const KIND_OPEN: &str = "uc.wire.open.v1";
const KIND_OPEN_OK: &str = "uc.wire.open-ok.v1";
const KIND_SUBMIT: &str = "uc.wire.submit.v1";
const KIND_COMPLETIONS: &str = "uc.wire.completions.v1";
const KIND_BUSY: &str = "uc.wire.busy.v1";
const KIND_STATS: &str = "uc.wire.stats.v1";
const KIND_STATS_OK: &str = "uc.wire.stats-ok.v1";
const KIND_CLOSE: &str = "uc.wire.close.v1";
const KIND_CLOSE_OK: &str = "uc.wire.close-ok.v1";
const KIND_ERR: &str = "uc.wire.err.v1";

/// Every `uc.wire.v1` kind tag, in protocol order (the corruption sweeps
/// iterate this).
pub const ALL_KINDS_V1: [&str; 10] = [
    KIND_OPEN,
    KIND_OPEN_OK,
    KIND_SUBMIT,
    KIND_COMPLETIONS,
    KIND_BUSY,
    KIND_STATS,
    KIND_STATS_OK,
    KIND_CLOSE,
    KIND_CLOSE_OK,
    KIND_ERR,
];

fn put_kind(w: &mut Encoder, kind: IoKind) {
    w.put_u8(kind.is_write() as u8);
}

fn get_kind(r: &mut Decoder<'_>) -> Result<IoKind, DecodeError> {
    match r.get_u8()? {
        0 => Ok(IoKind::Read),
        1 => Ok(IoKind::Write),
        _ => Err(DecodeError::InvalidValue { what: "IoKind tag" }),
    }
}

use crate::wire::{get_io_error, put_io_error};

impl FrameV1 {
    /// The frame's `uc.wire.v1` kind tag.
    pub fn kind(&self) -> &'static str {
        match self {
            FrameV1::OpenSession { .. } => KIND_OPEN,
            FrameV1::OpenOk { .. } => KIND_OPEN_OK,
            FrameV1::Submit { .. } => KIND_SUBMIT,
            FrameV1::Completions { .. } => KIND_COMPLETIONS,
            FrameV1::Busy { .. } => KIND_BUSY,
            FrameV1::Stats { .. } => KIND_STATS,
            FrameV1::StatsOk { .. } => KIND_STATS_OK,
            FrameV1::Close => KIND_CLOSE,
            FrameV1::CloseOk => KIND_CLOSE_OK,
            FrameV1::Err { .. } => KIND_ERR,
        }
    }

    /// Encodes the frame as one complete `uc-persist` record.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Encoder::new();
        match self {
            FrameV1::OpenSession { device } => w.put_u32(*device),
            FrameV1::OpenOk {
                session,
                name,
                capacity,
                logical_block,
            } => {
                w.put_u32(*session);
                w.put_str(name);
                w.put_u64(*capacity);
                w.put_u32(*logical_block);
            }
            FrameV1::Submit { session, seq, reqs } => {
                w.put_u32(*session);
                w.put_u64(*seq);
                w.put_u64(reqs.len() as u64);
                for req in reqs {
                    put_kind(&mut w, req.kind);
                    w.put_u64(req.offset);
                    w.put_u32(req.len);
                    w.put_u64(req.submit_time.as_nanos());
                }
            }
            FrameV1::Completions { seq, completions } => {
                w.put_u64(*seq);
                w.put_u64(completions.len() as u64);
                for c in completions {
                    w.put_u64(c.index as u64);
                    put_kind(&mut w, c.kind);
                    w.put_u32(c.len);
                    w.put_u64(c.submitted.as_nanos());
                    w.put_u64(c.completes.as_nanos());
                }
            }
            FrameV1::Busy { seq, reason } => {
                w.put_u64(*seq);
                w.put_u8(reason.tag());
            }
            FrameV1::Stats { session } => w.put_u32(*session),
            FrameV1::StatsOk { session, stats } => {
                w.put_u32(*session);
                w.put_u64(stats.stats.ios);
                w.put_u64(stats.stats.bytes);
                w.put_u64(stats.stats.clamped);
                w.put_u64(stats.stats.last_submit.as_nanos());
                w.put_u64(stats.queue_head.as_nanos());
            }
            FrameV1::Close | FrameV1::CloseOk => {}
            FrameV1::Err { io, message } => {
                match io {
                    None => w.put_u8(0),
                    Some(e) => {
                        w.put_u8(1);
                        put_io_error(&mut w, e);
                    }
                }
                w.put_str(message);
            }
        }
        encode_record(self.kind(), w.as_bytes())
    }

    /// Rebuilds a frame from a decoded record's kind tag and payload.
    ///
    /// # Errors
    ///
    /// [`DecodeError::UnknownKind`] for a foreign kind tag,
    /// [`DecodeError::InvalidValue`] / [`DecodeError::Truncated`] /
    /// [`DecodeError::TrailingBytes`] for a malformed payload.
    pub fn from_parts(kind: &str, payload: &[u8]) -> Result<FrameV1, DecodeError> {
        let mut r = Decoder::new(payload);
        let frame = match kind {
            KIND_OPEN => FrameV1::OpenSession {
                device: r.get_u32()?,
            },
            KIND_OPEN_OK => FrameV1::OpenOk {
                session: r.get_u32()?,
                name: r.get_string()?,
                capacity: r.get_u64()?,
                logical_block: r.get_u32()?,
            },
            KIND_SUBMIT => {
                let session = r.get_u32()?;
                let seq = r.get_u64()?;
                let count = r.get_u64()?;
                if count > crate::MAX_FRAME_REQUESTS {
                    return Err(DecodeError::InvalidValue {
                        what: "submit frame request count",
                    });
                }
                let mut reqs = Vec::with_capacity(count as usize);
                let mut last = SimTime::ZERO;
                for _ in 0..count {
                    let kind = get_kind(&mut r)?;
                    let offset = r.get_u64()?;
                    let len = r.get_u32()?;
                    let submit_time = SimTime::from_nanos(r.get_u64()?);
                    if submit_time < last {
                        return Err(DecodeError::InvalidValue {
                            what: "submit frame request order",
                        });
                    }
                    last = submit_time;
                    reqs.push(IoRequest {
                        kind,
                        offset,
                        len,
                        submit_time,
                    });
                }
                FrameV1::Submit { session, seq, reqs }
            }
            KIND_COMPLETIONS => {
                let seq = r.get_u64()?;
                let count = r.get_u64()?;
                if count > crate::MAX_FRAME_REQUESTS {
                    return Err(DecodeError::InvalidValue {
                        what: "completions frame entry count",
                    });
                }
                let mut completions = Vec::with_capacity(count as usize);
                for _ in 0..count {
                    let index = r.get_u64()? as usize;
                    let kind = get_kind(&mut r)?;
                    let len = r.get_u32()?;
                    let submitted = SimTime::from_nanos(r.get_u64()?);
                    let completes = SimTime::from_nanos(r.get_u64()?);
                    completions.push(Completion {
                        index,
                        kind,
                        len,
                        submitted,
                        completes,
                    });
                }
                FrameV1::Completions { seq, completions }
            }
            KIND_BUSY => FrameV1::Busy {
                seq: r.get_u64()?,
                reason: BusyReason::from_tag(r.get_u8()?)?,
            },
            KIND_STATS => FrameV1::Stats {
                session: r.get_u32()?,
            },
            KIND_STATS_OK => FrameV1::StatsOk {
                session: r.get_u32()?,
                stats: WireStats {
                    stats: SessionStats {
                        ios: r.get_u64()?,
                        bytes: r.get_u64()?,
                        clamped: r.get_u64()?,
                        last_submit: SimTime::from_nanos(r.get_u64()?),
                    },
                    queue_head: SimTime::from_nanos(r.get_u64()?),
                },
            },
            KIND_CLOSE => FrameV1::Close,
            KIND_CLOSE_OK => FrameV1::CloseOk,
            KIND_ERR => {
                let io = match r.get_u8()? {
                    0 => None,
                    1 => Some(get_io_error(&mut r)?),
                    _ => {
                        return Err(DecodeError::InvalidValue {
                            what: "error frame io tag",
                        })
                    }
                };
                FrameV1::Err {
                    io,
                    message: r.get_string()?,
                }
            }
            _ => {
                return Err(DecodeError::UnknownKind {
                    found: kind.to_string(),
                })
            }
        };
        r.finish()?;
        Ok(frame)
    }

    /// Reads the next frame off `reader`.
    ///
    /// Returns `Ok(None)` on a clean end of stream (the peer closed the
    /// connection between frames).
    ///
    /// # Errors
    ///
    /// Any corruption — truncation mid-frame, a checksum mismatch, a
    /// foreign kind tag, a malformed payload — is a typed
    /// [`DecodeError`].
    pub fn read_from<R: Read + ?Sized>(reader: &mut R) -> Result<Option<FrameV1>, DecodeError> {
        match read_record_from(reader)? {
            None => Ok(None),
            Some((kind, payload)) => FrameV1::from_parts(&kind, &payload).map(Some),
        }
    }

    /// Writes the frame to `writer` as one record.
    ///
    /// # Errors
    ///
    /// Propagates the transport error.
    pub fn write_to<W: Write + ?Sized>(&self, writer: &mut W) -> std::io::Result<()> {
        writer.write_all(&self.encode())?;
        writer.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(nanos: u64) -> SimTime {
        SimTime::from_nanos(nanos)
    }

    fn sample_frames() -> Vec<FrameV1> {
        vec![
            FrameV1::OpenSession { device: 2 },
            FrameV1::OpenOk {
                session: 0,
                name: "essd (aws io2 class)".to_string(),
                capacity: 2 << 30,
                logical_block: 4096,
            },
            FrameV1::Submit {
                session: 0,
                seq: 7,
                reqs: vec![
                    IoRequest::write(0, 65536, at(10)),
                    IoRequest::read(65536, 4096, at(10)),
                    IoRequest::write(131072, 4096, at(25)),
                ],
            },
            FrameV1::Completions {
                seq: 7,
                completions: vec![Completion {
                    index: 0,
                    kind: IoKind::Write,
                    len: 65536,
                    submitted: at(10),
                    completes: at(90),
                }],
            },
            FrameV1::Busy {
                seq: 8,
                reason: BusyReason::RingFull,
            },
            FrameV1::Busy {
                seq: 9,
                reason: BusyReason::Overload,
            },
            FrameV1::Stats { session: 0 },
            FrameV1::StatsOk {
                session: 0,
                stats: WireStats {
                    stats: SessionStats {
                        ios: 3,
                        bytes: 73728,
                        clamped: 1,
                        last_submit: at(25),
                    },
                    queue_head: at(40),
                },
            },
            FrameV1::Close,
            FrameV1::CloseOk,
            FrameV1::Err {
                io: None,
                message: "expected OPEN_SESSION".to_string(),
            },
            FrameV1::Err {
                io: Some(IoError::Misaligned {
                    offset: 3,
                    len: 100,
                    logical_block: 4096,
                }),
                message: "device rejected request".to_string(),
            },
            FrameV1::Err {
                io: Some(IoError::OutOfRange {
                    end: 100,
                    capacity: 50,
                }),
                message: "device rejected request".to_string(),
            },
            FrameV1::Err {
                io: Some(IoError::ZeroLength),
                message: String::new(),
            },
        ]
    }

    #[test]
    fn every_frame_round_trips_through_a_byte_stream() {
        let frames = sample_frames();
        let mut stream = Vec::new();
        for f in &frames {
            f.write_to(&mut stream).unwrap();
        }
        let mut reader = &stream[..];
        for expected in &frames {
            let got = FrameV1::read_from(&mut reader).unwrap().expect("frame");
            assert_eq!(&got, expected);
        }
        assert_eq!(FrameV1::read_from(&mut reader).unwrap(), None, "clean EOF");
    }

    #[test]
    fn kinds_are_distinct_and_listed() {
        let frames = sample_frames();
        for f in &frames {
            assert!(ALL_KINDS_V1.contains(&f.kind()), "{} unlisted", f.kind());
        }
        let mut kinds: Vec<&str> = ALL_KINDS_V1.to_vec();
        kinds.sort_unstable();
        kinds.dedup();
        assert_eq!(kinds.len(), ALL_KINDS_V1.len());
    }

    #[test]
    fn foreign_kind_tags_are_typed() {
        let err = FrameV1::from_parts("uc.trace.v1", &[]).unwrap_err();
        assert!(matches!(err, DecodeError::UnknownKind { .. }));
    }

    #[test]
    fn time_travelling_submit_frames_are_rejected_on_decode() {
        // A hostile client encodes a batch whose submit instants regress;
        // the decoder must refuse it before it can reach an IoBatch.
        let mut w = Encoder::new();
        w.put_u32(0); // session
        w.put_u64(1); // seq
        w.put_u64(2); // count
        for t in [100u64, 50] {
            w.put_u8(1);
            w.put_u64(0);
            w.put_u32(4096);
            w.put_u64(t);
        }
        let err = FrameV1::from_parts(KIND_SUBMIT, w.as_bytes()).unwrap_err();
        assert!(matches!(
            err,
            DecodeError::InvalidValue {
                what: "submit frame request order"
            }
        ));
    }

    #[test]
    fn hostile_request_counts_are_bounded() {
        let mut w = Encoder::new();
        w.put_u32(0);
        w.put_u64(1);
        w.put_u64(u64::MAX); // claimed count far past any real frame
        let err = FrameV1::from_parts(KIND_SUBMIT, w.as_bytes()).unwrap_err();
        assert!(matches!(err, DecodeError::InvalidValue { .. }));
    }

    #[test]
    fn trailing_payload_bytes_are_typed() {
        let mut w = Encoder::new();
        w.put_u32(3);
        w.put_u8(0xEE); // junk after the device index
        let err = FrameV1::from_parts(KIND_OPEN, w.as_bytes()).unwrap_err();
        assert!(matches!(err, DecodeError::TrailingBytes { count: 1 }));
    }

    #[test]
    fn mid_frame_truncation_is_typed() {
        let bytes = FrameV1::Close.encode();
        for cut in 1..bytes.len() {
            let mut reader = &bytes[..cut];
            let err =
                FrameV1::read_from(&mut reader).expect_err(&format!("cut at {cut} must fail"));
            assert!(
                matches!(
                    err,
                    DecodeError::Truncated { .. } | DecodeError::ChecksumMismatch { .. }
                ),
                "cut at {cut}: {err:?}"
            );
        }
    }
}
