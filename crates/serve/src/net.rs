//! Transport endpoints: TCP and Unix-domain listeners and streams.
//!
//! Everything here is `std::net` / `std::os::unix::net` — the server is
//! dependency-free by construction. [`Endpoint`] is the parsed form of
//! the `tcp:HOST:PORT` / `uds:PATH` addresses the binaries accept;
//! [`Listener`] and the [`Stream`] trait erase the TCP/UDS split so the
//! server and client speak one connection type.

use std::fmt;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;

/// A bidirectional, cloneable connection (TCP or Unix-domain).
///
/// `try_clone_stream` yields an independently owned handle onto the same
/// connection, so one side can be wrapped in a buffered reader while the
/// other writes responses.
pub trait Stream: Read + Write + Send {
    /// An independently owned handle onto the same connection.
    ///
    /// # Errors
    ///
    /// Propagates the OS error.
    fn try_clone_stream(&self) -> io::Result<Box<dyn Stream>>;

    /// Shuts down both directions of the connection.
    ///
    /// # Errors
    ///
    /// Propagates the OS error.
    fn shutdown_both(&self) -> io::Result<()>;

    /// Switches the connection between blocking and non-blocking mode
    /// (the event loop runs every connection non-blocking).
    ///
    /// # Errors
    ///
    /// Propagates the OS error.
    fn set_nonblocking_stream(&self, nonblocking: bool) -> io::Result<()>;

    /// The raw fd, for poller registration.
    #[cfg(unix)]
    fn raw_fd(&self) -> std::os::fd::RawFd;
}

impl Stream for TcpStream {
    fn try_clone_stream(&self) -> io::Result<Box<dyn Stream>> {
        Ok(Box::new(self.try_clone()?))
    }

    fn shutdown_both(&self) -> io::Result<()> {
        self.shutdown(std::net::Shutdown::Both)
    }

    fn set_nonblocking_stream(&self, nonblocking: bool) -> io::Result<()> {
        self.set_nonblocking(nonblocking)
    }

    #[cfg(unix)]
    fn raw_fd(&self) -> std::os::fd::RawFd {
        std::os::fd::AsRawFd::as_raw_fd(self)
    }
}

#[cfg(unix)]
impl Stream for std::os::unix::net::UnixStream {
    fn try_clone_stream(&self) -> io::Result<Box<dyn Stream>> {
        Ok(Box::new(self.try_clone()?))
    }

    fn shutdown_both(&self) -> io::Result<()> {
        self.shutdown(std::net::Shutdown::Both)
    }

    fn set_nonblocking_stream(&self, nonblocking: bool) -> io::Result<()> {
        self.set_nonblocking(nonblocking)
    }

    #[cfg(unix)]
    fn raw_fd(&self) -> std::os::fd::RawFd {
        std::os::fd::AsRawFd::as_raw_fd(self)
    }
}

/// A parsed server address: `tcp:HOST:PORT` or `uds:PATH`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Endpoint {
    /// A TCP address (`HOST:PORT`; port 0 binds an ephemeral port).
    Tcp(String),
    /// A Unix-domain socket path.
    Uds(PathBuf),
}

impl Endpoint {
    /// Parses `tcp:HOST:PORT` or `uds:PATH`.
    ///
    /// # Errors
    ///
    /// Returns a descriptive error for any other prefix.
    pub fn parse(spec: &str) -> Result<Endpoint, String> {
        if let Some(addr) = spec.strip_prefix("tcp:") {
            Ok(Endpoint::Tcp(addr.to_string()))
        } else if let Some(path) = spec.strip_prefix("uds:") {
            Ok(Endpoint::Uds(PathBuf::from(path)))
        } else {
            Err(format!(
                "endpoint must be tcp:HOST:PORT or uds:PATH, got {spec:?}"
            ))
        }
    }

    /// Connects to the endpoint. TCP connections disable Nagle's
    /// algorithm — the protocol is request/response and a delayed small
    /// frame would stall the whole exchange.
    ///
    /// # Errors
    ///
    /// Propagates the OS error; on non-Unix platforms, `uds:` endpoints
    /// are unsupported.
    pub fn connect(&self) -> io::Result<Box<dyn Stream>> {
        match self {
            Endpoint::Tcp(addr) => {
                let stream = TcpStream::connect(addr)?;
                stream.set_nodelay(true)?;
                Ok(Box::new(stream))
            }
            #[cfg(unix)]
            Endpoint::Uds(path) => Ok(Box::new(std::os::unix::net::UnixStream::connect(path)?)),
            #[cfg(not(unix))]
            Endpoint::Uds(_) => Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "uds: endpoints require a Unix platform",
            )),
        }
    }
}

impl fmt::Display for Endpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Endpoint::Tcp(addr) => write!(f, "tcp:{addr}"),
            Endpoint::Uds(path) => write!(f, "uds:{}", path.display()),
        }
    }
}

/// A bound listener on an [`Endpoint`].
pub enum Listener {
    /// A TCP listener.
    Tcp(TcpListener),
    /// A Unix-domain listener.
    #[cfg(unix)]
    Uds(std::os::unix::net::UnixListener),
}

impl Listener {
    /// Binds the endpoint. A stale Unix-socket file at the path is
    /// removed first (a previous server that died without unlinking must
    /// not wedge the address forever).
    ///
    /// # Errors
    ///
    /// Propagates the OS error; on non-Unix platforms, `uds:` endpoints
    /// are unsupported.
    pub fn bind(endpoint: &Endpoint) -> io::Result<Listener> {
        match endpoint {
            Endpoint::Tcp(addr) => Ok(Listener::Tcp(TcpListener::bind(addr)?)),
            #[cfg(unix)]
            Endpoint::Uds(path) => {
                let _ = std::fs::remove_file(path);
                Ok(Listener::Uds(std::os::unix::net::UnixListener::bind(path)?))
            }
            #[cfg(not(unix))]
            Endpoint::Uds(_) => Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "uds: endpoints require a Unix platform",
            )),
        }
    }

    /// The bound address — for TCP with port 0, the actual ephemeral
    /// port (tests bind `tcp:127.0.0.1:0` and connect to the result).
    ///
    /// # Errors
    ///
    /// Propagates the OS error.
    pub fn local_endpoint(&self) -> io::Result<Endpoint> {
        match self {
            Listener::Tcp(l) => Ok(Endpoint::Tcp(l.local_addr()?.to_string())),
            #[cfg(unix)]
            Listener::Uds(l) => {
                let addr = l.local_addr()?;
                Ok(Endpoint::Uds(
                    addr.as_pathname().map(PathBuf::from).unwrap_or_default(),
                ))
            }
        }
    }

    /// Switches the listener between blocking and non-blocking accepts
    /// (the event loop polls the listener like any other fd).
    ///
    /// # Errors
    ///
    /// Propagates the OS error.
    pub fn set_nonblocking(&self, nonblocking: bool) -> io::Result<()> {
        match self {
            Listener::Tcp(l) => l.set_nonblocking(nonblocking),
            #[cfg(unix)]
            Listener::Uds(l) => l.set_nonblocking(nonblocking),
        }
    }

    /// The raw fd, for poller registration.
    #[cfg(unix)]
    pub fn raw_fd(&self) -> std::os::fd::RawFd {
        use std::os::fd::AsRawFd;
        match self {
            Listener::Tcp(l) => l.as_raw_fd(),
            Listener::Uds(l) => l.as_raw_fd(),
        }
    }

    /// Accepts one connection (TCP connections get `TCP_NODELAY`).
    ///
    /// # Errors
    ///
    /// Propagates the OS error.
    pub fn accept(&self) -> io::Result<Box<dyn Stream>> {
        match self {
            Listener::Tcp(l) => {
                let (stream, _) = l.accept()?;
                stream.set_nodelay(true)?;
                Ok(Box::new(stream))
            }
            #[cfg(unix)]
            Listener::Uds(l) => {
                let (stream, _) = l.accept()?;
                Ok(Box::new(stream))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoints_parse_and_display() {
        assert_eq!(
            Endpoint::parse("tcp:127.0.0.1:4000").unwrap(),
            Endpoint::Tcp("127.0.0.1:4000".to_string())
        );
        assert_eq!(
            Endpoint::parse("uds:/tmp/uc.sock").unwrap(),
            Endpoint::Uds(PathBuf::from("/tmp/uc.sock"))
        );
        assert_eq!(Endpoint::parse("tcp:h:1").unwrap().to_string(), "tcp:h:1");
        assert!(Endpoint::parse("http://x").is_err());
    }

    #[test]
    fn tcp_loopback_round_trips_bytes() {
        let listener = Listener::bind(&Endpoint::parse("tcp:127.0.0.1:0").unwrap()).unwrap();
        let endpoint = listener.local_endpoint().unwrap();
        let server = std::thread::spawn(move || {
            let mut conn = listener.accept().unwrap();
            let mut buf = [0u8; 5];
            conn.read_exact(&mut buf).unwrap();
            conn.write_all(&buf).unwrap();
        });
        let mut client = endpoint.connect().unwrap();
        client.write_all(b"hello").unwrap();
        let mut echo = [0u8; 5];
        client.read_exact(&mut echo).unwrap();
        assert_eq!(&echo, b"hello");
        server.join().unwrap();
    }

    #[cfg(unix)]
    #[test]
    fn uds_loopback_round_trips_bytes_and_rebinds_over_stale_sockets() {
        let path = std::env::temp_dir().join(format!("uc-serve-net-{}.sock", std::process::id()));
        let endpoint = Endpoint::Uds(path.clone());
        for _ in 0..2 {
            // Second iteration rebinds over the file the first left behind.
            let listener = Listener::bind(&endpoint).unwrap();
            let server = std::thread::spawn(move || {
                let mut conn = listener.accept().unwrap();
                let mut buf = [0u8; 3];
                conn.read_exact(&mut buf).unwrap();
                conn.write_all(&buf).unwrap();
            });
            let mut client = endpoint.connect().unwrap();
            client.write_all(b"uds").unwrap();
            let mut echo = [0u8; 3];
            client.read_exact(&mut echo).unwrap();
            assert_eq!(&echo, b"uds");
            server.join().unwrap();
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn cloned_streams_share_the_connection() {
        let listener = Listener::bind(&Endpoint::parse("tcp:127.0.0.1:0").unwrap()).unwrap();
        let endpoint = listener.local_endpoint().unwrap();
        let server = std::thread::spawn(move || {
            let mut conn = listener.accept().unwrap();
            let mut buf = [0u8; 2];
            conn.read_exact(&mut buf).unwrap();
            conn.write_all(&buf).unwrap();
        });
        let client = endpoint.connect().unwrap();
        let mut reader = client.try_clone_stream().unwrap();
        let mut writer = client;
        writer.write_all(b"ab").unwrap();
        let mut echo = [0u8; 2];
        reader.read_exact(&mut echo).unwrap();
        assert_eq!(&echo, b"ab");
        server.join().unwrap();
        writer.shutdown_both().unwrap();
    }
}
