//! A minimal std-only readiness poller: `epoll(7)` on Linux, `poll(2)`
//! elsewhere on unix.
//!
//! This is the only module in the crate allowed to use `unsafe` (the
//! raw syscall FFI); everything above it sees a safe, edge-free API:
//! register a fd under a `u64` token, ask for write-readiness only while
//! you have bytes queued, and [`Poller::wait`] fills a caller-owned
//! event buffer. Level-triggered semantics throughout — a fd stays
//! readable until drained, so the event loop can stop reading mid-frame
//! under fairness pressure without losing the wakeup.

use std::io;
use std::os::fd::RawFd;

/// One readiness report from [`Poller::wait`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// The token the fd was registered under.
    pub token: u64,
    /// The fd has bytes to read (or a pending accept).
    pub readable: bool,
    /// The fd can take more bytes.
    pub writable: bool,
    /// The peer hung up or the fd errored; drain reads, then drop it.
    pub hangup: bool,
}

#[cfg(target_os = "linux")]
#[allow(unsafe_code)]
mod sys {
    use super::Event;
    use std::io;
    use std::os::fd::RawFd;
    use std::os::raw::c_int;

    const EPOLL_CLOEXEC: c_int = 0o2000000;
    const EPOLL_CTL_ADD: c_int = 1;
    const EPOLL_CTL_DEL: c_int = 2;
    const EPOLL_CTL_MOD: c_int = 3;
    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;

    // The kernel's struct epoll_event is packed on x86-64 (12 bytes).
    #[repr(C)]
    #[cfg_attr(target_arch = "x86_64", repr(packed))]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    extern "C" {
        fn epoll_create1(flags: c_int) -> c_int;
        fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout: c_int,
        ) -> c_int;
        fn close(fd: c_int) -> c_int;
    }

    fn cvt(ret: c_int) -> io::Result<c_int> {
        if ret < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(ret)
        }
    }

    /// The epoll instance.
    pub struct Poller {
        epfd: RawFd,
    }

    impl Poller {
        pub fn new() -> io::Result<Poller> {
            // SAFETY: epoll_create1 takes no pointers; a negative return
            // is an error, any other return is an owned fd.
            let epfd = cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
            Ok(Poller { epfd })
        }

        fn ctl(&self, op: c_int, fd: RawFd, token: u64, writable: bool) -> io::Result<()> {
            let mut ev = EpollEvent {
                events: EPOLLIN | if writable { EPOLLOUT } else { 0 },
                data: token,
            };
            // SAFETY: `ev` outlives the call; the kernel copies it.
            cvt(unsafe { epoll_ctl(self.epfd, op, fd, &mut ev) })?;
            Ok(())
        }

        pub fn add(&self, fd: RawFd, token: u64, writable: bool) -> io::Result<()> {
            self.ctl(EPOLL_CTL_ADD, fd, token, writable)
        }

        pub fn modify(&self, fd: RawFd, token: u64, writable: bool) -> io::Result<()> {
            self.ctl(EPOLL_CTL_MOD, fd, token, writable)
        }

        pub fn remove(&self, fd: RawFd) -> io::Result<()> {
            // SAFETY: since Linux 2.6.9 the event pointer of DEL is
            // ignored; null is the documented idiom.
            cvt(unsafe { epoll_ctl(self.epfd, EPOLL_CTL_DEL, fd, std::ptr::null_mut()) })?;
            Ok(())
        }

        pub fn wait(&self, events: &mut Vec<Event>, timeout_ms: i32) -> io::Result<()> {
            events.clear();
            let mut buf = [EpollEvent { events: 0, data: 0 }; 256];
            let n = loop {
                // SAFETY: `buf` is a valid writable array of its stated
                // length; the kernel fills at most `maxevents` entries.
                match cvt(unsafe {
                    epoll_wait(self.epfd, buf.as_mut_ptr(), buf.len() as c_int, timeout_ms)
                }) {
                    Ok(n) => break n as usize,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(e) => return Err(e),
                }
            };
            for ev in &buf[..n] {
                let bits = ev.events;
                events.push(Event {
                    token: ev.data,
                    readable: bits & (EPOLLIN | EPOLLHUP | EPOLLERR) != 0,
                    writable: bits & EPOLLOUT != 0,
                    hangup: bits & (EPOLLHUP | EPOLLERR) != 0,
                });
            }
            Ok(())
        }
    }

    impl Drop for Poller {
        fn drop(&mut self) {
            // SAFETY: epfd is an owned fd no one else closes.
            unsafe { close(self.epfd) };
        }
    }
}

#[cfg(all(unix, not(target_os = "linux")))]
#[allow(unsafe_code)]
mod sys {
    use super::Event;
    use std::io;
    use std::os::fd::RawFd;
    use std::os::raw::{c_int, c_short, c_ulong};
    use std::sync::Mutex;

    const POLLIN: c_short = 0x001;
    const POLLOUT: c_short = 0x004;
    const POLLERR: c_short = 0x008;
    const POLLHUP: c_short = 0x010;

    #[repr(C)]
    #[derive(Clone, Copy)]
    struct PollFd {
        fd: c_int,
        events: c_short,
        revents: c_short,
    }

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: c_ulong, timeout: c_int) -> c_int;
    }

    /// A `poll(2)`-backed stand-in with the same API as the epoll
    /// poller: the registration table lives in userspace.
    pub struct Poller {
        registered: Mutex<Vec<(RawFd, u64, bool)>>,
    }

    impl Poller {
        pub fn new() -> io::Result<Poller> {
            Ok(Poller {
                registered: Mutex::new(Vec::new()),
            })
        }

        pub fn add(&self, fd: RawFd, token: u64, writable: bool) -> io::Result<()> {
            self.registered.lock().unwrap().push((fd, token, writable));
            Ok(())
        }

        pub fn modify(&self, fd: RawFd, token: u64, writable: bool) -> io::Result<()> {
            let mut reg = self.registered.lock().unwrap();
            match reg.iter_mut().find(|(f, _, _)| *f == fd) {
                Some(slot) => {
                    *slot = (fd, token, writable);
                    Ok(())
                }
                None => Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered")),
            }
        }

        pub fn remove(&self, fd: RawFd) -> io::Result<()> {
            self.registered.lock().unwrap().retain(|(f, _, _)| *f != fd);
            Ok(())
        }

        pub fn wait(&self, events: &mut Vec<Event>, timeout_ms: i32) -> io::Result<()> {
            events.clear();
            let reg = self.registered.lock().unwrap().clone();
            let mut fds: Vec<PollFd> = reg
                .iter()
                .map(|&(fd, _, writable)| PollFd {
                    fd,
                    events: POLLIN | if writable { POLLOUT } else { 0 },
                    revents: 0,
                })
                .collect();
            loop {
                // SAFETY: `fds` is a valid writable array of its stated
                // length for the duration of the call.
                let n = unsafe { poll(fds.as_mut_ptr(), fds.len() as c_ulong, timeout_ms) };
                if n >= 0 {
                    break;
                }
                let e = io::Error::last_os_error();
                if e.kind() != io::ErrorKind::Interrupted {
                    return Err(e);
                }
            }
            for (pfd, &(_, token, _)) in fds.iter().zip(&reg) {
                let bits = pfd.revents;
                if bits != 0 {
                    events.push(Event {
                        token,
                        readable: bits & (POLLIN | POLLHUP | POLLERR) != 0,
                        writable: bits & POLLOUT != 0,
                        hangup: bits & (POLLHUP | POLLERR) != 0,
                    });
                }
            }
            Ok(())
        }
    }
}

/// A readiness poller: fds registered under `u64` tokens,
/// level-triggered read interest always on, write interest toggled by
/// the caller while its write buffer is nonempty.
pub struct Poller {
    inner: sys::Poller,
}

impl Poller {
    /// Creates the poller.
    ///
    /// # Errors
    ///
    /// Propagates the OS error.
    pub fn new() -> io::Result<Poller> {
        Ok(Poller {
            inner: sys::Poller::new()?,
        })
    }

    /// Registers `fd` under `token`, with write interest iff `writable`.
    ///
    /// # Errors
    ///
    /// Propagates the OS error (e.g. the fd is already registered).
    pub fn add(&self, fd: RawFd, token: u64, writable: bool) -> io::Result<()> {
        self.inner.add(fd, token, writable)
    }

    /// Updates `fd`'s token and write interest.
    ///
    /// # Errors
    ///
    /// Propagates the OS error (e.g. the fd was never registered).
    pub fn modify(&self, fd: RawFd, token: u64, writable: bool) -> io::Result<()> {
        self.inner.modify(fd, token, writable)
    }

    /// Deregisters `fd`. Must be called before the fd is closed.
    ///
    /// # Errors
    ///
    /// Propagates the OS error.
    pub fn remove(&self, fd: RawFd) -> io::Result<()> {
        self.inner.remove(fd)
    }

    /// Blocks until at least one registered fd is ready (or `timeout_ms`
    /// elapses; `-1` blocks forever), filling `events`. `EINTR` is
    /// retried internally.
    ///
    /// # Errors
    ///
    /// Propagates the OS error.
    pub fn wait(&self, events: &mut Vec<Event>, timeout_ms: i32) -> io::Result<()> {
        self.inner.wait(events, timeout_ms)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::os::fd::AsRawFd;
    use std::os::unix::net::UnixStream;

    #[test]
    fn readiness_follows_the_byte_flow() {
        let (mut a, mut b) = UnixStream::pair().unwrap();
        let poller = Poller::new().unwrap();
        poller.add(b.as_raw_fd(), 42, false).unwrap();
        let mut events = Vec::new();

        // Nothing to read yet: a zero-timeout wait reports no events.
        poller.wait(&mut events, 0).unwrap();
        assert!(events.iter().all(|e| e.token != 42));

        a.write_all(b"ping").unwrap();
        poller.wait(&mut events, 1000).unwrap();
        let ev = events.iter().find(|e| e.token == 42).expect("readable");
        assert!(ev.readable && !ev.hangup);

        // Level-triggered: still readable until drained.
        poller.wait(&mut events, 0).unwrap();
        assert!(events.iter().any(|e| e.token == 42 && e.readable));
        let mut buf = [0u8; 4];
        b.read_exact(&mut buf).unwrap();
        poller.wait(&mut events, 0).unwrap();
        assert!(events.iter().all(|e| e.token != 42));

        // Write interest: an idle socket is immediately writable.
        poller.modify(b.as_raw_fd(), 42, true).unwrap();
        poller.wait(&mut events, 1000).unwrap();
        assert!(events.iter().any(|e| e.token == 42 && e.writable));

        // Hangup: the peer closing surfaces as readable + hangup.
        drop(a);
        poller.wait(&mut events, 1000).unwrap();
        let ev = events.iter().find(|e| e.token == 42).expect("hup");
        assert!(ev.readable && ev.hangup);
        poller.remove(b.as_raw_fd()).unwrap();
    }
}
