//! The served device pool: shared lanes, admission control, rate limits.
//!
//! [`ServePool`] owns the device lanes a server exposes. Each lane wraps
//! one [`BlockDevice`] in a [`SharedDevice`] behind a mutex; every
//! connection (or in-process [`PoolDevice`]) opens a session on one lane
//! and submits batches through [`ServePool::submit`], which applies the
//! three protection mechanisms in order:
//!
//! 1. **ring bound** — a batch larger than the per-connection submission
//!    ring is refused with [`BusyReason::RingFull`] before admission;
//! 2. **overload shedding** — a batch arriving while `max_inflight`
//!    batches are already being serviced (including responses still being
//!    written back to slow clients) is refused with
//!    [`BusyReason::Overload`];
//! 3. **token-bucket rate limiting** — an optional per-session
//!    byte-rate budget ([`TokenBucket`]): a batch over budget is not
//!    refused but *delayed*, its submit instants shifted to the bucket's
//!    grant instant, exactly how the elastic devices themselves enforce
//!    their throughput budgets (Observation 4).
//!
//! Refusals are typed and issue no I/O — backpressure is never a silent
//! drop. Admission counts whole batches and is the only cross-lane
//! state, so one lane's slow client cannot block another lane's traffic
//! (the device mutex is never held across a socket write).
//!
//! **Fleet mode** ([`ServePool::new_fleet`]) mounts a fed
//! [`FleetSim`](uc_fleet::FleetSim) behind the same pool: wire clients
//! attach *tenant* lanes, push arrival entries
//! ([`tenant_push`](ServePool::tenant_push)) and flush epochs
//! ([`tenant_flush`](ServePool::tenant_flush)). An epoch runs only when
//! every tenant in the fleet has flushed it — the wire-facing form of
//! the fleet's epoch barrier — and completed rebalances surface as
//! typed moves for the server to translate into `LANE_MOVED` frames.

use crate::wire::BusyReason;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use uc_blockdev::{
    BlockDevice, Completion, DeviceInfo, IoBatch, IoError, IoRequest, IoResult, SessionId,
    SessionStats, SharedDevice,
};
use uc_fleet::{FeedError, FleetReport, FleetSim};
use uc_obs::{CounterId, GaugeId, HistId, ObsHub, ObsSnapshot};
use uc_sim::{SimTime, TokenBucket};
use uc_workload::TraceEntry;

/// Tuning knobs of a [`ServePool`].
#[derive(Debug, Clone, Copy)]
pub struct PoolConfig {
    /// Maximum requests per submit frame (the per-connection submission
    /// ring). Larger batches are refused with [`BusyReason::RingFull`].
    pub ring: usize,
    /// Maximum batches in flight across the whole pool (admission to
    /// response write-back). Arrivals above the ceiling are refused with
    /// [`BusyReason::Overload`].
    pub max_inflight: usize,
    /// Per-session byte-rate budget in bytes/second (burst = one
    /// second's worth). `None` disables rate limiting.
    pub rate: Option<f64>,
}

impl Default for PoolConfig {
    fn default() -> Self {
        PoolConfig {
            ring: 64,
            max_inflight: 1024,
            rate: None,
        }
    }
}

/// One session's handle on a pool lane.
#[derive(Debug)]
pub struct PoolSession {
    device: usize,
    session: SessionId,
    bucket: Option<TokenBucket>,
    throttled: u64,
}

impl PoolSession {
    /// The lane index the session is attached to.
    pub fn device(&self) -> usize {
        self.device
    }

    /// The lane-local session id.
    pub fn session(&self) -> SessionId {
        self.session
    }

    /// Batches this session has had delayed by its rate budget.
    pub fn throttled(&self) -> u64 {
        self.throttled
    }
}

/// Why [`ServePool::submit`] refused or failed a batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rejection {
    /// Backpressure: nothing was issued; the caller may retry.
    Busy(BusyReason),
    /// The device rejected a request (requests queued before the failing
    /// one have been applied, as with any batch submission).
    Io(IoError),
}

/// Decrements the pool's in-flight count when dropped.
///
/// [`ServePool::submit`] returns one guard per admitted batch; the
/// server holds it across the response write so that a stalled reader
/// keeps occupying its admission slot — which is precisely what the
/// overload ceiling must see.
pub struct InflightGuard<'a> {
    pool: &'a ServePool,
}

impl Drop for InflightGuard<'_> {
    fn drop(&mut self) {
        self.pool.inflight.fetch_sub(1, Ordering::AcqRel);
    }
}

impl std::fmt::Debug for InflightGuard<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("InflightGuard")
            .field("inflight", &self.pool.inflight.load(Ordering::Acquire))
            .finish()
    }
}

/// The `'static` form of [`InflightGuard`]: holds the pool by [`Arc`],
/// so the event loop — whose connections outlive any one stack frame —
/// can park the admission slot inside a per-connection state machine
/// until the response bytes have actually drained to the socket.
pub struct OwnedInflightGuard {
    pool: Arc<ServePool>,
}

impl Drop for OwnedInflightGuard {
    fn drop(&mut self) {
        self.pool.inflight.fetch_sub(1, Ordering::AcqRel);
    }
}

impl std::fmt::Debug for OwnedInflightGuard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OwnedInflightGuard")
            .field("inflight", &self.pool.inflight.load(Ordering::Acquire))
            .finish()
    }
}

struct Lane {
    label: String,
    shared: Mutex<SharedDevice<Box<dyn BlockDevice + Send>>>,
}

/// Typed handles into the pool's [`ObsHub`] for one lane.
#[derive(Debug, Clone, Copy)]
struct LaneObsIds {
    ios: CounterId,
    bytes: CounterId,
    batch_size: HistId,
    service: HistId,
    queue_depth: GaugeId,
}

/// Typed handles into the pool's [`ObsHub`], registered once at
/// construction so the hot path never allocates a metric name.
#[derive(Debug, Clone)]
struct PoolObsIds {
    batches: CounterId,
    ios: CounterId,
    bytes: CounterId,
    busy_ring_full: CounterId,
    shed_overload: CounterId,
    throttled: CounterId,
    inflight_peak: GaugeId,
    lanes: Vec<LaneObsIds>,
}

impl PoolObsIds {
    /// Registration order is the snapshot's row order: pool-level
    /// metrics first, then each lane's, in lane order — deterministic
    /// for any pool shape.
    fn register(obs: &ObsHub, lanes: usize) -> Self {
        PoolObsIds {
            batches: obs.counter("serve.pool.batches"),
            ios: obs.counter("serve.pool.ios"),
            bytes: obs.counter("serve.pool.bytes"),
            busy_ring_full: obs.counter("serve.pool.busy_ring_full"),
            shed_overload: obs.counter("serve.pool.shed_overload"),
            throttled: obs.counter("serve.pool.throttled"),
            inflight_peak: obs.gauge("serve.pool.inflight_peak"),
            lanes: (0..lanes)
                .map(|i| LaneObsIds {
                    ios: obs.counter(&format!("serve.lane{i}.ios")),
                    bytes: obs.counter(&format!("serve.lane{i}.bytes")),
                    batch_size: obs.hist(&format!("serve.lane{i}.batch_size")),
                    service: obs.hist(&format!("serve.lane{i}.service_ns")),
                    queue_depth: obs.gauge(&format!("serve.lane{i}.queue_depth")),
                })
                .collect(),
        }
    }
}

/// Errors from the fleet-mode tenant seam.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FleetError {
    /// The pool is not serving a fleet.
    NotFleet,
    /// No such tenant.
    UnknownTenant,
    /// The tenant is already mounted on another lane.
    AlreadyAttached,
    /// A flush named an epoch that is not the fleet's next.
    EpochMismatch {
        /// The epoch the fleet will run next.
        expected: u64,
    },
    /// The feed seam refused the pushed entries.
    Feed(FeedError),
    /// The epoch run hit a device error (a placement/geometry bug).
    Io(IoError),
}

impl std::fmt::Display for FleetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FleetError::NotFleet => write!(f, "pool is not serving a fleet"),
            FleetError::UnknownTenant => write!(f, "unknown tenant"),
            FleetError::AlreadyAttached => write!(f, "tenant already attached"),
            FleetError::EpochMismatch { expected } => {
                write!(f, "flush out of order: fleet expects epoch {expected}")
            }
            FleetError::Feed(e) => write!(f, "{e}"),
            FleetError::Io(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for FleetError {}

/// One completed rebalance move, as surfaced to the server for
/// `LANE_MOVED` framing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TenantMove {
    /// The migrated tenant.
    pub tenant: u32,
    /// Its new home device index.
    pub to_device: u32,
}

/// What [`ServePool::tenant_flush`] observed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FlushOutcome {
    /// Other tenants have not flushed this epoch yet; the caller's
    /// `FLUSH_OK` is owed once the barrier clears.
    Waiting,
    /// This flush completed the barrier and the epoch ran: every lane
    /// pending on `epoch` is owed its `FLUSH_OK` now (preceded by a
    /// `LANE_MOVED` for tenants in `moves`).
    EpochComplete {
        /// The epoch that ran.
        epoch: u64,
        /// Rebalance moves the epoch completed, in completion order.
        moves: Vec<TenantMove>,
    },
}

/// The wire-facing face of a fed [`FleetSim`]: attachment bookkeeping
/// plus the all-tenants flush barrier.
struct FleetFrontend {
    sim: FleetSim,
    attached: Vec<bool>,
    flushed: Vec<bool>,
    flushed_count: usize,
}

/// The set of device lanes one server exposes, plus (in fleet mode) the
/// tenant seam.
pub struct ServePool {
    lanes: Vec<Lane>,
    fleet: Option<Mutex<FleetFrontend>>,
    config: PoolConfig,
    inflight: AtomicUsize,
    busy_ring_full: AtomicU64,
    shed_overload: AtomicU64,
    throttled: AtomicU64,
    obs: ObsHub,
    oids: PoolObsIds,
}

/// One lane's slice of a [`ServeReport`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeviceLaneReport {
    /// Lane index.
    pub index: usize,
    /// The label the lane was registered under.
    pub label: String,
    /// The device's name.
    pub name: String,
    /// The device's capacity in bytes.
    pub capacity: u64,
    /// The lane's queue head (latest doorbelled instant).
    pub queue_head: SimTime,
    /// Every session's ledger, in open order.
    pub sessions: Vec<SessionStats>,
}

/// The device-side read-out of a serving run: per-lane session ledgers
/// plus the pool-level backpressure counters.
///
/// Equality is exact, which is what the loopback-determinism acceptance
/// bar compares: a replay through the server and the same replay
/// in-process must produce `==` (and byte-identical rendered) reports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeReport {
    /// One entry per lane, in lane order.
    pub devices: Vec<DeviceLaneReport>,
    /// Submit frames refused because they exceeded the ring.
    pub busy_ring_full: u64,
    /// Submit frames shed above the in-flight ceiling.
    pub shed_overload: u64,
    /// Batches delayed by a session's rate budget.
    pub throttled: u64,
}

impl ServeReport {
    /// Total requests doorbelled across every lane and session.
    pub fn total_ios(&self) -> u64 {
        self.devices
            .iter()
            .flat_map(|d| d.sessions.iter())
            .map(|s| s.ios)
            .sum()
    }

    /// Total bytes doorbelled across every lane and session.
    pub fn total_bytes(&self) -> u64 {
        self.devices
            .iter()
            .flat_map(|d| d.sessions.iter())
            .map(|s| s.bytes)
            .sum()
    }
}

impl ServePool {
    /// Builds a pool of `(label, device)` lanes under `config`.
    ///
    /// # Panics
    ///
    /// Panics if `config.ring` or `config.max_inflight` is zero, or a
    /// configured rate is not positive and finite.
    pub fn new(devices: Vec<(String, Box<dyn BlockDevice + Send>)>, config: PoolConfig) -> Self {
        assert!(config.ring > 0, "submission ring must be positive");
        assert!(
            config.max_inflight > 0,
            "in-flight ceiling must be positive"
        );
        if let Some(rate) = config.rate {
            assert!(
                rate > 0.0 && rate.is_finite(),
                "rate budget must be positive and finite"
            );
        }
        let lanes: Vec<Lane> = devices
            .into_iter()
            .map(|(label, dev)| Lane {
                label,
                shared: Mutex::new(SharedDevice::new(dev)),
            })
            .collect();
        let obs = ObsHub::new();
        let oids = PoolObsIds::register(&obs, lanes.len());
        ServePool {
            lanes,
            fleet: None,
            config,
            inflight: AtomicUsize::new(0),
            busy_ring_full: AtomicU64::new(0),
            shed_overload: AtomicU64::new(0),
            throttled: AtomicU64::new(0),
            obs,
            oids,
        }
    }

    /// Builds a fleet-mode pool: no device lanes, every wire lane is a
    /// tenant of `sim`, which must have been built with
    /// [`FleetSim::new_fed`] (external drivers supply the arrival
    /// streams).
    ///
    /// # Panics
    ///
    /// Panics on the same invalid `config` values as
    /// [`new`](ServePool::new).
    pub fn new_fleet(sim: FleetSim, config: PoolConfig) -> Self {
        let tenants = sim.config().tenants;
        let mut pool = ServePool::new(Vec::new(), config);
        pool.fleet = Some(Mutex::new(FleetFrontend {
            sim,
            attached: vec![false; tenants],
            flushed: vec![false; tenants],
            flushed_count: 0,
        }));
        pool
    }

    /// Whether the pool is serving a fleet.
    pub fn is_fleet(&self) -> bool {
        self.fleet.is_some()
    }

    /// Number of tenants in fleet mode (0 otherwise).
    pub fn fleet_tenants(&self) -> usize {
        self.fleet
            .as_ref()
            .map_or(0, |f| f.lock().expect("fleet lock").attached.len())
    }

    /// Mounts `tenant` as a wire lane: returns the lane's advertised
    /// facts — tenant-region name, region span as capacity, and the
    /// fleet's I/O size as the block granularity.
    ///
    /// # Errors
    ///
    /// [`FleetError::NotFleet`] / [`FleetError::UnknownTenant`] /
    /// [`FleetError::AlreadyAttached`].
    pub fn attach_tenant(&self, tenant: u32) -> Result<(String, u64, u32), FleetError> {
        let mut f = self.fleet_frontend()?;
        let slot = f
            .attached
            .get_mut(tenant as usize)
            .ok_or(FleetError::UnknownTenant)?;
        if *slot {
            return Err(FleetError::AlreadyAttached);
        }
        *slot = true;
        let span = f.sim.region_span();
        let io_size = f.sim.config().io_size;
        Ok((format!("tenant{tenant}@fleet"), span, io_size))
    }

    /// Appends pushed arrival entries to `tenant`'s stream; returns how
    /// many were accepted (all of them — the feed is transactional).
    ///
    /// # Errors
    ///
    /// [`FleetError::Feed`] with the seam's typed refusal.
    pub fn tenant_push(&self, tenant: u32, entries: &[TraceEntry]) -> Result<u64, FleetError> {
        let mut f = self.fleet_frontend()?;
        f.sim
            .push_entries(tenant, entries)
            .map_err(FleetError::Feed)?;
        Ok(entries.len() as u64)
    }

    /// Marks `tenant` flushed for `epoch`. When this flush is the last
    /// one the barrier was waiting on, the epoch runs and the outcome
    /// lists the rebalance moves it completed.
    ///
    /// # Errors
    ///
    /// [`FleetError::EpochMismatch`] for an out-of-order flush,
    /// [`FleetError::Io`] if the epoch run hit a device error.
    pub fn tenant_flush(&self, tenant: u32, epoch: u64) -> Result<FlushOutcome, FleetError> {
        let mut f = self.fleet_frontend()?;
        if tenant as usize >= f.attached.len() {
            return Err(FleetError::UnknownTenant);
        }
        let expected = f.sim.epoch() as u64;
        if epoch != expected {
            return Err(FleetError::EpochMismatch { expected });
        }
        if !f.flushed[tenant as usize] {
            f.flushed[tenant as usize] = true;
            f.flushed_count += 1;
        }
        if f.flushed_count < f.flushed.len() {
            return Ok(FlushOutcome::Waiting);
        }
        f.sim.run_epoch().map_err(FleetError::Io)?;
        f.flushed.fill(false);
        f.flushed_count = 0;
        let moves = f
            .sim
            .migrations()
            .iter()
            .filter(|m| m.epoch == epoch)
            .map(|m| TenantMove {
                tenant: m.tenant,
                to_device: m.to.0 as u32,
            })
            .collect();
        Ok(FlushOutcome::EpochComplete { epoch, moves })
    }

    /// The fleet's report so far (`None` for a roster pool).
    pub fn fleet_report(&self) -> Option<FleetReport> {
        self.fleet
            .as_ref()
            .map(|f| f.lock().expect("fleet lock").sim.report())
    }

    fn fleet_frontend(&self) -> Result<std::sync::MutexGuard<'_, FleetFrontend>, FleetError> {
        self.fleet
            .as_ref()
            .map(|f| f.lock().expect("fleet lock"))
            .ok_or(FleetError::NotFleet)
    }

    /// The pool's configuration.
    pub fn config(&self) -> &PoolConfig {
        &self.config
    }

    /// Number of device lanes.
    pub fn devices(&self) -> usize {
        self.lanes.len()
    }

    /// Opens a session on lane `device`; `None` if the index is out of
    /// range.
    pub fn open(&self, device: usize) -> Option<(PoolSession, DeviceInfo)> {
        let lane = self.lanes.get(device)?;
        let mut shared = lane.shared.lock().expect("lane lock");
        let session = shared.open_session();
        let info = shared.info();
        Some((
            PoolSession {
                device,
                session,
                bucket: self.config.rate.map(|r| TokenBucket::new(r, r)),
                throttled: 0,
            },
            info,
        ))
    }

    /// Submits one batch under `sess`, applying ring bound, overload
    /// shedding and the session's rate budget (see the [module
    /// docs](self)).
    ///
    /// On success the returned [`InflightGuard`] holds the batch's
    /// admission slot; drop it once the completions have been delivered.
    ///
    /// # Errors
    ///
    /// [`Rejection::Busy`] refusals issue no I/O. [`Rejection::Io`]
    /// propagates the device's typed error.
    pub fn submit(
        &self,
        sess: &mut PoolSession,
        reqs: &[IoRequest],
    ) -> Result<(Vec<Completion>, InflightGuard<'_>), Rejection> {
        if reqs.len() > self.config.ring {
            self.busy_ring_full.fetch_add(1, Ordering::Relaxed);
            self.obs.inc(self.oids.busy_ring_full);
            return Err(Rejection::Busy(BusyReason::RingFull));
        }
        // Admission: occupancy counts whole batches, admission-to-drop of
        // the guard. CAS so a burst of arrivals cannot overshoot.
        let mut current = self.inflight.load(Ordering::Acquire);
        loop {
            if current >= self.config.max_inflight {
                self.shed_overload.fetch_add(1, Ordering::Relaxed);
                self.obs.inc(self.oids.shed_overload);
                return Err(Rejection::Busy(BusyReason::Overload));
            }
            match self.inflight.compare_exchange_weak(
                current,
                current + 1,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => break,
                Err(observed) => current = observed,
            }
        }
        let guard = InflightGuard { pool: self };
        self.obs
            .set_max(self.oids.inflight_peak, (current + 1) as i64);

        // Rate budget: shift the whole batch to the bucket's grant
        // instant (relative spacing within the batch is preserved).
        let mut delay_nanos = 0u64;
        if let (Some(bucket), Some(first)) = (sess.bucket.as_mut(), reqs.first()) {
            let bytes: u64 = reqs.iter().map(|r| r.len as u64).sum();
            let grant = bucket.reserve(first.submit_time, bytes);
            delay_nanos = grant
                .as_nanos()
                .saturating_sub(first.submit_time.as_nanos());
            if delay_nanos > 0 {
                sess.throttled += 1;
                self.throttled.fetch_add(1, Ordering::Relaxed);
                self.obs.inc(self.oids.throttled);
            }
        }

        let mut batch = IoBatch::with_capacity(reqs.len());
        for req in reqs {
            let mut shifted = *req;
            shifted.submit_time =
                SimTime::from_nanos(shifted.submit_time.as_nanos().saturating_add(delay_nanos));
            batch.push(shifted);
        }
        let owners = vec![sess.session; batch.len()];
        let lane = &self.lanes[sess.device];
        let completions = {
            let mut shared = lane.shared.lock().expect("lane lock");
            shared
                .submit_batch_shared(&owners, &batch)
                .map_err(Rejection::Io)?
            // Lock released here — never held across a response write
            // (and never while touching the obs hub: the hub-then-lane
            // order in obs_snapshot stays deadlock-free).
        };
        self.obs.inc(self.oids.batches);
        let bytes: u64 = reqs.iter().map(|r| r.len as u64).sum();
        self.obs.add(self.oids.ios, reqs.len() as u64);
        self.obs.add(self.oids.bytes, bytes);
        if let Some(ids) = self.oids.lanes.get(sess.device).copied() {
            self.obs.add(ids.ios, reqs.len() as u64);
            self.obs.add(ids.bytes, bytes);
            self.obs.record_ns(ids.batch_size, reqs.len() as u64);
            self.obs.set_max(ids.queue_depth, reqs.len() as i64);
            for c in &completions {
                self.obs.record_ns(
                    ids.service,
                    c.completes.saturating_since(c.submitted).as_nanos(),
                );
            }
        }
        Ok((completions, guard))
    }

    /// [`submit`](ServePool::submit), but the admission slot comes back
    /// as an [`OwnedInflightGuard`]: the event loop parks it in the
    /// connection's state machine until the completions frame has fully
    /// drained to the socket, so a stalled reader keeps occupying its
    /// slot exactly as in the thread-per-connection design.
    ///
    /// # Errors
    ///
    /// As [`submit`](ServePool::submit).
    pub fn submit_owned(
        self: &Arc<Self>,
        sess: &mut PoolSession,
        reqs: &[IoRequest],
    ) -> Result<(Vec<Completion>, OwnedInflightGuard), Rejection> {
        let (completions, guard) = self.submit(sess, reqs)?;
        // Transfer the decrement duty from the borrowed guard to the
        // owned one: exactly one of them may run its destructor.
        std::mem::forget(guard);
        Ok((
            completions,
            OwnedInflightGuard {
                pool: Arc::clone(self),
            },
        ))
    }

    /// Whether `sess` still names a live session on its lane — the
    /// sanity check the server runs before re-arming a resumed session's
    /// lanes onto the pool.
    pub fn validate_session(&self, sess: &PoolSession) -> bool {
        self.lanes.get(sess.device).is_some_and(|lane| {
            lane.shared
                .lock()
                .expect("lane lock")
                .has_session(sess.session)
        })
    }

    /// The session's ledger and its lane's queue head.
    pub fn stats(&self, sess: &PoolSession) -> (SessionStats, SimTime) {
        let shared = self.lanes[sess.device].shared.lock().expect("lane lock");
        (*shared.stats(sess.session), shared.queue_head())
    }

    /// Submit frames refused for exceeding the ring.
    pub fn busy_ring_full(&self) -> u64 {
        self.busy_ring_full.load(Ordering::Relaxed)
    }

    /// Submit frames shed above the in-flight ceiling.
    pub fn shed_overload(&self) -> u64 {
        self.shed_overload.load(Ordering::Relaxed)
    }

    /// Batches delayed by a session rate budget.
    pub fn throttled(&self) -> u64 {
        self.throttled.load(Ordering::Relaxed)
    }

    /// The device-side report: every lane's session ledgers plus the
    /// pool-level backpressure counters.
    pub fn report(&self) -> ServeReport {
        ServeReport {
            devices: self
                .lanes
                .iter()
                .enumerate()
                .map(|(index, lane)| {
                    let shared = lane.shared.lock().expect("lane lock");
                    let info = shared.info();
                    DeviceLaneReport {
                        index,
                        label: lane.label.clone(),
                        name: info.name().to_string(),
                        capacity: info.capacity(),
                        queue_head: shared.queue_head(),
                        sessions: shared.session_stats().to_vec(),
                    }
                })
                .collect(),
            busy_ring_full: self.busy_ring_full(),
            shed_overload: self.shed_overload(),
            throttled: self.throttled(),
        }
    }

    /// The pool's shared telemetry hub — the event loop and the metrics
    /// endpoint clone this to record their own counters alongside the
    /// pool's.
    pub fn obs(&self) -> &ObsHub {
        &self.obs
    }

    /// A live telemetry snapshot: the hub's rows (pool counters, per-lane
    /// histograms, whatever the event loop registered) in registration
    /// order, then each lane's underlying device observed under
    /// `serve.device{i}.*`, then — in fleet mode — the fleet simulation's
    /// whole snapshot. Deterministic: same run, same bytes.
    pub fn obs_snapshot(&self) -> ObsSnapshot {
        // Clone the registry out of the hub first, then observe devices
        // into the clone: no lane lock is ever taken under the hub lock
        // (submit records hub-side only after releasing its lane lock).
        let mut reg = self.obs.with_registry(|r| r.clone());
        for (i, lane) in self.lanes.iter().enumerate() {
            let shared = lane.shared.lock().expect("lane lock");
            shared
                .inner()
                .observe_into(&format!("serve.device{i}"), &mut reg);
        }
        let mut snap = reg.snapshot();
        if let Some(f) = self.fleet.as_ref() {
            let fleet_snap = f.lock().expect("fleet lock").sim.obs_snapshot();
            snap.extend_prefixed("", &fleet_snap);
        }
        snap
    }

    /// A full `uc.obs.v1` telemetry capture: the combined snapshot from
    /// [`ServePool::obs_snapshot`] plus the flight-recorder tail — the
    /// hub's own events followed, in fleet mode, by the fleet
    /// simulation's (migration phases, contract violations).
    pub fn obs_report(&self) -> uc_obs::ObsReport {
        let mut report = self.obs.report();
        report.snapshot = self.obs_snapshot();
        if let Some(f) = self.fleet.as_ref() {
            let fleet_report = f.lock().expect("fleet lock").sim.obs_report();
            report.events.extend(fleet_report.events);
            report.dropped_events += fleet_report.dropped_events;
        }
        report
    }

    /// Service-latency percentiles merged across every lane — the
    /// summary `serve --bench-json` publishes.
    pub fn service_summary(&self) -> uc_obs::HistSummary {
        let ids: Vec<HistId> = self.oids.lanes.iter().map(|l| l.service).collect();
        uc_obs::HistSummary::of(&self.obs.merged_hist(&ids))
    }

    /// Opens a session on lane `device` wrapped as an in-process
    /// [`BlockDevice`] — the local twin of the remote client, used by
    /// `serve --inprocess` to produce the determinism baseline.
    pub fn device(&self, device: usize) -> Option<PoolDevice<'_>> {
        let (session, info) = self.open(device)?;
        Some(PoolDevice {
            pool: self,
            session,
            info,
        })
    }
}

/// An in-process session on a [`ServePool`] lane, speaking the plain
/// [`BlockDevice`] interface.
///
/// Batches larger than the pool's ring are split at the ring boundary
/// (splitting never changes the schedule — every request carries its own
/// submit instant), and an overload refusal is retried after yielding,
/// so the adapter converges exactly like the network client's retry
/// path.
pub struct PoolDevice<'a> {
    pool: &'a ServePool,
    session: PoolSession,
    info: DeviceInfo,
}

impl PoolDevice<'_> {
    /// The underlying pool session.
    pub fn session(&self) -> &PoolSession {
        &self.session
    }
}

impl BlockDevice for PoolDevice<'_> {
    fn info(&self) -> DeviceInfo {
        self.info.clone()
    }

    fn submit(&mut self, req: &IoRequest) -> IoResult {
        let completions = self.submit_batch(&IoBatch::from(vec![*req]))?;
        Ok(completions[0].completes)
    }

    fn submit_batch(&mut self, batch: &IoBatch) -> Result<Vec<Completion>, IoError> {
        let ring = self.pool.config.ring;
        let mut out = Vec::with_capacity(batch.len());
        for chunk in batch.requests().chunks(ring) {
            let base = out.len();
            loop {
                match self.pool.submit(&mut self.session, chunk) {
                    Ok((completions, guard)) => {
                        drop(guard);
                        out.extend(completions.into_iter().map(|c| Completion {
                            index: base + c.index,
                            ..c
                        }));
                        break;
                    }
                    Err(Rejection::Busy(_)) => std::thread::yield_now(),
                    Err(Rejection::Io(e)) => return Err(e),
                }
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uc_sim::SimDuration;

    /// A fixed-latency device.
    struct Fixed;

    impl BlockDevice for Fixed {
        fn info(&self) -> DeviceInfo {
            DeviceInfo::new("fixed", 1 << 30, 512)
        }
        fn submit(&mut self, req: &IoRequest) -> IoResult {
            self.info().validate(req)?;
            Ok(req.submit_time + SimDuration::from_micros(10))
        }
    }

    fn pool(config: PoolConfig) -> ServePool {
        ServePool::new(
            vec![
                (
                    "a".to_string(),
                    Box::new(Fixed) as Box<dyn BlockDevice + Send>,
                ),
                ("b".to_string(), Box::new(Fixed)),
            ],
            config,
        )
    }

    fn at(nanos: u64) -> SimTime {
        SimTime::from_nanos(nanos)
    }

    #[test]
    fn sessions_submit_and_account_per_lane() {
        let pool = pool(PoolConfig::default());
        let (mut s0, info) = pool.open(0).unwrap();
        let (mut s1, _) = pool.open(1).unwrap();
        assert_eq!(info.capacity(), 1 << 30);
        let reqs = [
            IoRequest::write(0, 4096, at(0)),
            IoRequest::read(4096, 512, at(5)),
        ];
        let (completions, guard) = pool.submit(&mut s0, &reqs).unwrap();
        assert_eq!(completions.len(), 2);
        drop(guard);
        let (completions, guard) = pool.submit(&mut s1, &reqs[..1]).unwrap();
        assert_eq!(completions.len(), 1);
        drop(guard);
        let report = pool.report();
        assert_eq!(report.devices.len(), 2);
        assert_eq!(report.devices[0].sessions[0].ios, 2);
        assert_eq!(report.devices[1].sessions[0].ios, 1);
        assert_eq!(report.total_ios(), 3);
        assert_eq!(report.total_bytes(), 4096 + 512 + 4096);
        assert_eq!(report.busy_ring_full, 0);
        assert_eq!(report.shed_overload, 0);
    }

    #[test]
    fn oversized_batches_are_refused_with_ring_full() {
        let pool = pool(PoolConfig {
            ring: 2,
            ..PoolConfig::default()
        });
        let (mut s, _) = pool.open(0).unwrap();
        let reqs = [
            IoRequest::write(0, 512, at(0)),
            IoRequest::write(512, 512, at(0)),
            IoRequest::write(1024, 512, at(0)),
        ];
        assert_eq!(
            pool.submit(&mut s, &reqs).unwrap_err(),
            Rejection::Busy(BusyReason::RingFull)
        );
        assert_eq!(pool.busy_ring_full(), 1);
        // Nothing was issued.
        assert_eq!(pool.report().total_ios(), 0);
    }

    #[test]
    fn arrivals_above_the_ceiling_are_shed() {
        let pool = pool(PoolConfig {
            max_inflight: 1,
            ..PoolConfig::default()
        });
        let (mut s, _) = pool.open(0).unwrap();
        let reqs = [IoRequest::write(0, 512, at(0))];
        let (_, guard) = pool.submit(&mut s, &reqs).unwrap();
        // The first batch's guard is still alive: the next arrival sheds.
        assert_eq!(
            pool.submit(&mut s, &reqs).unwrap_err(),
            Rejection::Busy(BusyReason::Overload)
        );
        assert_eq!(pool.shed_overload(), 1);
        drop(guard);
        // Slot free again: the retry is admitted.
        let (_, guard) = pool.submit(&mut s, &reqs).unwrap();
        drop(guard);
        assert_eq!(pool.report().total_ios(), 2);
    }

    #[test]
    fn rate_budget_delays_instead_of_refusing() {
        // 1 MB/s budget, 2 MB batch: granted ~1 s after the burst.
        let pool = pool(PoolConfig {
            rate: Some(1e6),
            ..PoolConfig::default()
        });
        let (mut s, _) = pool.open(0).unwrap();
        let reqs: Vec<IoRequest> = (0..4)
            .map(|i| IoRequest::write(i * (512 << 10), 512 << 10, at(0)))
            .collect();
        let (completions, guard) = pool.submit(&mut s, &reqs).unwrap();
        drop(guard);
        // 2 MB against a 1 MB burst: 1 MB of deficit at 1 MB/s = 1 s.
        assert!(completions[0].submitted >= at(999_000_000));
        assert_eq!(s.throttled(), 1);
        assert_eq!(pool.throttled(), 1);
    }

    #[test]
    fn device_errors_propagate_typed() {
        let pool = pool(PoolConfig::default());
        let (mut s, _) = pool.open(0).unwrap();
        let reqs = [IoRequest::write(1 << 40, 512, at(0))];
        assert!(matches!(
            pool.submit(&mut s, &reqs),
            Err(Rejection::Io(IoError::OutOfRange { .. }))
        ));
        // The failed batch's admission slot was released with its guard.
        let ok = [IoRequest::write(0, 512, at(0))];
        assert!(pool.submit(&mut s, &ok).is_ok());
    }

    #[test]
    fn unknown_lane_is_refused() {
        let pool = pool(PoolConfig::default());
        assert!(pool.open(2).is_none());
        assert!(pool.device(7).is_none());
    }

    #[test]
    fn owned_guards_hold_the_same_admission_slot() {
        let pool = Arc::new(pool(PoolConfig {
            max_inflight: 1,
            ..PoolConfig::default()
        }));
        let (mut s, _) = pool.open(0).unwrap();
        let reqs = [IoRequest::write(0, 512, at(0))];
        let (_, guard) = pool.submit_owned(&mut s, &reqs).unwrap();
        assert_eq!(
            pool.submit(&mut s, &reqs).unwrap_err(),
            Rejection::Busy(BusyReason::Overload)
        );
        drop(guard);
        let (_, guard) = pool.submit_owned(&mut s, &reqs).unwrap();
        drop(guard);
        assert_eq!(pool.report().total_ios(), 2);
        assert!(pool.validate_session(&s));
    }

    #[test]
    fn fleet_mode_serves_tenants_behind_the_epoch_barrier() {
        use uc_essd::{Essd, EssdConfig};
        use uc_fleet::{FleetConfig, FleetDevice};

        let fleet_config =
            FleetConfig::new(3, 1).with_duration(uc_sim::SimDuration::from_millis(4));
        let devices: Vec<FleetDevice> = vec![Box::new(Essd::new(
            EssdConfig::alibaba_pl3(64 << 20).with_name("fleet-essd-0".to_string()),
        ))];
        let sim = FleetSim::new_fed(fleet_config, devices);
        let pool = ServePool::new_fleet(sim, PoolConfig::default());
        assert!(pool.is_fleet());
        assert_eq!(pool.fleet_tenants(), 3);

        let (name, span, io_size) = pool.attach_tenant(0).unwrap();
        assert_eq!(name, "tenant0@fleet");
        assert!(span >= io_size as u64);
        assert_eq!(pool.attach_tenant(0), Err(FleetError::AlreadyAttached));
        assert_eq!(pool.attach_tenant(9), Err(FleetError::UnknownTenant));

        let entry = TraceEntry {
            at: at(10),
            kind: uc_blockdev::IoKind::Write,
            offset: 0,
            len: io_size,
        };
        assert_eq!(pool.tenant_push(0, &[entry]).unwrap(), 1);
        assert!(matches!(
            pool.tenant_push(
                0,
                &[TraceEntry {
                    offset: span,
                    ..entry
                }]
            ),
            Err(FleetError::Feed(uc_fleet::FeedError::OutOfRegion { .. }))
        ));

        // The barrier: the epoch runs only once every tenant flushed.
        assert_eq!(
            pool.tenant_flush(0, 1),
            Err(FleetError::EpochMismatch { expected: 0 })
        );
        assert_eq!(pool.tenant_flush(0, 0).unwrap(), FlushOutcome::Waiting);
        assert_eq!(pool.tenant_flush(1, 0).unwrap(), FlushOutcome::Waiting);
        match pool.tenant_flush(2, 0).unwrap() {
            FlushOutcome::EpochComplete { epoch: 0, moves } => assert!(moves.is_empty()),
            other => panic!("barrier did not clear: {other:?}"),
        }
        let report = pool.fleet_report().expect("fleet report");
        assert_eq!(report.epochs, 1);
        assert_eq!(report.total_ios, 1);

        // A roster pool has no tenant seam.
        let roster = super::tests::pool(PoolConfig::default());
        assert_eq!(roster.attach_tenant(0), Err(FleetError::NotFleet));
        assert!(roster.fleet_report().is_none());
    }

    #[test]
    fn obs_snapshot_mirrors_the_report_and_is_deterministic() {
        let drive = |pool: &ServePool| {
            let (mut s0, _) = pool.open(0).unwrap();
            let (mut s1, _) = pool.open(1).unwrap();
            for i in 0..4u64 {
                let reqs = [
                    IoRequest::write(i * 8192, 4096, at(i * 100)),
                    IoRequest::read(i * 8192, 512, at(i * 100 + 10)),
                ];
                let (_, g) = pool.submit(&mut s0, &reqs).unwrap();
                drop(g);
            }
            let (_, g) = pool
                .submit(&mut s1, &[IoRequest::write(0, 4096, at(9))])
                .unwrap();
            drop(g);
        };
        let a = pool(PoolConfig::default());
        drive(&a);
        let snap = a.obs_snapshot();
        assert_eq!(snap.counter("serve.pool.ios"), Some(a.report().total_ios()));
        assert_eq!(
            snap.counter("serve.pool.bytes"),
            Some(a.report().total_bytes())
        );
        assert_eq!(snap.counter("serve.lane1.ios"), Some(1));
        let svc = snap.histogram("serve.lane0.service_ns").unwrap();
        assert_eq!(svc.count, 8);
        assert!(svc.p99_ns >= svc.p50_ns);
        let sizes = snap.histogram("serve.lane0.batch_size").unwrap();
        assert_eq!((sizes.count, sizes.max_ns), (4, 2));

        // Same traffic on a twin pool: byte-identical snapshots.
        let b = pool(PoolConfig::default());
        drive(&b);
        assert_eq!(snap.render_text(), b.obs_snapshot().render_text());
        assert_eq!(
            snap.render_prometheus(),
            b.obs_snapshot().render_prometheus()
        );
    }

    #[test]
    fn pool_device_matches_direct_device_exactly() {
        // The in-process adapter is transparent: the same batch sequence
        // against a bare device produces identical completions.
        let pool = pool(PoolConfig {
            ring: 3, // force mid-batch splits
            ..PoolConfig::default()
        });
        let mut via_pool = pool.device(0).unwrap();
        let mut direct = Fixed;
        let batch: IoBatch = (0..8u64)
            .map(|i| IoRequest::write(i * 4096, 4096, at(i * 100)))
            .collect();
        let a = via_pool.submit_batch(&batch).unwrap();
        let b = direct.submit_batch(&batch).unwrap();
        assert_eq!(a, b);
        assert_eq!(via_pool.info().name(), "fixed");
        // Single-request path too.
        let req = IoRequest::read(0, 4096, at(10_000));
        assert_eq!(via_pool.submit(&req).unwrap(), direct.submit(&req).unwrap());
    }
}
