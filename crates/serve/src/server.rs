//! The serving loop: thread-per-connection over a [`ServePool`].
//!
//! Each accepted connection runs a synchronous request/response handler:
//! the first frame must be OPEN_SESSION, after which SUBMIT_BATCH /
//! STATS / CLOSE frames are serviced until the client closes. The
//! protection ordering matters:
//!
//! * the device lane's mutex is held only for the doorbell itself, never
//!   across a socket write — a stalled reader blocks its own handler
//!   thread, not other sessions;
//! * the batch's [`InflightGuard`](crate::InflightGuard) *is* held
//!   across the response write, so slow clients keep occupying their
//!   admission slot and the overload ceiling sees them;
//! * any decode error — corruption, a foreign kind tag, a truncated
//!   frame — is answered with a best-effort typed ERR frame and the
//!   connection is closed. The server never panics on hostile bytes.

use crate::net::{Listener, Stream};
use crate::pool::{Rejection, ServePool};
use crate::wire::{Frame, WireStats};
use std::io::{self, BufReader};
use std::sync::Arc;

/// Writes `frame`, ignoring transport errors (the peer may already be
/// gone; the handler is ending either way).
fn best_effort(writer: &mut dyn io::Write, frame: &Frame) {
    let _ = frame.write_to(writer);
}

/// Serves one connection to completion. See the [module docs](self) for
/// the protocol.
///
/// # Errors
///
/// Propagates transport errors on the response path (a decode error on
/// the request path is answered with an ERR frame and `Ok(())`).
pub fn serve_connection(stream: Box<dyn Stream>, pool: &ServePool) -> io::Result<()> {
    let mut writer = stream.try_clone_stream()?;
    let mut reader = BufReader::new(stream);

    // The handshake: exactly one OPEN_SESSION before anything else.
    let (mut session, info) = match Frame::read_from(&mut reader) {
        Ok(Some(Frame::OpenSession { device })) => match pool.open(device as usize) {
            Some(opened) => opened,
            None => {
                best_effort(
                    &mut writer,
                    &Frame::Err {
                        io: None,
                        message: format!(
                            "device index {device} out of range ({} lanes)",
                            pool.devices()
                        ),
                    },
                );
                return Ok(());
            }
        },
        Ok(Some(other)) => {
            best_effort(
                &mut writer,
                &Frame::Err {
                    io: None,
                    message: format!("expected OPEN_SESSION, got {}", other.kind()),
                },
            );
            return Ok(());
        }
        Ok(None) => return Ok(()), // connected and left; nothing to do
        Err(e) => {
            best_effort(
                &mut writer,
                &Frame::Err {
                    io: None,
                    message: format!("bad OPEN_SESSION frame: {e}"),
                },
            );
            return Ok(());
        }
    };
    let session_id = session.session().index() as u32;
    Frame::OpenOk {
        session: session_id,
        name: info.name().to_string(),
        capacity: info.capacity(),
        logical_block: info.logical_block(),
    }
    .write_to(&mut writer)?;

    loop {
        match Frame::read_from(&mut reader) {
            Ok(Some(Frame::Submit {
                session: claimed,
                seq,
                reqs,
            })) => {
                if claimed != session_id {
                    best_effort(
                        &mut writer,
                        &Frame::Err {
                            io: None,
                            message: format!(
                                "submit names session {claimed}, connection owns {session_id}"
                            ),
                        },
                    );
                    return Ok(());
                }
                match pool.submit(&mut session, &reqs) {
                    Ok((completions, guard)) => {
                        // The guard outlives the write: a client that
                        // stalls reading this response keeps holding its
                        // admission slot.
                        Frame::Completions { seq, completions }.write_to(&mut writer)?;
                        drop(guard);
                    }
                    Err(Rejection::Busy(reason)) => {
                        Frame::Busy { seq, reason }.write_to(&mut writer)?;
                    }
                    Err(Rejection::Io(e)) => {
                        best_effort(
                            &mut writer,
                            &Frame::Err {
                                io: Some(e),
                                message: format!("device rejected request: {e}"),
                            },
                        );
                        return Ok(());
                    }
                }
            }
            Ok(Some(Frame::Stats { session: claimed })) => {
                if claimed != session_id {
                    best_effort(
                        &mut writer,
                        &Frame::Err {
                            io: None,
                            message: format!(
                                "stats names session {claimed}, connection owns {session_id}"
                            ),
                        },
                    );
                    return Ok(());
                }
                let (stats, queue_head) = pool.stats(&session);
                Frame::StatsOk {
                    session: session_id,
                    stats: WireStats { stats, queue_head },
                }
                .write_to(&mut writer)?;
            }
            Ok(Some(Frame::Close)) => {
                best_effort(&mut writer, &Frame::CloseOk);
                return Ok(());
            }
            Ok(Some(other)) => {
                best_effort(
                    &mut writer,
                    &Frame::Err {
                        io: None,
                        message: format!("unexpected frame {}", other.kind()),
                    },
                );
                return Ok(());
            }
            Ok(None) => return Ok(()), // clean EOF
            Err(e) => {
                // Corruption anywhere on the stream: answer typed, close.
                best_effort(
                    &mut writer,
                    &Frame::Err {
                        io: None,
                        message: format!("bad frame: {e}"),
                    },
                );
                return Ok(());
            }
        }
    }
}

/// Accepts exactly `sessions` connections on `listener`, serves each on
/// its own thread, and returns once every handler has finished.
///
/// The bounded accept count is the pool-thread discipline of a
/// dependency-free server: the caller decides how many concurrent
/// clients one serving run admits (the `serve` binary's `--sessions`),
/// and the run has a well-defined end — after which the pool's
/// [`report`](ServePool::report) is the complete device-side record.
///
/// # Errors
///
/// Propagates accept errors; per-connection transport errors end that
/// connection's handler without failing the run.
pub fn serve_sessions(
    listener: &Listener,
    pool: &Arc<ServePool>,
    sessions: usize,
) -> io::Result<()> {
    let mut handlers = Vec::with_capacity(sessions);
    for _ in 0..sessions {
        let conn = listener.accept()?;
        let pool = Arc::clone(pool);
        handlers.push(std::thread::spawn(move || {
            let _ = serve_connection(conn, &pool);
        }));
    }
    for handler in handlers {
        handler.join().expect("connection handler panicked");
    }
    Ok(())
}
