//! The serving event loop: one thread, hundreds of connections.
//!
//! PR 8's server spent one thread per connection; this one is a single
//! readiness-driven loop over a [`Poller`]: non-blocking sockets, a
//! per-connection state machine for partial frame reads and writes, and
//! a session table that outlives connections. A connection is just a
//! *carrier* for a session — when it drops, the session parks (its
//! per-lane response caches intact), and a `RESUME` on a fresh
//! connection replays exactly the responses the client never
//! acknowledged.
//!
//! Admission guards behave exactly as in the threaded design: an
//! admitted batch's [`OwnedInflightGuard`] is parked in the connection
//! until the response bytes fully drain to the socket, so a stalled
//! reader still occupies its in-flight slot and the overload ceiling
//! sees it.
//!
//! Sequence discipline per lane (`next_seq` starts at 1):
//!
//! * `seq == next_seq` — new request: process, cache the encoded
//!   response under `seq`, advance;
//! * `seq == next_seq - 1` with the cache holding `seq` — duplicate of
//!   an unacknowledged request (a resume raced the response): resend
//!   the cached bytes, byte-identical;
//! * `seq` equal to an unanswered flush's seq — duplicate of a flush
//!   still parked on the epoch barrier: ignored; the barrier answers it
//!   once;
//! * anything else — protocol error; the connection closes (the session
//!   parks and may resume).

use crate::net::{Listener, Stream};
use crate::poll::Poller;
use crate::pool::{FleetError, FlushOutcome, OwnedInflightGuard, Rejection, ServePool};
use crate::wire::{
    Body, ErrCode, Frame, FrameHeader, LaneAck, LaneTarget, WireStats, CONTROL_LANE, WIRE_VERSION,
};
use std::io::{self, Read, Write};
use std::sync::Arc;
use uc_blockdev::IoRequest;
use uc_persist::{decode_record, peek_record_len, DecodeError};
use uc_workload::TraceEntry;

/// The event loop's own counters, returned when it exits.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EventLoopStats {
    /// Connections accepted over the loop's lifetime.
    pub connections_accepted: u64,
    /// The most connections alive at once — the "one thread, N
    /// connections" claim, measured.
    pub peak_connections: usize,
    /// Sessions that reached an orderly `CLOSE`.
    pub sessions_served: u64,
    /// Successful `RESUME` handshakes.
    pub resumes: u64,
    /// Poller wait calls (loop iterations).
    pub polls: u64,
    /// Readiness events dispatched to connections or the listener.
    pub dispatches: u64,
    /// Complete frames decoded and handled.
    pub frames: u64,
    /// Reads that drained a socket dry (`WouldBlock`) — how often a
    /// connection's request stream out-ran the kernel buffer.
    pub read_stalls: u64,
    /// Writes parked on a full socket buffer (`WouldBlock`) — slow
    /// readers holding their admission slots.
    pub write_stalls: u64,
    /// Cached responses re-sent byte-identically: duplicate-seq resends
    /// plus resume replay-list entries.
    pub replays: u64,
}

impl EventLoopStats {
    /// Appends this loop's counters to `snapshot` as `serve.loop.*`
    /// rows — the shape the metrics frame and the bench JSON share.
    pub fn append_to(&self, snapshot: &mut uc_obs::ObsSnapshot) {
        use uc_obs::MetricValue;
        for (name, v) in [
            ("serve.loop.connections_accepted", self.connections_accepted),
            ("serve.loop.peak_connections", self.peak_connections as u64),
            ("serve.loop.sessions_served", self.sessions_served),
            ("serve.loop.resumes", self.resumes),
            ("serve.loop.polls", self.polls),
            ("serve.loop.dispatches", self.dispatches),
            ("serve.loop.frames", self.frames),
            ("serve.loop.read_stalls", self.read_stalls),
            ("serve.loop.write_stalls", self.write_stalls),
            ("serve.loop.replays", self.replays),
        ] {
            snapshot.push(name.to_string(), MetricValue::Counter(v));
        }
    }
}

const LISTENER_TOKEN: u64 = u64::MAX;
/// Per-readiness read budget: polling is level-triggered, so capping one
/// connection's drain keeps the loop fair under floods without losing
/// the wakeup.
const READ_BUDGET: usize = 256 << 10;

enum LaneBackend {
    Control,
    Device(crate::pool::PoolSession),
    Tenant(u32),
}

/// Copyable shape of a lane's backend, so dispatch does not hold a
/// borrow of the session table across handler calls.
#[derive(Clone, Copy)]
enum BackendKind {
    Control,
    Device,
    Tenant(u32),
}

struct LaneSrv {
    backend: LaneBackend,
    next_seq: u64,
    /// The encoded bytes of the last response on this lane (possibly
    /// several frames, e.g. `LANE_MOVED` + `FLUSH_OK`), keyed by the
    /// request seq they answer — the resume replay source.
    cached: Option<(u64, Vec<u8>)>,
    /// A flush parked on the epoch barrier: `(seq, epoch)`.
    pending_flush: Option<(u64, u64)>,
}

impl LaneSrv {
    fn new(backend: LaneBackend) -> Self {
        LaneSrv {
            backend,
            next_seq: 1,
            cached: None,
            pending_flush: None,
        }
    }
}

struct SessionSrv {
    token: u64,
    lanes: Vec<LaneSrv>,
    /// The connection currently carrying the session; `None` = parked.
    conn: Option<usize>,
    closed: bool,
}

struct Conn {
    stream: Box<dyn Stream>,
    rbuf: Vec<u8>,
    wbuf: Vec<u8>,
    wpos: usize,
    /// Admission slots held until `wbuf` fully drains.
    guards: Vec<OwnedInflightGuard>,
    session: Option<usize>,
    /// Close the connection once `wbuf` drains.
    closing: bool,
    write_interest: bool,
}

enum SeqCheck {
    Ignore,
    Resend(Vec<u8>),
    OutOfOrder,
    New,
}

struct EventLoop {
    pool: Arc<ServePool>,
    poller: Poller,
    conns: Vec<Option<Conn>>,
    sessions: Vec<SessionSrv>,
    stats: EventLoopStats,
    closed_sessions: usize,
    live_conns: usize,
}

/// Serves connections on `listener` until `sessions` wire sessions have
/// closed in an orderly way, driving every connection from this one
/// thread. Connection churn does not count against the target: a killed
/// connection parks its session, and the session's eventual `CLOSE`
/// (over any later connection) is what counts.
///
/// # Errors
///
/// Propagates fatal listener/poller errors. Per-connection I/O errors
/// only drop that connection.
pub fn serve_events(
    listener: &Listener,
    pool: &Arc<ServePool>,
    sessions: usize,
) -> io::Result<EventLoopStats> {
    listener.set_nonblocking(true)?;
    let mut lp = EventLoop {
        pool: Arc::clone(pool),
        poller: Poller::new()?,
        conns: Vec::new(),
        sessions: Vec::new(),
        stats: EventLoopStats::default(),
        closed_sessions: 0,
        live_conns: 0,
    };
    lp.poller.add(listener.raw_fd(), LISTENER_TOKEN, false)?;
    let mut events = Vec::new();
    while lp.closed_sessions < sessions || lp.has_undelivered_bytes() {
        lp.poller.wait(&mut events, 1000)?;
        lp.stats.polls += 1;
        lp.stats.dispatches += events.len() as u64;
        for ev in &events {
            if ev.token == LISTENER_TOKEN {
                lp.accept_ready(listener);
            } else if ev.readable {
                lp.read_ready(ev.token as usize);
            }
        }
        lp.flush_writes();
    }
    Ok(lp.stats)
}

impl EventLoop {
    fn has_undelivered_bytes(&self) -> bool {
        self.conns.iter().flatten().any(|c| c.wpos < c.wbuf.len())
    }

    fn accept_ready(&mut self, listener: &Listener) {
        loop {
            match listener.accept() {
                Ok(stream) => {
                    if stream.set_nonblocking_stream(true).is_err() {
                        continue;
                    }
                    let slot = self
                        .conns
                        .iter()
                        .position(Option::is_none)
                        .unwrap_or_else(|| {
                            self.conns.push(None);
                            self.conns.len() - 1
                        });
                    if self
                        .poller
                        .add(stream.raw_fd(), slot as u64, false)
                        .is_err()
                    {
                        continue;
                    }
                    self.conns[slot] = Some(Conn {
                        stream,
                        rbuf: Vec::new(),
                        wbuf: Vec::new(),
                        wpos: 0,
                        guards: Vec::new(),
                        session: None,
                        closing: false,
                        write_interest: false,
                    });
                    self.live_conns += 1;
                    self.stats.connections_accepted += 1;
                    self.stats.peak_connections = self.stats.peak_connections.max(self.live_conns);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => break,
            }
        }
    }

    fn read_ready(&mut self, ci: usize) {
        let mut dead = false;
        {
            let Some(conn) = self.conns.get_mut(ci).and_then(Option::as_mut) else {
                return;
            };
            let mut total = 0;
            let mut buf = [0u8; 16 << 10];
            loop {
                match conn.stream.read(&mut buf) {
                    Ok(0) => {
                        dead = true;
                        break;
                    }
                    Ok(n) => {
                        conn.rbuf.extend_from_slice(&buf[..n]);
                        total += n;
                        if total >= READ_BUDGET {
                            break;
                        }
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        self.stats.read_stalls += 1;
                        break;
                    }
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        dead = true;
                        break;
                    }
                }
            }
        }
        if dead {
            self.disconnect(ci);
            return;
        }
        self.process_frames(ci);
    }

    fn process_frames(&mut self, ci: usize) {
        let mut pos = 0;
        loop {
            let decoded = {
                let Some(conn) = self.conns.get_mut(ci).and_then(Option::as_mut) else {
                    return;
                };
                if conn.closing {
                    break;
                }
                match peek_record_len(&conn.rbuf[pos..]) {
                    Ok(None) => break,
                    Ok(Some(len)) => {
                        let record = &conn.rbuf[pos..pos + len];
                        pos += len;
                        decode_record(record)
                            .and_then(|(kind, payload)| Frame::from_parts(&kind, payload))
                    }
                    Err(e) => Err(e),
                }
            };
            match decoded {
                Ok(frame) => {
                    self.stats.frames += 1;
                    self.handle_frame(ci, frame);
                }
                Err(DecodeError::UnknownKind { found })
                    if found.starts_with("uc.wire.") && found.ends_with(".v1") =>
                {
                    // Version negotiation: a v1 client is recognized by
                    // its kind tags and refused with a typed reject, not
                    // a generic decode failure.
                    self.send_err_close(
                        ci,
                        ErrCode::UnsupportedVersion {
                            found: 1,
                            supported: WIRE_VERSION,
                        },
                        "this server speaks uc.wire.v2; re-open with a v2 client",
                    );
                }
                Err(e) => {
                    self.send_err_close(ci, ErrCode::Protocol, &format!("bad frame: {e}"));
                }
            }
        }
        if let Some(conn) = self.conns.get_mut(ci).and_then(Option::as_mut) {
            conn.rbuf.drain(..pos);
        }
    }

    fn handle_frame(&mut self, ci: usize, frame: Frame) {
        let session_idx = self
            .conns
            .get(ci)
            .and_then(|c| c.as_ref())
            .and_then(|c| c.session);
        match session_idx {
            None => match frame.body {
                Body::Open { version } => {
                    if version != WIRE_VERSION {
                        self.send_err_close(
                            ci,
                            ErrCode::UnsupportedVersion {
                                found: version,
                                supported: WIRE_VERSION,
                            },
                            "unsupported protocol version",
                        );
                        return;
                    }
                    let token = self.sessions.len() as u64 + 1;
                    self.sessions.push(SessionSrv {
                        token,
                        lanes: vec![LaneSrv::new(LaneBackend::Control)],
                        conn: Some(ci),
                        closed: false,
                    });
                    let si = self.sessions.len() - 1;
                    if let Some(conn) = self.conns[ci].as_mut() {
                        conn.session = Some(si);
                    }
                    self.queue_frame(
                        ci,
                        Frame::new(
                            FrameHeader {
                                session: token,
                                lane: CONTROL_LANE,
                                seq: 0,
                            },
                            Body::OpenOk { token },
                        ),
                    );
                }
                Body::Resume { acks } => self.handle_resume(ci, frame.header.session, &acks),
                _ => self.send_err_close(ci, ErrCode::Protocol, "expected OPEN or RESUME"),
            },
            Some(si) => self.handle_session_frame(ci, si, frame),
        }
    }

    fn handle_resume(&mut self, ci: usize, token: u64, acks: &[LaneAck]) {
        let Some(si) = self
            .sessions
            .iter()
            .position(|s| s.token == token && !s.closed)
        else {
            self.send_err_close(ci, ErrCode::UnknownSession, "no such session token");
            return;
        };
        // A resume while the old carrier is still registered evicts it:
        // the client owns the session, not the socket.
        if let Some(old) = self.sessions[si].conn.take() {
            if old != ci {
                self.disconnect(old);
            }
        }
        // Session-resume sanity: every device lane must still name a
        // live session on its pool lane.
        let valid = self.sessions[si].lanes.iter().all(|l| match &l.backend {
            LaneBackend::Device(psess) => self.pool.validate_session(psess),
            _ => true,
        });
        if !valid {
            self.send_err_close(ci, ErrCode::Protocol, "stale pool session on resume");
            return;
        }
        self.sessions[si].conn = Some(ci);
        if let Some(conn) = self.conns[ci].as_mut() {
            conn.session = Some(si);
        }
        self.stats.resumes += 1;
        let acked = |lane: u32| acks.iter().find(|a| a.lane == lane).map_or(0, |a| a.seq);
        let replay: Vec<LaneAck> = self.sessions[si]
            .lanes
            .iter()
            .enumerate()
            .filter_map(|(li, l)| {
                l.cached.as_ref().and_then(|(cs, _)| {
                    (*cs > acked(li as u32)).then_some(LaneAck {
                        lane: li as u32,
                        seq: *cs,
                    })
                })
            })
            .collect();
        let lanes = (self.sessions[si].lanes.len() - 1) as u32;
        let replay_bytes: Vec<Vec<u8>> = replay
            .iter()
            .map(|a| {
                self.sessions[si].lanes[a.lane as usize]
                    .cached
                    .as_ref()
                    .expect("replay lane has a cache")
                    .1
                    .clone()
            })
            .collect();
        self.queue_frame(
            ci,
            Frame::new(
                FrameHeader {
                    session: token,
                    lane: CONTROL_LANE,
                    seq: 0,
                },
                Body::ResumeOk { lanes, replay },
            ),
        );
        for bytes in replay_bytes {
            self.stats.replays += 1;
            self.queue_bytes(ci, bytes);
        }
    }

    fn handle_session_frame(&mut self, ci: usize, si: usize, frame: Frame) {
        let token = self.sessions[si].token;
        if frame.header.session != token {
            self.send_err_close(ci, ErrCode::Protocol, "frame for a foreign session");
            return;
        }
        let lane = frame.header.lane as usize;
        let seq = frame.header.seq;
        if lane >= self.sessions[si].lanes.len() {
            self.queue_frame(
                ci,
                Frame::new(
                    frame.header,
                    Body::Err {
                        code: ErrCode::UnknownLane,
                        io: None,
                        message: format!("lane {lane} never attached"),
                    },
                ),
            );
            return;
        }
        let check = {
            let l = &mut self.sessions[si].lanes[lane];
            if l.pending_flush.is_some_and(|(ps, _)| ps == seq) {
                SeqCheck::Ignore
            } else if seq + 1 == l.next_seq {
                match l.cached.as_ref().filter(|(cs, _)| *cs == seq) {
                    Some((_, bytes)) => SeqCheck::Resend(bytes.clone()),
                    None => SeqCheck::Ignore,
                }
            } else if seq != l.next_seq {
                SeqCheck::OutOfOrder
            } else {
                l.next_seq += 1;
                SeqCheck::New
            }
        };
        match check {
            SeqCheck::Ignore => return,
            SeqCheck::Resend(bytes) => {
                self.stats.replays += 1;
                self.queue_bytes(ci, bytes);
                return;
            }
            SeqCheck::OutOfOrder => {
                self.send_err_close(ci, ErrCode::Protocol, "lane sequence out of order");
                return;
            }
            SeqCheck::New => {}
        }
        let header = FrameHeader {
            session: token,
            lane: lane as u32,
            seq,
        };
        let backend = match &self.sessions[si].lanes[lane].backend {
            LaneBackend::Control => BackendKind::Control,
            LaneBackend::Device(_) => BackendKind::Device,
            LaneBackend::Tenant(t) => BackendKind::Tenant(*t),
        };
        match (backend, frame.body) {
            (BackendKind::Control, Body::Attach { target }) => {
                self.handle_attach(ci, si, header, target);
            }
            (BackendKind::Control, Body::Metrics) => {
                // Live pull: the pool's full snapshot plus this loop's own
                // counters, all integer-valued.
                let mut snapshot = self.pool.obs_snapshot();
                self.stats.append_to(&mut snapshot);
                self.respond_cached(
                    ci,
                    si,
                    lane,
                    seq,
                    Frame::new(header, Body::MetricsOk { snapshot }),
                );
            }
            (BackendKind::Control, Body::Close) => {
                if !self.sessions[si].closed {
                    self.sessions[si].closed = true;
                    self.closed_sessions += 1;
                    self.stats.sessions_served += 1;
                }
                self.respond_cached(ci, si, lane, seq, Frame::new(header, Body::CloseOk));
                if let Some(conn) = self.conns[ci].as_mut() {
                    conn.closing = true;
                }
            }
            (BackendKind::Device, Body::Submit { reqs }) => {
                self.handle_device_submit(ci, si, lane, header, &reqs);
            }
            (BackendKind::Device, Body::Stats) => {
                let (stats, queue_head) = {
                    let LaneBackend::Device(psess) = &self.sessions[si].lanes[lane].backend else {
                        unreachable!("backend kind matched Device");
                    };
                    self.pool.stats(psess)
                };
                self.respond_cached(
                    ci,
                    si,
                    lane,
                    seq,
                    Frame::new(
                        header,
                        Body::StatsOk {
                            stats: WireStats { stats, queue_head },
                        },
                    ),
                );
            }
            (BackendKind::Tenant(t), Body::Submit { reqs }) => {
                let entries: Vec<TraceEntry> = reqs
                    .iter()
                    .map(|r| TraceEntry {
                        at: r.submit_time,
                        kind: r.kind,
                        offset: r.offset,
                        len: r.len,
                    })
                    .collect();
                let resp = match self.pool.tenant_push(t, &entries) {
                    Ok(accepted) => Frame::new(header, Body::PushOk { accepted }),
                    Err(e) => Frame::new(
                        header,
                        Body::Err {
                            code: ErrCode::Protocol,
                            io: None,
                            message: format!("push refused: {e}"),
                        },
                    ),
                };
                self.respond_cached(ci, si, lane, seq, resp);
            }
            (BackendKind::Tenant(t), Body::Flush { epoch }) => {
                self.handle_tenant_flush(ci, si, lane, seq, t, epoch);
            }
            _ => self.send_err_close(ci, ErrCode::Protocol, "frame not valid on this lane"),
        }
    }

    fn handle_attach(&mut self, ci: usize, si: usize, header: FrameHeader, target: LaneTarget) {
        let attached = match target {
            LaneTarget::Device(i) => match self.pool.open(i as usize) {
                Some((psess, info)) => Ok((
                    LaneBackend::Device(psess),
                    info.name().to_string(),
                    info.capacity(),
                    info.logical_block(),
                )),
                None => Err(format!(
                    "device index {i} out of range ({} lanes)",
                    self.pool.devices()
                )),
            },
            LaneTarget::Tenant(t) => match self.pool.attach_tenant(t) {
                Ok((name, span, io_size)) => Ok((LaneBackend::Tenant(t), name, span, io_size)),
                Err(e) => Err(format!("tenant attach refused: {e}")),
            },
        };
        let resp = match attached {
            Ok((backend, name, capacity, logical_block)) => {
                self.sessions[si].lanes.push(LaneSrv::new(backend));
                let lane = (self.sessions[si].lanes.len() - 1) as u32;
                Frame::new(
                    header,
                    Body::AttachOk {
                        lane,
                        name,
                        capacity,
                        logical_block,
                    },
                )
            }
            Err(message) => Frame::new(
                header,
                Body::Err {
                    code: ErrCode::Protocol,
                    io: None,
                    message,
                },
            ),
        };
        self.respond_cached(ci, si, CONTROL_LANE as usize, header.seq, resp);
    }

    fn handle_device_submit(
        &mut self,
        ci: usize,
        si: usize,
        lane: usize,
        header: FrameHeader,
        reqs: &[IoRequest],
    ) {
        let pool = Arc::clone(&self.pool);
        let result = {
            let LaneBackend::Device(psess) = &mut self.sessions[si].lanes[lane].backend else {
                unreachable!("backend kind matched Device");
            };
            pool.submit_owned(psess, reqs)
        };
        match result {
            Ok((completions, guard)) => {
                if let Some(conn) = self.conns[ci].as_mut() {
                    conn.guards.push(guard);
                }
                self.respond_cached(
                    ci,
                    si,
                    lane,
                    header.seq,
                    Frame::new(header, Body::Completions { completions }),
                );
            }
            Err(Rejection::Busy(reason)) => {
                self.respond_cached(
                    ci,
                    si,
                    lane,
                    header.seq,
                    Frame::new(header, Body::Busy { reason }),
                );
            }
            Err(Rejection::Io(e)) => {
                self.respond_cached(
                    ci,
                    si,
                    lane,
                    header.seq,
                    Frame::new(
                        header,
                        Body::Err {
                            code: ErrCode::Io,
                            io: Some(e),
                            message: format!("device rejected request: {e}"),
                        },
                    ),
                );
            }
        }
    }

    fn handle_tenant_flush(
        &mut self,
        ci: usize,
        si: usize,
        lane: usize,
        seq: u64,
        tenant: u32,
        epoch: u64,
    ) {
        // Park the flush first so the barrier fan-out below answers this
        // lane uniformly with every other waiter.
        self.sessions[si].lanes[lane].pending_flush = Some((seq, epoch));
        let header = FrameHeader {
            session: self.sessions[si].token,
            lane: lane as u32,
            seq,
        };
        match self.pool.tenant_flush(tenant, epoch) {
            Ok(FlushOutcome::Waiting) => {}
            Ok(FlushOutcome::EpochComplete { epoch, moves }) => {
                // The epoch ran: answer every lane (across every session)
                // parked on it, in deterministic session-then-lane order.
                // Moved tenants get a typed LANE_MOVED ahead of their
                // FLUSH_OK, same lane and seq, cached as one replay unit.
                for si2 in 0..self.sessions.len() {
                    let token2 = self.sessions[si2].token;
                    let conn2 = self.sessions[si2].conn;
                    for li2 in 0..self.sessions[si2].lanes.len() {
                        let Some((pseq, pepoch)) = self.sessions[si2].lanes[li2].pending_flush
                        else {
                            continue;
                        };
                        if pepoch != epoch {
                            continue;
                        }
                        let header2 = FrameHeader {
                            session: token2,
                            lane: li2 as u32,
                            seq: pseq,
                        };
                        let mut bytes = Vec::new();
                        if let LaneBackend::Tenant(t2) = &self.sessions[si2].lanes[li2].backend {
                            if let Some(mv) = moves.iter().find(|m| m.tenant == *t2) {
                                bytes.extend_from_slice(
                                    &Frame::new(
                                        header2,
                                        Body::LaneMoved {
                                            to_device: mv.to_device,
                                        },
                                    )
                                    .encode(),
                                );
                            }
                        }
                        bytes.extend_from_slice(
                            &Frame::new(header2, Body::FlushOk { epoch }).encode(),
                        );
                        let l = &mut self.sessions[si2].lanes[li2];
                        l.pending_flush = None;
                        l.cached = Some((pseq, bytes.clone()));
                        if let Some(c2) = conn2 {
                            self.queue_bytes(c2, bytes);
                        }
                    }
                }
            }
            Err(FleetError::Io(e)) => {
                self.sessions[si].lanes[lane].pending_flush = None;
                self.respond_cached(
                    ci,
                    si,
                    lane,
                    seq,
                    Frame::new(
                        header,
                        Body::Err {
                            code: ErrCode::Io,
                            io: Some(e),
                            message: "epoch run failed".to_string(),
                        },
                    ),
                );
            }
            Err(e) => {
                // Lane-scoped refusal (epoch mismatch etc.): the session
                // stays up.
                self.sessions[si].lanes[lane].pending_flush = None;
                self.respond_cached(
                    ci,
                    si,
                    lane,
                    seq,
                    Frame::new(
                        header,
                        Body::Err {
                            code: ErrCode::Protocol,
                            io: None,
                            message: format!("flush refused: {e}"),
                        },
                    ),
                );
            }
        }
    }

    /// Queues `resp` to `ci` and caches its bytes on the lane for resume
    /// replay.
    fn respond_cached(&mut self, ci: usize, si: usize, lane: usize, seq: u64, resp: Frame) {
        let bytes = resp.encode();
        self.sessions[si].lanes[lane].cached = Some((seq, bytes.clone()));
        self.queue_bytes(ci, bytes);
    }

    fn queue_frame(&mut self, ci: usize, frame: Frame) {
        self.queue_bytes(ci, frame.encode());
    }

    fn queue_bytes(&mut self, ci: usize, bytes: Vec<u8>) {
        if let Some(conn) = self.conns.get_mut(ci).and_then(Option::as_mut) {
            conn.wbuf.extend_from_slice(&bytes);
        }
    }

    /// Best-effort typed reject, then close once it drains.
    fn send_err_close(&mut self, ci: usize, code: ErrCode, message: &str) {
        let session = self
            .conns
            .get(ci)
            .and_then(|c| c.as_ref())
            .and_then(|c| c.session)
            .map_or(0, |si| self.sessions[si].token);
        self.queue_frame(
            ci,
            Frame::new(
                FrameHeader {
                    session,
                    lane: CONTROL_LANE,
                    seq: 0,
                },
                Body::Err {
                    code,
                    io: None,
                    message: message.to_string(),
                },
            ),
        );
        if let Some(conn) = self.conns.get_mut(ci).and_then(Option::as_mut) {
            conn.closing = true;
        }
    }

    fn flush_writes(&mut self) {
        for ci in 0..self.conns.len() {
            self.try_write(ci);
        }
    }

    fn try_write(&mut self, ci: usize) {
        let mut dead = false;
        let mut modify = None;
        {
            let Some(conn) = self.conns.get_mut(ci).and_then(Option::as_mut) else {
                return;
            };
            while conn.wpos < conn.wbuf.len() {
                match conn.stream.write(&conn.wbuf[conn.wpos..]) {
                    Ok(0) => {
                        dead = true;
                        break;
                    }
                    Ok(n) => conn.wpos += n,
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        self.stats.write_stalls += 1;
                        break;
                    }
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        dead = true;
                        break;
                    }
                }
            }
            if !dead {
                if conn.wpos == conn.wbuf.len() {
                    conn.wbuf.clear();
                    conn.wpos = 0;
                    // Responses delivered to the kernel: the admission
                    // slots they were holding are released.
                    conn.guards.clear();
                    if conn.closing {
                        dead = true;
                    }
                }
                let want_write = conn.wpos < conn.wbuf.len();
                if !dead && want_write != conn.write_interest {
                    conn.write_interest = want_write;
                    modify = Some((conn.stream.raw_fd(), want_write));
                }
            }
        }
        if dead {
            self.disconnect(ci);
            return;
        }
        if let Some((fd, want_write)) = modify {
            let _ = self.poller.modify(fd, ci as u64, want_write);
        }
    }

    fn disconnect(&mut self, ci: usize) {
        let Some(conn) = self.conns.get_mut(ci).and_then(Option::take) else {
            return;
        };
        let _ = self.poller.remove(conn.stream.raw_fd());
        let _ = conn.stream.shutdown_both();
        self.live_conns -= 1;
        if let Some(si) = conn.session {
            if self.sessions[si].conn == Some(ci) {
                self.sessions[si].conn = None;
                // Zombie GC: a session that never attached a data lane
                // has nothing to resume — destroy it so a client killed
                // mid-handshake cannot park a session forever.
                if !self.sessions[si].closed && self.sessions[si].lanes.len() == 1 {
                    self.sessions[si].closed = true;
                }
            }
        }
        // `conn.guards` drop here: undelivered responses release their
        // admission slots with the connection.
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::Endpoint;
    use crate::pool::PoolConfig;
    use crate::wire_v1::FrameV1;
    use uc_blockdev::BlockDevice;
    use uc_ssd::{Ssd, SsdConfig};

    #[test]
    fn v1_clients_are_rejected_with_a_typed_unsupported_version() {
        let pool = Arc::new(ServePool::new(
            vec![(
                "ssd".to_string(),
                Box::new(Ssd::new(SsdConfig::samsung_970_pro(64 << 20)))
                    as Box<dyn BlockDevice + Send>,
            )],
            PoolConfig::default(),
        ));
        let listener = Listener::bind(&Endpoint::parse("tcp:127.0.0.1:0").unwrap()).unwrap();
        let endpoint = listener.local_endpoint().unwrap();
        let server = {
            let pool = Arc::clone(&pool);
            std::thread::spawn(move || serve_events(&listener, &pool, 1))
        };

        // A legacy client speaks v1 straight at the v2 server and gets a
        // typed reject, not a decode failure.
        let mut conn = endpoint.connect().unwrap();
        FrameV1::OpenSession { device: 0 }
            .write_to(&mut conn)
            .unwrap();
        let reply = Frame::read_from(&mut conn).unwrap().expect("reject frame");
        match reply.body {
            Body::Err {
                code: ErrCode::UnsupportedVersion { found, supported },
                ..
            } => assert_eq!((found, supported), (1, WIRE_VERSION)),
            other => panic!("expected UnsupportedVersion, got {other:?}"),
        }
        // The server closes the connection after the reject.
        let mut rest = Vec::new();
        conn.read_to_end(&mut rest).unwrap();
        assert!(rest.is_empty());
        drop(conn);

        // A proper v2 session lets the loop reach its target and exit.
        let mut conn = endpoint.connect().unwrap();
        Frame::new(
            FrameHeader::connection(),
            Body::Open {
                version: WIRE_VERSION,
            },
        )
        .write_to(&mut conn)
        .unwrap();
        let open_ok = Frame::read_from(&mut conn).unwrap().expect("open-ok");
        let Body::OpenOk { token } = open_ok.body else {
            panic!("expected OPEN_OK, got {open_ok:?}");
        };
        Frame::new(
            FrameHeader {
                session: token,
                lane: CONTROL_LANE,
                seq: 1,
            },
            Body::Close,
        )
        .write_to(&mut conn)
        .unwrap();
        let close_ok = Frame::read_from(&mut conn).unwrap().expect("close-ok");
        assert_eq!(close_ok.body, Body::CloseOk);

        let stats = server.join().unwrap().unwrap();
        assert_eq!(stats.sessions_served, 1);
        assert_eq!(stats.connections_accepted, 2);
        assert_eq!(stats.resumes, 0);
    }
}
