//! Plain-text rendering of experiment results in the paper's layout.

use crate::experiments::fleet::{FleetContractReport, FleetFinding};
use crate::experiments::trace::TraceViolationKind;
use crate::experiments::{
    Fig2Result, Fig3Result, Fig4Result, Fig5Result, Table1Row, TraceContractReport,
};
use uc_metrics::Series;
use uc_sim::SimDuration;

/// Formats a duration the way the paper's Figure 2 pixels do: `333u`,
/// `1.4m`, `2.0s`.
///
/// # Example
///
/// ```
/// use uc_core::report::paper_duration;
/// use uc_sim::SimDuration;
///
/// assert_eq!(paper_duration(SimDuration::from_micros(333)), "333u");
/// assert_eq!(paper_duration(SimDuration::from_micros(1400)), "1.4m");
/// ```
pub fn paper_duration(d: SimDuration) -> String {
    let us = d.as_micros_f64();
    if us < 1000.0 {
        format!("{us:.0}u")
    } else if us < 1_000_000.0 {
        format!("{:.1}m", us / 1000.0)
    } else {
        format!("{:.1}s", us / 1_000_000.0)
    }
}

/// Renders Table I.
pub fn render_table1(rows: &[Table1Row]) -> String {
    let mut out = String::new();
    out.push_str("TABLE I: measured device envelopes (simulation scale)\n");
    out.push_str(&format!(
        "{:<10} {:<34} {:>14} {:>12} {:>10}\n",
        "Device", "Name", "Max BW (GB/s)", "Max KIOPS", "Cap (GiB)"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<10} {:<34} {:>14.2} {:>12.1} {:>10.2}\n",
            r.device.label(),
            r.name,
            r.max_bandwidth_gbps,
            r.max_kiops,
            r.capacity_gib
        ));
    }
    out
}

/// Renders one pattern's Figure 2 grid for an ESSD: each cell shows the
/// ESSD/SSD gap multiple on top of the absolute ESSD latency, exactly like
/// the paper's pixels.
///
/// # Panics
///
/// Panics if `pattern_index` is out of range or the grids differ.
pub fn render_fig2_grid(
    essd: &Fig2Result,
    ssd: &Fig2Result,
    pattern_index: usize,
    p999: bool,
) -> String {
    let pattern_names = [
        "Random Write",
        "Sequential Write",
        "Random Read",
        "Sequential Read",
    ];
    let gaps = essd.gap_versus(ssd, pattern_index, p999);
    let mut out = format!(
        "{} — {} — {} latency (gap x over SSD / absolute)\n",
        essd.device,
        pattern_names[pattern_index],
        if p999 { "P99.9" } else { "average" }
    );
    out.push_str("        ");
    for &s in &essd.io_sizes {
        out.push_str(&format!("{:>14}", format!("{}K", s >> 10)));
    }
    out.push('\n');
    for (qi, &qd) in essd.queue_depths.iter().enumerate() {
        out.push_str(&format!("QD {qd:<5}"));
        for (si, _) in essd.io_sizes.iter().enumerate() {
            let cell = essd.cell(pattern_index, qi, si);
            let v = if p999 { cell.p999 } else { cell.avg };
            out.push_str(&format!(
                "{:>14}",
                format!("{:.1}x({})", gaps[qi][si], paper_duration(v))
            ));
        }
        out.push('\n');
    }
    out
}

/// Renders a series as an ASCII strip chart (for Figure 3 timelines).
pub fn render_series(series: &Series, width: usize) -> String {
    let pts = series.points();
    let mut out = format!("{}\n", series);
    if pts.is_empty() || width == 0 {
        return out;
    }
    let max = series.max_y().max(1e-12);
    // Downsample to `width` columns; bar height 0-8 in eighths.
    let bars = "▁▂▃▄▅▆▇█";
    let chunk = (pts.len() as f64 / width as f64).max(1.0);
    let mut strip = String::new();
    let mut i = 0.0;
    while (i as usize) < pts.len() && strip.chars().count() < width {
        let start = i as usize;
        let end = ((i + chunk) as usize).min(pts.len()).max(start + 1);
        let avg = pts[start..end].iter().map(|p| p.1).sum::<f64>() / (end - start) as f64;
        let level = ((avg / max) * 7.0).round() as usize;
        strip.push(bars.chars().nth(level.min(7)).unwrap_or(' '));
        i += chunk;
    }
    out.push_str(&strip);
    out.push('\n');
    out
}

/// Renders Figure 3 for one device: the throughput-versus-volume strip and
/// its knee annotation.
pub fn render_fig3(result: &Fig3Result) -> String {
    let mut out = render_series(&result.volume_series, 72);
    out.push_str(&match result.knee_multiple() {
        Some(k) => format!(
            "  peak {:.2} GB/s; knee at {:.2}x capacity; tail {:.2} GB/s\n",
            result.peak_gbps(),
            k,
            result.tail_gbps()
        ),
        None => format!(
            "  peak {:.2} GB/s; sustained to 3x capacity (no knee)\n",
            result.peak_gbps()
        ),
    });
    out
}

/// Renders Figure 4 for one device: random-write throughput and the
/// random/sequential gain grid.
pub fn render_fig4(result: &Fig4Result) -> String {
    let mut out = format!("{} — random-write GB/s (rand/seq gain)\n", result.device);
    out.push_str("        ");
    for &s in &result.io_sizes {
        out.push_str(&format!("{:>14}", format!("{}K", s >> 10)));
    }
    out.push('\n');
    let gain = result.gain();
    for (qi, &qd) in result.queue_depths.iter().enumerate() {
        out.push_str(&format!("QD {qd:<5}"));
        for (rand, g) in result.rand_gbps[qi].iter().zip(&gain[qi]) {
            out.push_str(&format!("{:>14}", format!("{rand:.2}({g:.2}x)")));
        }
        out.push('\n');
    }
    let (g, qd, size) = result.max_gain();
    out.push_str(&format!(
        "  max gain {:.2}x at QD{} / {} KiB\n",
        g,
        qd,
        size >> 10
    ));
    out
}

/// Renders Figure 5 for one device: total and write throughput per ratio.
pub fn render_fig5(result: &Fig5Result) -> String {
    let mut out = format!("{} — mixed read/write sweep\n", result.device);
    out.push_str(&format!(
        "{:>12} {:>14} {:>14}\n",
        "write %", "total GB/s", "write GB/s"
    ));
    for (i, &ratio) in result.write_ratios.iter().enumerate() {
        out.push_str(&format!(
            "{:>12.0} {:>14.2} {:>14.2}\n",
            ratio * 100.0,
            result.total_gbps[i],
            result.write_gbps[i]
        ));
    }
    out.push_str(&format!(
        "  mean {:.2} GB/s, cv {:.3}, spread {:.0}%\n",
        result.mean_total_gbps(),
        result.total_cv(),
        result.total_spread() * 100.0
    ));
    out
}

/// Renders the trace experiment's contract report: one per-phase table
/// per device, the flagged phases, and the overall latency gaps.
///
/// Deterministic for deterministic inputs — the CI trace smoke diffs two
/// runs of this rendering byte for byte.
pub fn render_trace_report(report: &TraceContractReport) -> String {
    let mut out = String::new();
    for result in &report.results {
        out.push_str(&format!(
            "==== {} — {} I/Os over {} phases ====\n",
            result.device,
            result.report.ios,
            result.phases.len()
        ));
        out.push_str(&format!(
            "{:>6} {:>8} {:>10} {:>10} {:>12} {:>10}\n",
            "phase", "I/Os", "MiB", "GB/s", "mean lat", "lag"
        ));
        for phase in &result.phases {
            let flags: Vec<&str> = report
                .violations
                .iter()
                .filter(|v| v.device == result.device && v.phase == phase.index)
                .map(|v| match v.kind {
                    TraceViolationKind::LatencyBlowup { .. } => "LAT!",
                    TraceViolationKind::CompletionLag { .. } => "LAG!",
                })
                .collect();
            out.push_str(&format!(
                "{:>6} {:>8} {:>10.2} {:>10.3} {:>12} {:>10} {}\n",
                phase.index,
                phase.ios,
                phase.bytes as f64 / (1 << 20) as f64,
                phase.gbps,
                paper_duration(phase.mean_latency),
                paper_duration(phase.lag()),
                flags.join(" ")
            ));
        }
    }
    for (device, gap) in &report.gaps {
        out.push_str(&format!(
            "{device} overall mean latency: {gap:.1}x the local SSD's\n"
        ));
    }
    if report.clean() {
        out.push_str("no contract violations: every phase stayed within budget\n");
    } else {
        out.push_str(&format!("{} flagged phase(s):\n", report.violations.len()));
        for v in &report.violations {
            out.push_str(&match &v.kind {
                TraceViolationKind::LatencyBlowup { factor } => format!(
                    "  {} phase {}: mean latency {factor:.1}x the device's best phase \
                     (burst overdrive — smooth arrivals per Implication 4)\n",
                    v.device, v.phase
                ),
                TraceViolationKind::CompletionLag { lag } => format!(
                    "  {} phase {}: completions ran {} past the phase end \
                     (offered load exceeds the sustainable budget)\n",
                    v.device,
                    v.phase,
                    paper_duration(*lag)
                ),
            });
        }
    }
    out
}

/// Renders the fleet experiment's contract report: the fleet header,
/// per-epoch fairness, the migration log, the worst-served tenants, and
/// every flagged finding or recorded contract violation.
///
/// Deterministic for deterministic inputs — the CI fleet smoke diffs two
/// runs of this rendering byte for byte.
pub fn render_fleet_report(verdict: &FleetContractReport) -> String {
    let report = &verdict.report;
    let mut out = String::new();
    out.push_str(&format!(
        "==== fleet — {} tenants on {} devices, {} epochs ====\n",
        report.tenants, report.devices, report.epochs
    ));
    out.push_str(&format!(
        "total: {} I/Os, {:.2} MiB, last completion at {:.3} ms\n",
        report.total_ios,
        report.total_bytes as f64 / (1 << 20) as f64,
        report.finished_at.as_secs_f64() * 1e3
    ));
    out.push_str("fairness per epoch:");
    for fairness in &report.fairness_per_epoch {
        out.push_str(&format!(" {fairness:.4}"));
    }
    out.push('\n');
    for m in &report.migrations {
        out.push_str(&format!(
            "migration @epoch {}: tenant {} {}:{} -> {}:{} ({} B copied, \
             frozen {}, completed {}, crc {:08x})\n",
            m.epoch,
            m.tenant,
            m.from.0,
            m.from.1,
            m.to.0,
            m.to.1,
            m.bytes_copied,
            paper_duration(m.frozen_at.saturating_since(uc_sim::SimTime::ZERO)),
            paper_duration(m.completed_at.saturating_since(uc_sim::SimTime::ZERO)),
            m.freeze_crc
        ));
    }
    // The five worst-served tenants (by mean latency): the interference
    // victims a fleet operator looks at first.
    let mut worst: Vec<&uc_fleet::TenantSummary> = report.per_tenant.iter().collect();
    worst.sort_by(|a, b| {
        b.mean_latency
            .cmp(&a.mean_latency)
            .then_with(|| a.id.cmp(&b.id))
    });
    out.push_str(&format!(
        "{:>7} {:>6} {:>8} {:>12} {:>12} {:>12} {:>9}\n",
        "tenant", "dev", "I/Os", "mean lat", "p99 lat", "max lat", "throttles"
    ));
    for t in worst.iter().take(5) {
        out.push_str(&format!(
            "{:>7} {:>6} {:>8} {:>12} {:>12} {:>12} {:>9}\n",
            t.id,
            t.device,
            t.ios,
            paper_duration(t.mean_latency),
            paper_duration(t.p99_latency),
            paper_duration(t.max_latency),
            t.throttle_events
        ));
    }
    if verdict.clean() {
        out.push_str("fleet clean: no contract violations, no flagged tenants or epochs\n");
    } else {
        for v in &report.violations {
            out.push_str(&format!("  contract violation: {v}\n"));
        }
        for finding in &verdict.findings {
            out.push_str(&match finding {
                FleetFinding::NoisyNeighborVictim { tenant, factor } => format!(
                    "  tenant {tenant}: mean latency {factor:.1}x the fleet mean \
                     (noisy-neighbor victim — rebalance or isolate)\n"
                ),
                FleetFinding::FairnessCollapse { epoch, fairness } => format!(
                    "  epoch {epoch}: fairness {fairness:.3} below the floor \
                     (placement skew starving a device's residents)\n"
                ),
            });
        }
    }
    out
}

/// Renders the served frontend's device-side report: one block per lane
/// with its session ledgers, then the totals and the pool's backpressure
/// counters.
///
/// Deterministic for deterministic inputs — the CI serve smoke diffs
/// this rendering of a networked run against an in-process run byte for
/// byte, which is the subsystem's acceptance bar.
pub fn render_serve_report(report: &uc_serve::ServeReport) -> String {
    let sessions: usize = report.devices.iter().map(|d| d.sessions.len()).sum();
    let mut out = format!(
        "==== serve — {} device lane(s), {} session(s) ====\n",
        report.devices.len(),
        sessions
    );
    for lane in &report.devices {
        out.push_str(&format!(
            "lane {} [{}] {} — {:.2} GiB, queue head {}\n",
            lane.index,
            lane.label,
            lane.name,
            lane.capacity as f64 / (1 << 30) as f64,
            paper_duration(lane.queue_head.saturating_since(uc_sim::SimTime::ZERO))
        ));
        out.push_str(&format!(
            "{:>9} {:>8} {:>10} {:>9} {:>12}\n",
            "session", "I/Os", "MiB", "clamped", "last submit"
        ));
        for (index, s) in lane.sessions.iter().enumerate() {
            out.push_str(&format!(
                "{:>9} {:>8} {:>10.2} {:>9} {:>12}\n",
                index,
                s.ios,
                s.bytes as f64 / (1 << 20) as f64,
                s.clamped,
                paper_duration(s.last_submit.saturating_since(uc_sim::SimTime::ZERO))
            ));
        }
    }
    out.push_str(&format!(
        "total: {} I/Os, {:.2} MiB\n",
        report.total_ios(),
        report.total_bytes() as f64 / (1 << 20) as f64
    ));
    out.push_str(&format!(
        "backpressure: {} ring-full, {} shed, {} throttled\n",
        report.busy_ring_full, report.shed_overload, report.throttled
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::devices::DeviceKind;

    #[test]
    fn paper_duration_units() {
        assert_eq!(paper_duration(SimDuration::from_micros(47)), "47u");
        assert_eq!(paper_duration(SimDuration::from_micros(999)), "999u");
        assert_eq!(paper_duration(SimDuration::from_millis(10)), "10.0m");
        assert_eq!(paper_duration(SimDuration::from_secs(2)), "2.0s");
    }

    #[test]
    fn table1_renders_rows() {
        let rows = vec![Table1Row {
            device: DeviceKind::Essd1,
            name: "ESSD-1".into(),
            max_bandwidth_gbps: 3.0,
            max_kiops: 25.6,
            capacity_gib: 2.0,
        }];
        let text = render_table1(&rows);
        assert!(text.contains("ESSD-1"));
        assert!(text.contains("3.00"));
    }

    #[test]
    fn series_strip_is_bounded() {
        let s = Series::from_points("x", (0..100).map(|i| (i as f64, i as f64)).collect());
        let text = render_series(&s, 40);
        let strip = text.lines().nth(1).unwrap();
        assert!(strip.chars().count() <= 40);
    }

    #[test]
    fn serve_report_renders_lanes_and_counters() {
        let report = uc_serve::ServeReport {
            devices: vec![uc_serve::DeviceLaneReport {
                index: 0,
                label: "lane0".into(),
                name: "ESSD-1".into(),
                capacity: 2 << 30,
                queue_head: uc_sim::SimTime::from_nanos(1_500_000),
                sessions: vec![uc_blockdev::SessionStats {
                    ios: 7,
                    bytes: 7 << 20,
                    clamped: 1,
                    last_submit: uc_sim::SimTime::from_nanos(1_500_000),
                }],
            }],
            busy_ring_full: 2,
            shed_overload: 1,
            throttled: 0,
        };
        let text = render_serve_report(&report);
        assert!(text.contains("1 device lane(s), 1 session(s)"));
        assert!(text.contains("lane 0 [lane0] ESSD-1"));
        assert!(text.contains("total: 7 I/Os, 7.00 MiB"));
        assert!(text.contains("2 ring-full, 1 shed, 0 throttled"));
    }

    #[test]
    fn fig5_render_mentions_cv() {
        let r = Fig5Result {
            device: DeviceKind::Essd2,
            write_ratios: vec![0.0, 1.0],
            total_gbps: vec![1.1, 1.1],
            write_gbps: vec![0.0, 1.1],
        };
        let text = render_fig5(&r);
        assert!(text.contains("cv"));
        assert!(text.contains("ESSD-2"));
    }
}
