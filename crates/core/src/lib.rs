//! The Unwritten Contract of cloud-based elastic SSDs.
//!
//! This crate is the paper's primary contribution turned into a library:
//!
//! * [`experiments`] — runners that regenerate every table and figure of
//!   the paper's evaluation (Table I, Figures 2–5) against any
//!   [`BlockDevice`](uc_blockdev::BlockDevice), decomposed into
//!   independent cells and fanned out across cores by the shared
//!   [`Executor`](experiments::Executor) (parallel runs are
//!   byte-identical to sequential ones),
//! * [`contract`] — the four observations as *checkable predicates* over
//!   experiment results (thresholds centralized in
//!   [`contract::thresholds`]), bundled into a [`ContractReport`],
//! * [`implications`] — the five implications as actionable advisors
//!   (scale-up guidance, GC-mitigation reassessment, write-pattern choice,
//!   burst smoothing, I/O-reduction cost/benefit),
//! * [`report`] — plain-text rendering of grids, series and verdicts in
//!   the paper's layout,
//! * [`devices`] — the calibrated device roster of Table I,
//! * [`casestudy`] — the paper's stated future work: a leveled LSM engine
//!   versus its contract-aware in-place alternative.
//!
//! # Example
//!
//! ```no_run
//! use uc_core::contract::check_observation4;
//! use uc_core::devices::{DeviceKind, DeviceRoster};
//! use uc_core::experiments::{fig5, Fig5Config};
//!
//! let roster = DeviceRoster::scaled_default();
//! let cfg = Fig5Config::quick();
//! let ssd = fig5::run(&roster, DeviceKind::LocalSsd, &cfg)?;
//! let essd1 = fig5::run(&roster, DeviceKind::Essd1, &cfg)?;
//! let verdict = check_observation4(&ssd, &[&essd1]);
//! println!("{}", verdict);
//! # Ok::<(), uc_blockdev::IoError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod casestudy;
pub mod contract;
pub mod devices;
pub mod experiments;
pub mod implications;
pub mod report;

pub use contract::{check_all, ContractReport, ObservationResult};
pub use devices::DeviceRoster;
pub use experiments::Executor;
