//! The five implications as actionable advisors.
//!
//! The paper's implications tell cloud storage users how to *act* on the
//! observations. Each advisor here turns measured results (or a workload
//! description) into a concrete recommendation:
//!
//! | Advisor | Implication |
//! |---|---|
//! | [`advise_scale_up`] | #1 — scale I/O sizes and queue depths up |
//! | [`advise_gc_mitigation`] | #2 — reconsider host-side GC-mitigation techniques |
//! | [`advise_write_pattern`] | #3 — rethink sequentializing random writes |
//! | [`plan_smoothing`] | #4 — smooth I/O below the throughput budget |
//! | [`advise_io_reduction`] | #5 — re-evaluate compression/deduplication |

use crate::devices::DeviceKind;
use crate::experiments::{Fig2Result, Fig3Result, Fig4Result};
use std::fmt;
use uc_sim::SimDuration;

/// Implication #1: the smallest (I/O size, queue depth) at which the
/// ESSD/SSD latency gap falls below a target.
#[derive(Debug, Clone, PartialEq)]
pub struct ScaleUpAdvice {
    /// Device the advice is for.
    pub device: DeviceKind,
    /// Pattern index into [`crate::experiments::fig2::FIG2_PATTERNS`].
    pub pattern_index: usize,
    /// Recommended minimum I/O size in bytes, if any cell qualifies.
    pub min_io_size: Option<u32>,
    /// Recommended minimum queue depth, if any cell qualifies.
    pub min_queue_depth: Option<usize>,
    /// The gap achieved at that cell.
    pub achieved_gap: f64,
}

impl fmt::Display for ScaleUpAdvice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (self.min_io_size, self.min_queue_depth) {
            (Some(size), Some(qd)) => write!(
                f,
                "{}: scale to >= {} KiB at QD >= {} (gap {:.1}x)",
                self.device,
                size >> 10,
                qd,
                self.achieved_gap
            ),
            _ => write!(
                f,
                "{}: no configuration in the measured grid reaches the target gap",
                self.device
            ),
        }
    }
}

/// Recommends, per pattern, the cheapest scale-up reaching `target_gap`.
///
/// Scans the Figure 2 grid in increasing cost order (queue depth major,
/// I/O size minor) and returns the first cell whose average-latency gap is
/// at or below `target_gap`.
pub fn advise_scale_up(
    essd: &Fig2Result,
    ssd: &Fig2Result,
    pattern_index: usize,
    target_gap: f64,
) -> ScaleUpAdvice {
    let gaps = essd.gap_versus(ssd, pattern_index, false);
    let mut best: Option<(usize, usize, f64)> = None;
    for (qi, row) in gaps.iter().enumerate() {
        for (si, &g) in row.iter().enumerate() {
            if g <= target_gap {
                // Prefer the cheapest cell: lower depth first, then size.
                let better = match best {
                    None => true,
                    Some((bqi, bsi, _)) => (qi, si) < (bqi, bsi),
                };
                if better {
                    best = Some((qi, si, g));
                }
            }
        }
    }
    match best {
        Some((qi, si, g)) => ScaleUpAdvice {
            device: essd.device,
            pattern_index,
            min_io_size: Some(essd.io_sizes[si]),
            min_queue_depth: Some(essd.queue_depths[qi]),
            achieved_gap: g,
        },
        None => ScaleUpAdvice {
            device: essd.device,
            pattern_index,
            min_io_size: None,
            min_queue_depth: None,
            achieved_gap: f64::INFINITY,
        },
    }
}

/// Implication #2: whether host-side GC-mitigation machinery still pays
/// off on this device.
#[derive(Debug, Clone, PartialEq)]
pub struct GcMitigationAdvice {
    /// Device the advice is for.
    pub device: DeviceKind,
    /// Where throughput collapsed, in capacity multiples (if it did).
    pub knee_multiple: Option<f64>,
    /// `true` if host-side GC mitigation is still worthwhile.
    pub keep_mitigation: bool,
    /// One-line rationale.
    pub rationale: String,
}

impl fmt::Display for GcMitigationAdvice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} — {}",
            self.device,
            if self.keep_mitigation {
                "KEEP host-side GC mitigation"
            } else {
                "RECONSIDER host-side GC mitigation"
            },
            self.rationale
        )
    }
}

/// Derives Implication #2 from a Figure 3 run.
pub fn advise_gc_mitigation(result: &Fig3Result) -> GcMitigationAdvice {
    let knee = result.knee_multiple();
    let (keep, rationale) = match (result.device, knee) {
        (DeviceKind::LocalSsd, Some(k)) => (
            true,
            format!("device collapses at {k:.2}x capacity; mitigation still earns its keep"),
        ),
        (DeviceKind::LocalSsd, None) => (
            true,
            "no collapse observed in this run, but local GC remains a risk".to_string(),
        ),
        (_, None) => (
            false,
            "provider absorbed GC for the whole run; mitigation trades \
             overhead for nothing"
                .to_string(),
        ),
        (_, Some(k)) => (
            false,
            format!(
                "provider hides GC until {k:.2}x capacity, then flow-limits; \
                 host mitigation cannot change either regime"
            ),
        ),
    };
    GcMitigationAdvice {
        device: result.device,
        knee_multiple: knee,
        keep_mitigation: keep,
        rationale,
    }
}

/// Implication #3: whether to keep converting random writes to sequential
/// ones (log-structuring), or even to prefer random writes outright.
#[derive(Debug, Clone, PartialEq)]
pub struct WritePatternAdvice {
    /// Device the advice is for.
    pub device: DeviceKind,
    /// Peak random/sequential gain measured.
    pub max_gain: f64,
    /// `true` if random writes should be preferred on this device.
    pub prefer_random: bool,
    /// One-line rationale.
    pub rationale: String,
}

impl fmt::Display for WritePatternAdvice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} (max gain {:.2}x) — {}",
            self.device,
            if self.prefer_random {
                "PREFER random writes"
            } else {
                "KEEP sequential writes"
            },
            self.max_gain,
            self.rationale
        )
    }
}

/// Derives Implication #3 from a Figure 4 run.
pub fn advise_write_pattern(result: &Fig4Result) -> WritePatternAdvice {
    let (gain, qd, size) = result.max_gain();
    let prefer_random = result.device != DeviceKind::LocalSsd && gain > 1.2;
    let rationale = if prefer_random {
        format!(
            "random writes reach {gain:.2}x the sequential throughput at \
             QD{qd}/{} KiB; sequentializing buys nothing here",
            size >> 10
        )
    } else {
        "no significant random-write advantage; log-structuring keeps its \
         usual benefits"
            .to_string()
    };
    WritePatternAdvice {
        device: result.device,
        max_gain: gain,
        prefer_random,
        rationale,
    }
}

/// Implication #4: the smallest throughput budget that still meets a
/// latency deadline, with and without smoothing.
#[derive(Debug, Clone, PartialEq)]
pub struct SmoothingPlan {
    /// Peak windowed demand (bytes/second) — the budget an unsmoothed
    /// deployment must buy.
    pub peak_rate: f64,
    /// The smallest rate (bytes/second) that keeps queueing delay within
    /// the deadline when demand is queued and smoothed.
    pub smoothed_rate: f64,
    /// The deadline used.
    pub max_delay: SimDuration,
    /// `1 - smoothed/peak`: the budget saving from smoothing.
    pub saving_fraction: f64,
}

impl fmt::Display for SmoothingPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "smooth to {:.2} GB/s instead of provisioning the {:.2} GB/s peak \
             ({:.0}% budget saving, delay <= {})",
            self.smoothed_rate / 1e9,
            self.peak_rate / 1e9,
            self.saving_fraction * 100.0,
            self.max_delay
        )
    }
}

/// Computes Implication #4 for a demand trace.
///
/// `demand_bytes` holds the bytes requested in each consecutive window of
/// width `window`. The smoothed rate is found by bisection over a
/// leaky-bucket simulation: the smallest constant drain rate such that no
/// byte waits longer than `max_delay`.
///
/// # Panics
///
/// Panics if `demand_bytes` is empty or `window` is zero.
pub fn plan_smoothing(
    demand_bytes: &[u64],
    window: SimDuration,
    max_delay: SimDuration,
) -> SmoothingPlan {
    assert!(!demand_bytes.is_empty(), "demand trace must be non-empty");
    assert!(!window.is_zero(), "window must be non-zero");
    let w = window.as_secs_f64();
    let peak_rate = demand_bytes.iter().copied().max().unwrap_or(0) as f64 / w;
    let total: u64 = demand_bytes.iter().sum();
    let mean_rate = total as f64 / (w * demand_bytes.len() as f64);
    let deadline = max_delay.as_secs_f64().max(1e-9);

    // Feasibility: with drain rate `r`, the backlog after each window is
    // max(0, backlog + demand - r*w); the last byte queued waits
    // backlog / r seconds.
    let feasible = |r: f64| -> bool {
        if r <= 0.0 {
            return false;
        }
        let mut backlog = 0.0f64;
        for &d in demand_bytes {
            backlog = (backlog + d as f64 - r * w).max(0.0);
            if backlog / r > deadline {
                return false;
            }
        }
        true
    };

    let mut lo = mean_rate.max(1.0);
    let mut hi = peak_rate.max(lo);
    if feasible(lo) {
        hi = lo;
    } else {
        for _ in 0..64 {
            let mid = (lo + hi) / 2.0;
            if feasible(mid) {
                hi = mid;
            } else {
                lo = mid;
            }
        }
    }
    let smoothed = hi;
    SmoothingPlan {
        peak_rate,
        smoothed_rate: smoothed,
        max_delay,
        saving_fraction: if peak_rate > 0.0 {
            (1.0 - smoothed / peak_rate).max(0.0)
        } else {
            0.0
        },
    }
}

/// Implication #5: whether an I/O-reduction technique (compression,
/// deduplication) pays off on a device.
#[derive(Debug, Clone, PartialEq)]
pub struct IoReductionAdvice {
    /// Seconds to move one megabyte without the technique.
    pub plain_secs_per_mb: f64,
    /// Seconds to process + move one megabyte with the technique.
    pub reduced_secs_per_mb: f64,
    /// Fraction of throughput budget freed by the technique.
    pub budget_saving_fraction: f64,
    /// `true` if the technique improves end-to-end time on this device.
    pub recommend: bool,
}

impl fmt::Display for IoReductionAdvice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {:.1} us/MB plain vs {:.1} us/MB reduced; frees {:.0}% of budget",
            if self.recommend {
                "ADOPT i/o reduction"
            } else {
                "SKIP i/o reduction"
            },
            self.plain_secs_per_mb * 1e6,
            self.reduced_secs_per_mb * 1e6,
            self.budget_saving_fraction * 100.0
        )
    }
}

/// Computes Implication #5.
///
/// * `device_bytes_per_sec` — the effective streaming rate the workload
///   sees on the device (for an ESSD this is the throughput budget; for a
///   local SSD, its bus/flash rate),
/// * `cpu_bytes_per_sec` — the throughput of the reduction algorithm,
/// * `reduction_ratio` — output bytes / input bytes, in `(0, 1]`.
///
/// The technique is recommended when compress-then-transfer beats plain
/// transfer (computation overlaps poorly on the paper's latency-sensitive
/// path, so costs add).
///
/// # Panics
///
/// Panics if any rate is non-positive or `reduction_ratio` is outside
/// `(0, 1]`.
pub fn advise_io_reduction(
    device_bytes_per_sec: f64,
    cpu_bytes_per_sec: f64,
    reduction_ratio: f64,
) -> IoReductionAdvice {
    assert!(device_bytes_per_sec > 0.0, "device rate must be positive");
    assert!(cpu_bytes_per_sec > 0.0, "cpu rate must be positive");
    assert!(
        reduction_ratio > 0.0 && reduction_ratio <= 1.0,
        "reduction ratio must be in (0, 1]"
    );
    let mb = 1e6;
    let plain = mb / device_bytes_per_sec;
    let reduced = mb / cpu_bytes_per_sec + reduction_ratio * mb / device_bytes_per_sec;
    IoReductionAdvice {
        plain_secs_per_mb: plain,
        reduced_secs_per_mb: reduced,
        budget_saving_fraction: 1.0 - reduction_ratio,
        recommend: reduced < plain,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::{LatencyCell, PatternGrid};
    use uc_workload::AccessPattern;

    #[test]
    fn scale_up_finds_cheapest_qualifying_cell() {
        let cell = |us: u64| LatencyCell {
            avg: SimDuration::from_micros(us),
            p999: SimDuration::from_micros(us),
        };
        let mk = |device, grid: Vec<Vec<u64>>| Fig2Result {
            device,
            io_sizes: vec![4096, 262144],
            queue_depths: vec![1, 16],
            grids: vec![PatternGrid {
                pattern: AccessPattern::RandWrite,
                cells: grid
                    .into_iter()
                    .map(|row| row.into_iter().map(cell).collect())
                    .collect(),
            }],
        };
        let ssd = mk(DeviceKind::LocalSsd, vec![vec![10, 100], vec![30, 300]]);
        let essd = mk(DeviceKind::Essd1, vec![vec![300, 300], vec![300, 330]]);
        // Gaps: [[30, 3], [10, 1.1]]; target 5 -> first qualifying is
        // (qd=1, 256K) with gap 3.
        let advice = advise_scale_up(&essd, &ssd, 0, 5.0);
        assert_eq!(advice.min_queue_depth, Some(1));
        assert_eq!(advice.min_io_size, Some(262144));
        assert!(advice.to_string().contains("256 KiB"));

        let advice = advise_scale_up(&essd, &ssd, 0, 0.5);
        assert_eq!(advice.min_io_size, None);
    }

    #[test]
    fn gc_advice_splits_by_device() {
        let mk = |device, knee: Option<f64>| {
            let pts: Vec<(f64, f64)> = (0..300)
                .map(|i| {
                    let x = i as f64 / 100.0;
                    (
                        x,
                        if knee.is_some_and(|k| x > k) {
                            0.2
                        } else {
                            2.0
                        },
                    )
                })
                .collect();
            Fig3Result {
                device,
                capacity: 1 << 30,
                time_series: uc_metrics::Series::from_points("t", pts.clone()),
                volume_series: uc_metrics::Series::from_points("v", pts),
            }
        };
        assert!(advise_gc_mitigation(&mk(DeviceKind::LocalSsd, Some(0.9))).keep_mitigation);
        assert!(!advise_gc_mitigation(&mk(DeviceKind::Essd1, Some(2.5))).keep_mitigation);
        assert!(!advise_gc_mitigation(&mk(DeviceKind::Essd2, None)).keep_mitigation);
    }

    #[test]
    fn write_pattern_advice() {
        let mk = |device, rand: f64| Fig4Result {
            device,
            io_sizes: vec![4096],
            queue_depths: vec![8],
            rand_gbps: vec![vec![rand]],
            seq_gbps: vec![vec![1.0]],
        };
        assert!(advise_write_pattern(&mk(DeviceKind::Essd2, 2.8)).prefer_random);
        assert!(!advise_write_pattern(&mk(DeviceKind::LocalSsd, 1.0)).prefer_random);
        assert!(!advise_write_pattern(&mk(DeviceKind::Essd1, 1.1)).prefer_random);
    }

    #[test]
    fn smoothing_flattens_bursts() {
        // 10 windows: one 1 GB burst, nine idle.
        let mut demand = vec![0u64; 10];
        demand[0] = 1_000_000_000;
        let plan = plan_smoothing(
            &demand,
            SimDuration::from_secs(1),
            SimDuration::from_secs(5),
        );
        assert!(plan.smoothed_rate < plan.peak_rate / 3.0, "{plan}");
        assert!(plan.saving_fraction > 0.6);
    }

    #[test]
    fn smoothing_with_tight_deadline_buys_little() {
        let mut demand = vec![0u64; 10];
        demand[0] = 1_000_000_000;
        let plan = plan_smoothing(
            &demand,
            SimDuration::from_secs(1),
            SimDuration::from_millis(1),
        );
        assert!(plan.saving_fraction < 0.05, "{plan}");
    }

    #[test]
    fn smoothing_uniform_demand_is_already_smooth() {
        let demand = vec![100_000u64; 20];
        let plan = plan_smoothing(
            &demand,
            SimDuration::from_secs(1),
            SimDuration::from_secs(1),
        );
        assert!((plan.smoothed_rate - 100_000.0).abs() / 100_000.0 < 0.05);
    }

    #[test]
    fn io_reduction_wins_on_slow_devices_only() {
        // ESSD-ish: 0.4 GB/s effective; zstd-ish: 1.5 GB/s, 2:1.
        let essd = advise_io_reduction(0.4e9, 1.5e9, 0.5);
        assert!(essd.recommend, "{essd}");
        // Local SSD: 2.7 GB/s device; same codec loses.
        let ssd = advise_io_reduction(2.7e9, 1.5e9, 0.5);
        assert!(!ssd.recommend, "{ssd}");
        assert!((essd.budget_saving_fraction - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn smoothing_rejects_empty_trace() {
        let _ = plan_smoothing(&[], SimDuration::from_secs(1), SimDuration::from_secs(1));
    }
}
