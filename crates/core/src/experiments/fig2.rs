//! Figure 2: latency grids over access pattern × I/O size × queue depth.

use crate::devices::{DeviceKind, DeviceRoster};
use crate::experiments::Executor;
use uc_blockdev::{DeviceFactory, IoError};
use uc_sim::SimDuration;
use uc_workload::{run_job, AccessPattern, JobSpec};

/// The four access patterns of Figure 2, in the paper's column order.
pub const FIG2_PATTERNS: [AccessPattern; 4] = [
    AccessPattern::RandWrite,
    AccessPattern::SeqWrite,
    AccessPattern::RandRead,
    AccessPattern::SeqRead,
];

/// Workload grid for the Figure 2 sweep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fig2Config {
    /// I/O sizes in bytes (paper: 4 KiB to 256 KiB).
    pub io_sizes: Vec<u32>,
    /// Queue depths (paper: 1 to 16).
    pub queue_depths: Vec<usize>,
    /// I/Os per measurement cell (enough for a stable P99.9).
    pub ios_per_cell: u64,
}

impl Fig2Config {
    /// The paper's grid: sizes {4, 16, 64, 256} KiB, depths {1, 2, 4, 8,
    /// 16}, 20 000 I/Os per cell.
    pub fn paper() -> Self {
        Fig2Config {
            io_sizes: vec![4 << 10, 16 << 10, 64 << 10, 256 << 10],
            queue_depths: vec![1, 2, 4, 8, 16],
            ios_per_cell: 20_000,
        }
    }

    /// A reduced grid for tests and smoke runs (same sizes/depths, 2 000
    /// I/Os per cell).
    pub fn quick() -> Self {
        Fig2Config {
            ios_per_cell: 2_000,
            ..Fig2Config::paper()
        }
    }
}

/// One measurement cell: the paper reports the average and the P99.9.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencyCell {
    /// Average latency.
    pub avg: SimDuration,
    /// 99.9th-percentile latency.
    pub p999: SimDuration,
}

/// The latency grid of one access pattern: `cells[qd_index][size_index]`.
#[derive(Debug, Clone, PartialEq)]
pub struct PatternGrid {
    /// The pattern this grid measured.
    pub pattern: AccessPattern,
    /// Cells indexed by `[queue_depth][io_size]` (same order as the
    /// config's vectors).
    pub cells: Vec<Vec<LatencyCell>>,
}

/// Figure 2 results for one device.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig2Result {
    /// Which device was measured.
    pub device: DeviceKind,
    /// The I/O sizes of the grid columns.
    pub io_sizes: Vec<u32>,
    /// The queue depths of the grid rows.
    pub queue_depths: Vec<usize>,
    /// One grid per pattern, in [`FIG2_PATTERNS`] order.
    pub grids: Vec<PatternGrid>,
}

impl Fig2Result {
    /// The cell for (`pattern_idx`, `qd_idx`, `size_idx`).
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    pub fn cell(&self, pattern_idx: usize, qd_idx: usize, size_idx: usize) -> LatencyCell {
        self.grids[pattern_idx].cells[qd_idx][size_idx]
    }

    /// The ESSD/SSD latency-gap grid for one pattern: the multiple the
    /// paper prints at the top of each pixel. `p999` selects the tail
    /// metric instead of the average.
    ///
    /// # Panics
    ///
    /// Panics if the two results used different grids.
    pub fn gap_versus(&self, ssd: &Fig2Result, pattern_idx: usize, p999: bool) -> Vec<Vec<f64>> {
        assert_eq!(self.io_sizes, ssd.io_sizes, "grids must match");
        assert_eq!(self.queue_depths, ssd.queue_depths, "grids must match");
        self.grids[pattern_idx]
            .cells
            .iter()
            .zip(&ssd.grids[pattern_idx].cells)
            .map(|(er, sr)| {
                er.iter()
                    .zip(sr)
                    .map(|(e, s)| {
                        let (en, sn) = if p999 {
                            (e.p999.as_nanos(), s.p999.as_nanos())
                        } else {
                            (e.avg.as_nanos(), s.avg.as_nanos())
                        };
                        if sn == 0 {
                            f64::INFINITY
                        } else {
                            en as f64 / sn as f64
                        }
                    })
                    .collect()
            })
            .collect()
    }
}

/// Runs the Figure 2 sweep for `kind` on the default (per-core) executor.
///
/// A fresh device is built per cell so buffer/FTL state cannot leak
/// between cells (the paper reboots its workloads per configuration too).
///
/// # Errors
///
/// Propagates the first I/O error (only possible with invalid custom
/// configs, e.g. I/O size exceeding the device capacity).
pub fn run(
    roster: &DeviceRoster,
    kind: DeviceKind,
    cfg: &Fig2Config,
) -> Result<Fig2Result, IoError> {
    run_with(roster, kind, cfg, &Executor::from_env())
}

/// Runs the Figure 2 sweep for `kind`, fanning the pattern × depth × size
/// cells out on `exec`.
///
/// Every cell is a self-contained job — it builds its own seeded device
/// through the roster's [`DeviceFactory`] seam and runs one closed-loop
/// job — so results are byte-identical for any executor width.
///
/// # Errors
///
/// Propagates the first I/O error in deterministic (cell-order) priority.
/// The whole sweep still runs before the error surfaces — kept so the
/// returned error never depends on executor width; a failing cell aborts
/// at its first invalid submission, so a doomed sweep stays cheap.
pub fn run_with(
    roster: &DeviceRoster,
    kind: DeviceKind,
    cfg: &Fig2Config,
    exec: &Executor,
) -> Result<Fig2Result, IoError> {
    let mut cells = Vec::with_capacity(FIG2_PATTERNS.len() * cfg.queue_depths.len());
    for (pi, &pattern) in FIG2_PATTERNS.iter().enumerate() {
        for (qi, &qd) in cfg.queue_depths.iter().enumerate() {
            for (si, &size) in cfg.io_sizes.iter().enumerate() {
                cells.push(move || {
                    let mut dev = roster.fresh(
                        kind,
                        0xF1620000 + (pi as u64) * 1000 + (qi as u64) * 10 + si as u64,
                    );
                    // Cap the cell volume at half the device capacity: the
                    // paper's 20 k-I/O cells are a rounding error against a
                    // 1-2 TB device, and a latency cell must not age the FTL
                    // into garbage collection (that is Figure 3's job).
                    let max_ios = (roster.capacity_of(kind) / 2 / size as u64).max(100);
                    let spec = JobSpec::new(pattern, size, qd)
                        .with_io_limit(cfg.ios_per_cell.min(max_ios))
                        .with_seed(0x2B + si as u64);
                    let report = run_job(dev.as_mut(), &spec)?;
                    let (avg, p999) = report.headline_latency();
                    Ok(LatencyCell { avg, p999 })
                });
            }
        }
    }
    let mut measured = exec.run(cells).into_iter();

    let mut grids = Vec::with_capacity(FIG2_PATTERNS.len());
    for &pattern in FIG2_PATTERNS.iter() {
        let mut rows = Vec::with_capacity(cfg.queue_depths.len());
        for _ in &cfg.queue_depths {
            let row: Result<Vec<LatencyCell>, IoError> = cfg
                .io_sizes
                .iter()
                .map(|_| measured.next().unwrap())
                .collect();
            rows.push(row?);
        }
        grids.push(PatternGrid {
            pattern,
            cells: rows,
        });
    }
    Ok(Fig2Result {
        device: kind,
        io_sizes: cfg.io_sizes.clone(),
        queue_depths: cfg.queue_depths.clone(),
        grids,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> Fig2Config {
        Fig2Config {
            io_sizes: vec![4 << 10, 64 << 10],
            queue_depths: vec![1, 8],
            ios_per_cell: 300,
        }
    }

    #[test]
    fn grid_dimensions_match_config() {
        let roster = DeviceRoster::with_capacities(128 << 20, 128 << 20);
        let r = run(&roster, DeviceKind::LocalSsd, &tiny_cfg()).unwrap();
        assert_eq!(r.grids.len(), 4);
        assert_eq!(r.grids[0].cells.len(), 2);
        assert_eq!(r.grids[0].cells[0].len(), 2);
        let c = r.cell(0, 0, 0);
        assert!(c.p999 >= c.avg);
    }

    #[test]
    fn gap_grid_shows_cloud_overhead() {
        let roster = DeviceRoster::with_capacities(128 << 20, 128 << 20);
        let cfg = tiny_cfg();
        let ssd = run(&roster, DeviceKind::LocalSsd, &cfg).unwrap();
        let essd = run(&roster, DeviceKind::Essd1, &cfg).unwrap();
        // Random-write 4K QD1 gap (pattern 0): tens of x.
        let gaps = essd.gap_versus(&ssd, 0, false);
        assert!(
            gaps[0][0] > crate::contract::thresholds::OBS1_SINGLE_CELL_GAP_FLOOR,
            "small-write gap should be large, got {}",
            gaps[0][0]
        );
    }

    #[test]
    fn parallel_run_is_byte_identical_to_sequential() {
        let roster = DeviceRoster::with_capacities(128 << 20, 128 << 20);
        let cfg = Fig2Config {
            io_sizes: vec![4 << 10, 64 << 10],
            queue_depths: vec![1, 8],
            ios_per_cell: 200,
        };
        let sequential =
            run_with(&roster, DeviceKind::Essd1, &cfg, &Executor::sequential()).unwrap();
        let parallel =
            run_with(&roster, DeviceKind::Essd1, &cfg, &Executor::with_threads(4)).unwrap();
        assert_eq!(sequential, parallel);
    }
}
