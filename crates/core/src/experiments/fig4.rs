//! Figure 4: random- versus sequential-write throughput and the
//! random/sequential gain.

use crate::devices::{DeviceKind, DeviceRoster};
use crate::experiments::Executor;
use uc_blockdev::{DeviceFactory, IoError};
use uc_workload::{run_job, AccessPattern, JobSpec};

/// Workload grid for the Figure 4 sweep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fig4Config {
    /// I/O sizes in bytes (paper: 4 KiB to 256 KiB).
    pub io_sizes: Vec<u32>,
    /// Queue depths (paper: 1 to 32).
    pub queue_depths: Vec<usize>,
    /// I/Os per measurement cell.
    pub ios_per_cell: u64,
}

impl Fig4Config {
    /// The paper's grid: sizes {4..256} KiB, depths {1..32}.
    pub fn paper() -> Self {
        Fig4Config {
            io_sizes: vec![
                4 << 10,
                8 << 10,
                16 << 10,
                32 << 10,
                64 << 10,
                128 << 10,
                256 << 10,
            ],
            queue_depths: vec![1, 2, 4, 8, 16, 32],
            ios_per_cell: 4_000,
        }
    }

    /// A reduced grid for tests and smoke runs.
    pub fn quick() -> Self {
        Fig4Config {
            io_sizes: vec![4 << 10, 32 << 10, 256 << 10],
            queue_depths: vec![1, 8, 32],
            ios_per_cell: 1_200,
        }
    }
}

/// Figure 4 results for one device.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig4Result {
    /// Which device was measured.
    pub device: DeviceKind,
    /// Grid columns (I/O sizes in bytes).
    pub io_sizes: Vec<u32>,
    /// Grid rows (queue depths).
    pub queue_depths: Vec<usize>,
    /// Random-write throughput in GB/s, `[qd][size]`.
    pub rand_gbps: Vec<Vec<f64>>,
    /// Sequential-write throughput in GB/s, `[qd][size]`.
    pub seq_gbps: Vec<Vec<f64>>,
}

impl Fig4Result {
    /// The random/sequential throughput gain, `[qd][size]` (the paper's
    /// blue lines; >1 means random writes win).
    pub fn gain(&self) -> Vec<Vec<f64>> {
        self.rand_gbps
            .iter()
            .zip(&self.seq_gbps)
            .map(|(rr, sr)| {
                rr.iter()
                    .zip(sr)
                    .map(|(r, s)| if *s > 0.0 { r / s } else { f64::INFINITY })
                    .collect()
            })
            .collect()
    }

    /// The largest gain in the grid and the `(queue_depth, io_size)` where
    /// it occurs.
    pub fn max_gain(&self) -> (f64, usize, u32) {
        let mut best = (0.0, self.queue_depths[0], self.io_sizes[0]);
        for (qi, row) in self.gain().iter().enumerate() {
            for (si, &g) in row.iter().enumerate() {
                if g.is_finite() && g > best.0 {
                    best = (g, self.queue_depths[qi], self.io_sizes[si]);
                }
            }
        }
        best
    }

    /// The highest random-write throughput in the grid, in GB/s.
    pub fn peak_rand_gbps(&self) -> f64 {
        self.rand_gbps.iter().flatten().copied().fold(0.0, f64::max)
    }
}

/// Runs the Figure 4 sweep on `kind` on the default (per-core) executor.
///
/// Volumes stay well under the device capacity, matching the paper's
/// "when GC does not occur" framing for the local SSD.
///
/// # Errors
///
/// Propagates the first I/O error from the device.
pub fn run(
    roster: &DeviceRoster,
    kind: DeviceKind,
    cfg: &Fig4Config,
) -> Result<Fig4Result, IoError> {
    run_with(roster, kind, cfg, &Executor::from_env())
}

/// Runs the Figure 4 sweep on `kind`, fanning the (pattern, depth, size)
/// cells out on `exec`. Each cell builds its own seeded device through
/// the roster's [`DeviceFactory`] seam, so results are byte-identical for
/// any executor width.
///
/// # Errors
///
/// Propagates the first I/O error in deterministic (cell-order) priority
/// (the whole sweep still runs first; failing cells abort at their first
/// invalid submission, so a doomed sweep stays cheap).
pub fn run_with(
    roster: &DeviceRoster,
    kind: DeviceKind,
    cfg: &Fig4Config,
    exec: &Executor,
) -> Result<Fig4Result, IoError> {
    let mut cells = Vec::with_capacity(2 * cfg.queue_depths.len() * cfg.io_sizes.len());
    for &(pattern, salt_offset) in &[(AccessPattern::RandWrite, 0), (AccessPattern::SeqWrite, 50)] {
        for (qi, &qd) in cfg.queue_depths.iter().enumerate() {
            for (si, &size) in cfg.io_sizes.iter().enumerate() {
                let salt = (qi as u64) * 100 + si as u64 + salt_offset;
                cells.push(move || {
                    let mut dev = roster.fresh(kind, 0xF1640000 + salt);
                    // Enough I/Os for steady state at this depth, but
                    // bounded volume: the paper's cells never age the
                    // device into GC ("when GC does not occur"), so stay
                    // under half the capacity.
                    let ios = cfg
                        .ios_per_cell
                        .max(qd as u64 * 100)
                        .min((roster.capacity_of(kind) / 2 / size as u64).max(100));
                    let spec = JobSpec::new(pattern, size, qd)
                        .with_io_limit(ios)
                        .with_seed(0x46 + salt);
                    run_job(dev.as_mut(), &spec).map(|r| r.throughput_gbps())
                });
            }
        }
    }
    let mut measured = exec.run(cells).into_iter();
    let mut grid = || -> Result<Vec<Vec<f64>>, IoError> {
        cfg.queue_depths
            .iter()
            .map(|_| {
                cfg.io_sizes
                    .iter()
                    .map(|_| measured.next().unwrap())
                    .collect()
            })
            .collect()
    };
    let rand_gbps = grid()?;
    let seq_gbps = grid()?;
    Ok(Fig4Result {
        device: kind,
        io_sizes: cfg.io_sizes.clone(),
        queue_depths: cfg.queue_depths.clone(),
        rand_gbps,
        seq_gbps,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn essd2_random_writes_win_big() {
        let roster = DeviceRoster::with_capacities(128 << 20, 128 << 20);
        let cfg = Fig4Config {
            io_sizes: vec![64 << 10],
            queue_depths: vec![16],
            ios_per_cell: 800,
        };
        let r = run(&roster, DeviceKind::Essd2, &cfg).unwrap();
        let (gain, _, _) = r.max_gain();
        assert!(gain > 1.5, "ESSD-2 gain should be large, got {gain}");
    }

    #[test]
    fn ssd_gain_is_flat() {
        let roster = DeviceRoster::with_capacities(128 << 20, 128 << 20);
        let cfg = Fig4Config {
            io_sizes: vec![64 << 10],
            queue_depths: vec![8],
            ios_per_cell: 800,
        };
        let r = run(&roster, DeviceKind::LocalSsd, &cfg).unwrap();
        let (gain, _, _) = r.max_gain();
        assert!(
            (0.8..1.25).contains(&gain),
            "pre-GC SSD should not care about write pattern, gain {gain}"
        );
    }
}
