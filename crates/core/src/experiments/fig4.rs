//! Figure 4: random- versus sequential-write throughput and the
//! random/sequential gain.

use crate::devices::{DeviceKind, DeviceRoster};
use uc_blockdev::IoError;
use uc_workload::{run_job, AccessPattern, JobSpec};

/// Workload grid for the Figure 4 sweep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fig4Config {
    /// I/O sizes in bytes (paper: 4 KiB to 256 KiB).
    pub io_sizes: Vec<u32>,
    /// Queue depths (paper: 1 to 32).
    pub queue_depths: Vec<usize>,
    /// I/Os per measurement cell.
    pub ios_per_cell: u64,
}

impl Fig4Config {
    /// The paper's grid: sizes {4..256} KiB, depths {1..32}.
    pub fn paper() -> Self {
        Fig4Config {
            io_sizes: vec![
                4 << 10,
                8 << 10,
                16 << 10,
                32 << 10,
                64 << 10,
                128 << 10,
                256 << 10,
            ],
            queue_depths: vec![1, 2, 4, 8, 16, 32],
            ios_per_cell: 4_000,
        }
    }

    /// A reduced grid for tests and smoke runs.
    pub fn quick() -> Self {
        Fig4Config {
            io_sizes: vec![4 << 10, 32 << 10, 256 << 10],
            queue_depths: vec![1, 8, 32],
            ios_per_cell: 1_200,
        }
    }
}

/// Figure 4 results for one device.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig4Result {
    /// Which device was measured.
    pub device: DeviceKind,
    /// Grid columns (I/O sizes in bytes).
    pub io_sizes: Vec<u32>,
    /// Grid rows (queue depths).
    pub queue_depths: Vec<usize>,
    /// Random-write throughput in GB/s, `[qd][size]`.
    pub rand_gbps: Vec<Vec<f64>>,
    /// Sequential-write throughput in GB/s, `[qd][size]`.
    pub seq_gbps: Vec<Vec<f64>>,
}

impl Fig4Result {
    /// The random/sequential throughput gain, `[qd][size]` (the paper's
    /// blue lines; >1 means random writes win).
    pub fn gain(&self) -> Vec<Vec<f64>> {
        self.rand_gbps
            .iter()
            .zip(&self.seq_gbps)
            .map(|(rr, sr)| {
                rr.iter()
                    .zip(sr)
                    .map(|(r, s)| if *s > 0.0 { r / s } else { f64::INFINITY })
                    .collect()
            })
            .collect()
    }

    /// The largest gain in the grid and the `(queue_depth, io_size)` where
    /// it occurs.
    pub fn max_gain(&self) -> (f64, usize, u32) {
        let mut best = (0.0, self.queue_depths[0], self.io_sizes[0]);
        for (qi, row) in self.gain().iter().enumerate() {
            for (si, &g) in row.iter().enumerate() {
                if g.is_finite() && g > best.0 {
                    best = (g, self.queue_depths[qi], self.io_sizes[si]);
                }
            }
        }
        best
    }

    /// The highest random-write throughput in the grid, in GB/s.
    pub fn peak_rand_gbps(&self) -> f64 {
        self.rand_gbps.iter().flatten().copied().fold(0.0, f64::max)
    }
}

/// Runs the Figure 4 sweep on `kind`.
///
/// Volumes stay well under the device capacity, matching the paper's
/// "when GC does not occur" framing for the local SSD.
///
/// # Errors
///
/// Propagates the first I/O error from the device.
pub fn run(
    roster: &DeviceRoster,
    kind: DeviceKind,
    cfg: &Fig4Config,
) -> Result<Fig4Result, IoError> {
    let run_cell = |pattern: AccessPattern, qd: usize, size: u32, salt: u64| {
        let mut dev = roster.build_seeded(kind, 0xF1640000 + salt);
        // Enough I/Os for steady state at this depth, but bounded volume:
        // the paper's cells never age the device into GC ("when GC does
        // not occur"), so stay under half the capacity.
        let ios = cfg
            .ios_per_cell
            .max(qd as u64 * 100)
            .min((roster.capacity_of(kind) / 2 / size as u64).max(100));
        let spec = JobSpec::new(pattern, size, qd)
            .with_io_limit(ios)
            .with_seed(0x46 + salt);
        run_job(dev.as_mut(), &spec).map(|r| r.throughput_gbps())
    };

    let mut rand_gbps = Vec::with_capacity(cfg.queue_depths.len());
    let mut seq_gbps = Vec::with_capacity(cfg.queue_depths.len());
    for (qi, &qd) in cfg.queue_depths.iter().enumerate() {
        let mut rand_row = Vec::with_capacity(cfg.io_sizes.len());
        let mut seq_row = Vec::with_capacity(cfg.io_sizes.len());
        for (si, &size) in cfg.io_sizes.iter().enumerate() {
            let salt = (qi as u64) * 100 + si as u64;
            rand_row.push(run_cell(AccessPattern::RandWrite, qd, size, salt)?);
            seq_row.push(run_cell(AccessPattern::SeqWrite, qd, size, salt + 50)?);
        }
        rand_gbps.push(rand_row);
        seq_gbps.push(seq_row);
    }
    Ok(Fig4Result {
        device: kind,
        io_sizes: cfg.io_sizes.clone(),
        queue_depths: cfg.queue_depths.clone(),
        rand_gbps,
        seq_gbps,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn essd2_random_writes_win_big() {
        let roster = DeviceRoster::with_capacities(256 << 20, 1 << 30);
        let cfg = Fig4Config {
            io_sizes: vec![64 << 10],
            queue_depths: vec![16],
            ios_per_cell: 800,
        };
        let r = run(&roster, DeviceKind::Essd2, &cfg).unwrap();
        let (gain, _, _) = r.max_gain();
        assert!(gain > 1.5, "ESSD-2 gain should be large, got {gain}");
    }

    #[test]
    fn ssd_gain_is_flat() {
        let roster = DeviceRoster::with_capacities(256 << 20, 256 << 20);
        let cfg = Fig4Config {
            io_sizes: vec![64 << 10],
            queue_depths: vec![8],
            ios_per_cell: 800,
        };
        let r = run(&roster, DeviceKind::LocalSsd, &cfg).unwrap();
        let (gain, _, _) = r.max_gain();
        assert!(
            (0.8..1.25).contains(&gain),
            "pre-GC SSD should not care about write pattern, gain {gain}"
        );
    }
}
