//! The trace-driven contract experiment: replay one arrival history
//! against every device class and report, phase by phase, where the
//! unwritten contract was violated.
//!
//! Every other experiment drives the devices with synthetic closed- or
//! open-loop specs; this one replays a [`Trace`] — captured through
//! `uc-trace`'s recorder or generated from an arrival shape — so the
//! contract is evaluated under the arrival patterns real tenants
//! produce (the axis the paper's Implication 4 varies).
//!
//! Like fig3, a replay is one continuous virtual timeline per device, so
//! it is sliced into **resumable phases** (equal spans of scaled arrival
//! time) through the checkpoint seam and pipelined across workers with
//! [`Executor::run_chains`]; phase boundaries double as the reporting
//! granularity. Determinism is the same contract fig3 pins: sequential,
//! pipelined and kill-resumed runs all produce byte-identical reports.
//!
//! The per-phase **violation report** checks two trace-level expectations
//! derived from the contract (thresholds in
//! [`thresholds`](crate::contract::thresholds)):
//!
//! * **latency blow-up** — a phase whose mean latency exceeds
//!   [`TRACE_PHASE_LATENCY_BLOWUP`] times the device's best phase means
//!   the arrival pattern overdrove the device (burst beyond the budget /
//!   GC debt), the behaviour Implication 4 tells clients to smooth away;
//! * **completion lag** — a phase whose last completion runs past its
//!   nominal end by more than [`TRACE_MAX_PHASE_LAG`] of the phase
//!   length means the device is not absorbing the offered load in the
//!   phase it arrived (sustained saturation, not just a transient spike).

use crate::contract::thresholds::{TRACE_MAX_PHASE_LAG, TRACE_PHASE_LATENCY_BLOWUP};
use crate::devices::{payload_codecs, DeviceKind, DeviceRoster};
use crate::experiments::Executor;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use uc_blockdev::{CheckpointDevice, CheckpointError, DeviceCheckpoint, PersistError};
use uc_persist::{DecodeError, Decoder, Encoder, Persist};
use uc_sim::{SimDuration, SimTime};
use uc_workload::{JobReport, ReplayCheckpoint, ReplayConfig, ReplayError, Trace, TraceReplayJob};

/// Parameters of a trace experiment run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceRunConfig {
    /// How the trace is replayed (mode, throughput window, speed, ring).
    pub replay: ReplayConfig,
    /// Number of reporting phases the replay is sliced into (equal spans
    /// of scaled arrival time; also the resumable-segment granularity).
    pub phases: usize,
}

impl TraceRunConfig {
    /// An open-loop run sliced into `phases` phases (clamped to ≥ 1).
    pub fn open_loop(phases: usize) -> Self {
        TraceRunConfig {
            replay: ReplayConfig::open_loop(),
            phases: phases.max(1),
        }
    }

    /// Replaces the replay configuration.
    pub fn with_replay(mut self, replay: ReplayConfig) -> Self {
        self.replay = replay;
        self
    }
}

/// A stable identity for a trace's exact contents: the CRC-32 of its
/// canonical entry wire form (the same bytes `uc-trace` writes as the
/// `uc.trace.v1` payload). Resuming a checkpoint against a *different*
/// trace would silently corrupt the continuation; the fingerprint makes
/// that a detectable mismatch instead.
pub fn trace_fingerprint(trace: &Trace) -> u32 {
    let mut w = Encoder::new();
    w.put_u64(trace.len() as u64);
    for entry in trace.entries() {
        entry.encode(&mut w);
    }
    uc_persist::crc32(w.as_bytes())
}

/// The milestone plan of one replay: entry-index milestones at equal
/// spans of scaled arrival time, plus the nominal phase length. Derived
/// in exactly one place so the durable runner's resume-validity check
/// can never drift from what a fresh run executes.
#[derive(Debug, Clone, PartialEq)]
struct Plan {
    fingerprint: u32,
    milestones: Vec<u64>,
    phase: SimDuration,
}

impl Plan {
    fn of(trace: &Trace, cfg: &TraceRunConfig) -> Plan {
        let phases = cfg.phases.max(1) as u64;
        // The scaled span: one past the last scaled arrival (so the last
        // entry falls inside the final phase), or 1 ns for empty traces.
        let end = trace
            .entries()
            .last()
            .map(|e| cfg.replay.scaled(e.at).as_nanos() + 1)
            .unwrap_or(1);
        let phase_nanos = end.div_ceil(phases).max(1);
        let entries = trace.entries();
        let milestones = (1..=phases)
            .map(|k| {
                let boundary = phase_nanos * k;
                entries.partition_point(|e| cfg.replay.scaled(e.at).as_nanos() < boundary) as u64
            })
            .collect();
        Plan {
            fingerprint: trace_fingerprint(trace),
            milestones,
            phase: SimDuration::from_nanos(phase_nanos),
        }
    }

    /// `true` if `checkpoint` was taken under this exact plan (same
    /// trace, same slicing, same replay configuration) and can continue
    /// it.
    fn matches(&self, checkpoint: &TraceRunCheckpoint, replay: &ReplayConfig) -> bool {
        checkpoint.fingerprint == self.fingerprint
            && checkpoint.milestones == self.milestones
            && checkpoint.driver.config == *replay
    }
}

/// A cumulative snapshot of the replay report at one phase boundary —
/// the difference of consecutive cuts yields the per-phase statistics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhaseCut {
    /// I/Os completed so far.
    pub ios: u64,
    /// Bytes completed so far.
    pub bytes: u64,
    /// Latency samples so far.
    pub lat_count: u64,
    /// Exact sum of latency samples so far, in nanoseconds (the
    /// histogram tracks this exactly, so per-phase means reconstructed
    /// from cut differences carry no truncation error).
    pub lat_sum_nanos: u128,
    /// Latest completion instant so far.
    pub finished_at: SimTime,
}

impl PhaseCut {
    fn of(report: &JobReport) -> PhaseCut {
        PhaseCut {
            ios: report.ios,
            bytes: report.bytes,
            lat_count: report.latency.count(),
            lat_sum_nanos: report.latency.sum_nanos(),
            finished_at: report.finished_at,
        }
    }
}

impl Persist for PhaseCut {
    fn encode(&self, w: &mut Encoder) {
        w.put_u64(self.ios);
        w.put_u64(self.bytes);
        w.put_u64(self.lat_count);
        // u128 as little-endian halves (the wire format has no u128).
        w.put_u64(self.lat_sum_nanos as u64);
        w.put_u64((self.lat_sum_nanos >> 64) as u64);
        self.finished_at.encode(w);
    }

    fn decode(r: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(PhaseCut {
            ios: r.get_u64()?,
            bytes: r.get_u64()?,
            lat_count: r.get_u64()?,
            lat_sum_nanos: {
                let lo = r.get_u64()? as u128;
                let hi = r.get_u64()? as u128;
                (hi << 64) | lo
            },
            finished_at: SimTime::decode(r)?,
        })
    }
}

/// Per-phase statistics of one device's replay.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseStat {
    /// Phase number (0-based).
    pub index: usize,
    /// Nominal end of the phase on the scaled arrival timeline.
    pub end: SimTime,
    /// Nominal phase length.
    pub duration: SimDuration,
    /// I/Os completed in this phase.
    pub ios: u64,
    /// Bytes completed in this phase.
    pub bytes: u64,
    /// Mean latency of this phase's I/Os.
    pub mean_latency: SimDuration,
    /// Throughput over the nominal phase length, in GB/s.
    pub gbps: f64,
    /// Latest completion instant at the phase cut.
    pub finished_at: SimTime,
}

impl PhaseStat {
    /// How far the last completion ran past the phase's nominal end.
    pub fn lag(&self) -> SimDuration {
        self.finished_at.saturating_since(self.end)
    }
}

/// One device's trace replay: the full report plus its per-phase slices.
#[derive(Debug, Clone)]
pub struct TraceRunResult {
    /// Which device was measured.
    pub device: DeviceKind,
    /// The complete replay report.
    pub report: JobReport,
    /// Per-phase statistics, in phase order.
    pub phases: Vec<PhaseStat>,
}

/// What a phase did wrong.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceViolationKind {
    /// Mean latency exceeded the device's best phase by this factor.
    LatencyBlowup {
        /// `phase mean / best phase mean`.
        factor: f64,
    },
    /// The phase's last completion ran this far past its nominal end.
    CompletionLag {
        /// The overrun.
        lag: SimDuration,
    },
}

/// One flagged phase of one device.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceViolation {
    /// The device that violated.
    pub device: DeviceKind,
    /// The offending phase (0-based).
    pub phase: usize,
    /// What went wrong.
    pub kind: TraceViolationKind,
}

/// The contract verdict of a trace experiment.
#[derive(Debug, Clone)]
pub struct TraceContractReport {
    /// Per-device results, in the order the experiment ran them.
    pub results: Vec<TraceRunResult>,
    /// Every flagged phase, in device-then-phase order.
    pub violations: Vec<TraceViolation>,
    /// Overall ESSD-versus-SSD mean-latency gaps (Observation 1's axis),
    /// present when the run included the local SSD.
    pub gaps: Vec<(DeviceKind, f64)>,
}

impl TraceContractReport {
    /// `true` if no phase of any device was flagged.
    pub fn clean(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Evaluates the per-phase contract checks over a set of replay results.
///
/// Deterministic: the same results always produce the same report (the
/// CI trace smoke diffs two full runs byte for byte).
pub fn evaluate(results: Vec<TraceRunResult>) -> TraceContractReport {
    let mut violations = Vec::new();
    for result in &results {
        let best = result
            .phases
            .iter()
            .filter(|p| p.ios > 0)
            .map(|p| p.mean_latency)
            .min()
            .unwrap_or(SimDuration::ZERO);
        for phase in &result.phases {
            if phase.ios > 0 && !best.is_zero() {
                let factor = phase.mean_latency.as_nanos() as f64 / best.as_nanos() as f64;
                if factor > TRACE_PHASE_LATENCY_BLOWUP {
                    violations.push(TraceViolation {
                        device: result.device,
                        phase: phase.index,
                        kind: TraceViolationKind::LatencyBlowup { factor },
                    });
                }
            }
            let lag = phase.lag();
            if lag.as_nanos() as f64 > phase.duration.as_nanos() as f64 * TRACE_MAX_PHASE_LAG {
                violations.push(TraceViolation {
                    device: result.device,
                    phase: phase.index,
                    kind: TraceViolationKind::CompletionLag { lag },
                });
            }
        }
    }
    let gaps = match results.iter().find(|r| r.device == DeviceKind::LocalSsd) {
        Some(ssd) if !ssd.report.latency.mean().is_zero() => {
            let base = ssd.report.latency.mean().as_nanos() as f64;
            results
                .iter()
                .filter(|r| r.device != DeviceKind::LocalSsd)
                .map(|r| (r.device, r.report.latency.mean().as_nanos() as f64 / base))
                .collect()
        }
        _ => Vec::new(),
    };
    TraceContractReport {
        results,
        violations,
        gaps,
    }
}

/// The jitter-seed base every trace-experiment device is built with.
fn device_seed(kind: DeviceKind) -> u64 {
    0x7_2ACE_0000 + kind as u64
}

/// A frozen trace replay between phases: everything needed to continue
/// the run on any worker (or, persisted, in any process) — except the
/// trace itself, whose identity is pinned by the fingerprint.
#[derive(Debug, Clone)]
pub struct TraceRunCheckpoint {
    /// Which device is being measured.
    pub kind: DeviceKind,
    /// Fingerprint of the trace this run replays
    /// ([`trace_fingerprint`]).
    pub fingerprint: u32,
    /// Entry-index milestones; the last equals the trace length.
    pub milestones: Vec<u64>,
    /// Phases already completed.
    pub completed: usize,
    /// Boundary snapshots taken so far (one per completed phase).
    pub cuts: Vec<PhaseCut>,
    /// The device's complete hidden state.
    pub device: DeviceCheckpoint,
    /// The paused replay driver.
    pub driver: ReplayCheckpoint,
}

impl TraceRunCheckpoint {
    /// The on-disk record kind tag of a serialized trace-run checkpoint.
    /// Bump the suffix when the layout changes.
    pub const RECORD_KIND: &'static str = "uc.trace-run.v1";

    /// Appends this checkpoint's wire form to `w`.
    ///
    /// # Errors
    ///
    /// Returns [`PersistError::NotPersistent`] if the embedded device
    /// checkpoint carries no persistence codec (roster-built devices
    /// always do).
    pub fn encode_into(&self, w: &mut Encoder) -> Result<(), PersistError> {
        self.kind.encode(w);
        w.put_u32(self.fingerprint);
        self.milestones.encode(w);
        self.completed.encode(w);
        self.cuts.encode(w);
        self.device.encode_into(w)?;
        self.driver.encode(w);
        Ok(())
    }

    /// Parses a checkpoint back out of its wire form, thawing the device
    /// payload through the roster's codec registry.
    ///
    /// # Errors
    ///
    /// Returns a typed [`DecodeError`] on any malformed input.
    pub fn decode_from(r: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        let kind = DeviceKind::decode(r)?;
        let fingerprint = r.get_u32()?;
        let milestones = Vec::<u64>::decode(r)?;
        let completed = usize::decode(r)?;
        let cuts = Vec::<PhaseCut>::decode(r)?;
        let device = DeviceCheckpoint::decode_from(r, &payload_codecs())?;
        let driver = ReplayCheckpoint::decode(r)?;
        if completed > milestones.len() || cuts.len() != completed {
            return Err(DecodeError::InvalidValue {
                what: "TraceRunCheckpoint.completed",
            });
        }
        Ok(TraceRunCheckpoint {
            kind,
            fingerprint,
            milestones,
            completed,
            cuts,
            device,
            driver,
        })
    }

    /// Writes this checkpoint to `path` as a self-describing record file
    /// (atomically: temp file + rename).
    ///
    /// # Errors
    ///
    /// Returns [`PersistError`] on codec-less payloads or filesystem
    /// failures.
    pub fn save_to(&self, path: &Path) -> Result<(), PersistError> {
        let mut w = Encoder::new();
        self.encode_into(&mut w)?;
        uc_persist::write_record_file(path, Self::RECORD_KIND, w.as_bytes())?;
        Ok(())
    }

    /// Reads a checkpoint back from a record file written by
    /// [`TraceRunCheckpoint::save_to`].
    ///
    /// # Errors
    ///
    /// Every failure is a typed [`DecodeError`], never a panic.
    pub fn load_from(path: &Path) -> Result<Self, DecodeError> {
        let (kind, payload) = uc_persist::read_record_file(path)?;
        if kind != Self::RECORD_KIND {
            return Err(DecodeError::UnknownKind { found: kind });
        }
        let mut r = Decoder::new(&payload);
        let checkpoint = Self::decode_from(&mut r)?;
        r.finish()?;
        Ok(checkpoint)
    }
}

/// A trace replay sliced into resumable phases.
///
/// Phase boundaries are equal spans of scaled arrival time; between
/// phases the run can be checkpointed, moved and resumed. However it is
/// driven, the final [`TraceRunResult`] is byte-identical to an unsliced
/// run's.
pub struct TraceRun {
    kind: DeviceKind,
    fingerprint: u32,
    milestones: Vec<u64>,
    phase: SimDuration,
    completed: usize,
    cuts: Vec<PhaseCut>,
    device: Box<dyn CheckpointDevice + Send>,
    job: TraceReplayJob,
}

impl TraceRun {
    /// Primes a replay on a fresh device (no I/O is issued yet).
    ///
    /// # Errors
    ///
    /// Returns [`ReplayError::Trace`] if the trace fails validation
    /// against the device this roster builds for `kind`.
    pub fn start(
        roster: &DeviceRoster,
        kind: DeviceKind,
        trace: &Trace,
        cfg: &TraceRunConfig,
    ) -> Result<Self, ReplayError> {
        let plan = Plan::of(trace, cfg);
        let device = roster.build_checkpointable(kind, device_seed(kind));
        let job = TraceReplayJob::start(&device, trace, &cfg.replay)?;
        Ok(TraceRun {
            kind,
            fingerprint: plan.fingerprint,
            milestones: plan.milestones,
            phase: plan.phase,
            completed: 0,
            cuts: Vec::new(),
            device,
            job,
        })
    }

    /// Phases already completed.
    pub fn completed(&self) -> usize {
        self.completed
    }

    /// Total phases in the plan.
    pub fn phases(&self) -> usize {
        self.milestones.len()
    }

    /// `true` once every phase has run.
    ///
    /// Deliberately *not* shortcut by the driver finishing early (an
    /// intermediate milestone can already cover the whole trace, e.g.
    /// for very short or heavily `--speed`-compressed traces): every
    /// runner executes exactly [`TraceRun::phases`] advances so the
    /// sequential, pipelined and durable paths always produce the same
    /// number of [`PhaseStat`]s.
    pub fn is_finished(&self) -> bool {
        self.completed >= self.milestones.len()
    }

    /// Runs one phase: drives the replay to the next entry milestone (the
    /// final phase drains to completion).
    ///
    /// # Errors
    ///
    /// Propagates the first I/O error from the device.
    pub fn advance(&mut self, trace: &Trace) -> Result<(), ReplayError> {
        let last = self.completed + 1 >= self.milestones.len();
        let target = if last {
            usize::MAX
        } else {
            self.milestones[self.completed] as usize
        };
        self.job.run_until(&mut self.device, trace, target)?;
        self.cuts.push(PhaseCut::of(self.job.report()));
        self.completed += 1;
        Ok(())
    }

    /// Freezes the run between phases into a portable checkpoint.
    pub fn checkpoint(&self) -> TraceRunCheckpoint {
        TraceRunCheckpoint {
            kind: self.kind,
            fingerprint: self.fingerprint,
            milestones: self.milestones.clone(),
            completed: self.completed,
            cuts: self.cuts.clone(),
            device: self.device.checkpoint(),
            driver: self.job.checkpoint(),
        }
    }

    /// Thaws a checkpoint onto a fresh roster-built device and resumes
    /// the paused driver. The caller must pass the same trace the
    /// checkpoint was taken from (pinned by the fingerprint).
    ///
    /// # Errors
    ///
    /// Returns a [`CheckpointError`] if the device state does not belong
    /// to the device this roster builds for `checkpoint.kind`.
    ///
    /// # Panics
    ///
    /// Panics if `trace` does not match the checkpoint's fingerprint —
    /// continuing a replay against different entries is never meaningful.
    pub fn resume(
        roster: &DeviceRoster,
        trace: &Trace,
        checkpoint: TraceRunCheckpoint,
    ) -> Result<Self, CheckpointError> {
        assert_eq!(
            trace_fingerprint(trace),
            checkpoint.fingerprint,
            "checkpoint does not belong to this trace"
        );
        let mut device = roster.build_checkpointable(checkpoint.kind, device_seed(checkpoint.kind));
        device.restore_from(checkpoint.device)?;
        // The phase length is a pure function of (trace, config, phase
        // count) — recompute rather than persist it.
        let cfg = TraceRunConfig {
            replay: checkpoint.driver.config,
            phases: checkpoint.milestones.len(),
        };
        let plan = Plan::of(trace, &cfg);
        Ok(TraceRun {
            kind: checkpoint.kind,
            fingerprint: checkpoint.fingerprint,
            milestones: checkpoint.milestones,
            phase: plan.phase,
            completed: checkpoint.completed,
            cuts: checkpoint.cuts,
            device,
            job: TraceReplayJob::resume(checkpoint.driver),
        })
    }

    /// Consumes the finished run, yielding the result with its per-phase
    /// slices.
    ///
    /// # Panics
    ///
    /// Panics if the run is not finished.
    pub fn into_result(self) -> TraceRunResult {
        assert!(self.is_finished(), "trace run still has phases to go");
        let phase_secs = self.phase.as_secs_f64();
        let mut phases = Vec::with_capacity(self.cuts.len());
        let mut prev = PhaseCut {
            ios: 0,
            bytes: 0,
            lat_count: 0,
            lat_sum_nanos: 0,
            finished_at: SimTime::ZERO,
        };
        for (index, cut) in self.cuts.iter().enumerate() {
            let ios = cut.ios - prev.ios;
            let bytes = cut.bytes - prev.bytes;
            let count = cut.lat_count - prev.lat_count;
            let mean_latency = if count == 0 {
                SimDuration::ZERO
            } else {
                let sum = cut.lat_sum_nanos - prev.lat_sum_nanos;
                SimDuration::from_nanos((sum / count as u128) as u64)
            };
            phases.push(PhaseStat {
                index,
                end: SimTime::ZERO + self.phase * (index as u64 + 1),
                duration: self.phase,
                ios,
                bytes,
                mean_latency,
                gbps: if phase_secs > 0.0 {
                    bytes as f64 / 1e9 / phase_secs
                } else {
                    0.0
                },
                finished_at: cut.finished_at,
            });
            prev = *cut;
        }
        TraceRunResult {
            device: self.kind,
            report: self.job.into_report(),
            phases,
        }
    }
}

/// Replays the trace on one device as a single-threaded run that still
/// round-trips through a [`TraceRunCheckpoint`] at every phase boundary
/// (exercising the same freeze/thaw path the pipelined runner uses).
///
/// # Errors
///
/// Propagates trace-validation and device I/O errors as
/// [`TraceRunError::Replay`]. A checkpoint taken by this run that fails
/// to restore (a checkpoint-seam bug, not an I/O condition) surfaces as
/// [`TraceRunError::Restore`] instead of a panic, so callers on the
/// non-test path get a typed error they can report.
pub fn run(
    roster: &DeviceRoster,
    kind: DeviceKind,
    trace: &Trace,
    cfg: &TraceRunConfig,
) -> Result<TraceRunResult, TraceRunError> {
    let mut state = TraceRun::start(roster, kind, trace, cfg)?;
    loop {
        state.advance(trace)?;
        if state.is_finished() {
            return Ok(state.into_result());
        }
        let frozen = state.checkpoint();
        state = TraceRun::resume(roster, trace, frozen).map_err(TraceRunError::Restore)?;
    }
}

/// Replays the trace on several devices with their phase chains
/// pipelined across `exec`'s workers ([`Executor::run_chains`]): phase
/// `k` of one device runs concurrently with phase `k-1` of another, each
/// boundary feeding a [`TraceRunCheckpoint`] forward.
///
/// Results are returned in `kinds` order and are byte-identical to
/// [`run`]'s for every device, at any thread count.
///
/// # Errors
///
/// Propagates the first trace-validation or I/O error any device
/// reports as [`TraceRunError::Replay`]; a checkpoint that fails to
/// restore onto its own roster surfaces as [`TraceRunError::Restore`].
pub fn run_pipelined(
    roster: &DeviceRoster,
    kinds: &[DeviceKind],
    trace: &Trace,
    cfg: &TraceRunConfig,
    exec: &Executor,
) -> Result<Vec<TraceRunResult>, TraceRunError> {
    // Stages only borrow the trace (`run_chains` runs on scoped
    // threads, so non-'static closures are fine) — a GiB-scale trace is
    // shared, never copied.
    type Stage<'t> = Box<
        dyn FnOnce(
                Result<TraceRunCheckpoint, TraceRunError>,
            ) -> Result<TraceRunCheckpoint, TraceRunError>
            + Send
            + 't,
    >;
    let phases = cfg.phases.max(1);
    let mut chains: Vec<(Result<TraceRunCheckpoint, TraceRunError>, Vec<Stage<'_>>)> =
        Vec::with_capacity(kinds.len());
    for &kind in kinds {
        let initial = TraceRun::start(roster, kind, trace, cfg)
            .map(|r| r.checkpoint())
            .map_err(TraceRunError::Replay);
        let stages: Vec<Stage<'_>> = (0..phases)
            .map(|_| {
                let roster = roster.clone();
                Box::new(move |frozen: Result<TraceRunCheckpoint, TraceRunError>| {
                    let mut state = TraceRun::resume(&roster, trace, frozen?)
                        .map_err(TraceRunError::Restore)?;
                    state.advance(trace)?;
                    Ok(state.checkpoint())
                }) as Stage<'_>
            })
            .collect();
        chains.push((initial, stages));
    }
    exec.run_chains(chains)
        .into_iter()
        .map(|frozen| {
            let state = TraceRun::resume(roster, trace, frozen?).map_err(TraceRunError::Restore)?;
            Ok(state.into_result())
        })
        .collect()
}

/// Errors of the trace runners ([`run`], [`run_pipelined`] and
/// [`run_pipelined_durable`]).
#[derive(Debug)]
pub enum TraceRunError {
    /// The trace failed validation or a device reported an I/O error.
    Replay(ReplayError),
    /// Writing a phase checkpoint to disk failed.
    Save(PersistError),
    /// A checkpoint loaded from disk does not restore onto the devices
    /// this roster builds.
    Restore(CheckpointError),
}

impl std::fmt::Display for TraceRunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceRunError::Replay(e) => write!(f, "replay error: {e}"),
            TraceRunError::Save(e) => write!(f, "persisting phase checkpoint: {e}"),
            TraceRunError::Restore(e) => write!(f, "restoring phase checkpoint: {e}"),
        }
    }
}

impl std::error::Error for TraceRunError {}

impl From<ReplayError> for TraceRunError {
    fn from(e: ReplayError) -> Self {
        TraceRunError::Replay(e)
    }
}

/// A directory of durable trace-run checkpoints: one file per device
/// (`trace-<slug>.ckpt`), atomically overwritten at every phase
/// boundary, so the newest boundary is always the only one on disk and
/// a crash can never leave a torn record (temp file + rename).
///
/// Cheaply cloneable and `Send + Sync`: the pipelined runner's worker
/// threads share it.
#[derive(Debug, Clone)]
pub struct TraceStore {
    dir: PathBuf,
    kill_after: Option<u64>,
    saves: Arc<AtomicU64>,
}

impl TraceStore {
    /// Opens (creating if needed) a checkpoint directory.
    ///
    /// # Errors
    ///
    /// Propagates the filesystem error if the directory cannot be
    /// created.
    pub fn create(dir: impl Into<PathBuf>) -> std::io::Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(TraceStore {
            dir,
            kill_after: None,
            saves: Arc::new(AtomicU64::new(0)),
        })
    }

    /// The directory holding the checkpoint files.
    pub fn path(&self) -> &Path {
        &self.dir
    }

    /// Crash-testing hook: terminate the *process* (exit code 42)
    /// immediately after the `n`-th successful checkpoint save — the
    /// same deterministic stand-in for `kill -9` the fig3 crash-resume
    /// gate uses. Never set in normal operation.
    pub fn with_kill_after(mut self, saves: u64) -> Self {
        self.kill_after = Some(saves);
        self
    }

    /// Checkpoints saved through this store (and its clones) so far.
    pub fn saves(&self) -> u64 {
        self.saves.load(Ordering::Relaxed)
    }

    /// The checkpoint file path of `kind`.
    pub fn device_path(&self, kind: DeviceKind) -> PathBuf {
        self.dir.join(format!("trace-{}.ckpt", kind.slug()))
    }

    /// Persists one phase-boundary checkpoint (atomically overwriting
    /// the device's previous boundary), returning its path.
    ///
    /// # Errors
    ///
    /// Propagates [`PersistError`] from the underlying save.
    pub fn save(&self, checkpoint: &TraceRunCheckpoint) -> Result<PathBuf, PersistError> {
        let path = self.device_path(checkpoint.kind);
        checkpoint.save_to(&path)?;
        let saved = self.saves.fetch_add(1, Ordering::Relaxed) + 1;
        if let Some(limit) = self.kill_after {
            if saved >= limit {
                eprintln!(
                    "trace: simulated crash after {saved} checkpoint save(s) \
                     (--kill-after {limit})"
                );
                std::process::exit(42);
            }
        }
        Ok(path)
    }

    /// Loads `kind`'s checkpoint if it exists, decodes cleanly and
    /// satisfies `accept`; anything else is reported on stderr and the
    /// device starts fresh.
    pub fn load_matching<F>(&self, kind: DeviceKind, accept: F) -> Option<TraceRunCheckpoint>
    where
        F: Fn(&TraceRunCheckpoint) -> bool,
    {
        let path = self.device_path(kind);
        if !path.exists() {
            return None;
        }
        match TraceRunCheckpoint::load_from(&path) {
            Ok(checkpoint) if checkpoint.kind != kind => {
                eprintln!(
                    "trace: ignoring {} (names device {}, expected {kind})",
                    path.display(),
                    checkpoint.kind
                );
                None
            }
            Ok(checkpoint) if accept(&checkpoint) => Some(checkpoint),
            Ok(_) => {
                eprintln!(
                    "trace: ignoring {} (taken under a different plan — \
                     trace/config/phases); starting fresh",
                    path.display()
                );
                None
            }
            Err(e) => {
                eprintln!("trace: ignoring {}: {e}", path.display());
                None
            }
        }
    }
}

/// Runs the trace experiment like [`run_pipelined`], additionally
/// persisting every phase-boundary checkpoint into `store` — and, with
/// `resume`, continuing each device from its on-disk checkpoint instead
/// of from scratch.
///
/// Durability does not perturb the simulation: a run killed at any
/// boundary and resumed from disk produces results **byte-identical** to
/// an uninterrupted run (the trace CI smoke pins this end to end).
///
/// A resumed checkpoint must match the current plan (same trace
/// fingerprint, milestones and replay configuration); a stale one is
/// reported on stderr and that device starts fresh.
///
/// # Errors
///
/// Returns the first replay error, checkpoint-save failure, or restore
/// mismatch any chain hits.
pub fn run_pipelined_durable(
    roster: &DeviceRoster,
    kinds: &[DeviceKind],
    trace: &Trace,
    cfg: &TraceRunConfig,
    exec: &Executor,
    store: &TraceStore,
    resume: bool,
) -> Result<Vec<TraceRunResult>, TraceRunError> {
    // As in `run_pipelined`, stages borrow the trace — no copy.
    type Stage<'t> = Box<
        dyn FnOnce(
                Result<TraceRunCheckpoint, TraceRunError>,
            ) -> Result<TraceRunCheckpoint, TraceRunError>
            + Send
            + 't,
    >;
    let phases = cfg.phases.max(1);
    let plan = Plan::of(trace, cfg);
    let mut chains: Vec<(Result<TraceRunCheckpoint, TraceRunError>, Vec<Stage<'_>>)> =
        Vec::with_capacity(kinds.len());
    for &kind in kinds {
        let from_disk = if resume {
            store.load_matching(kind, |checkpoint| plan.matches(checkpoint, &cfg.replay))
        } else {
            None
        };
        let initial: Result<TraceRunCheckpoint, TraceRunError> = match from_disk {
            Some(checkpoint) => {
                eprintln!(
                    "trace: resuming {kind} from phase boundary {}/{}",
                    checkpoint.completed,
                    checkpoint.milestones.len()
                );
                Ok(checkpoint)
            }
            None => TraceRun::start(roster, kind, trace, cfg)
                .map_err(TraceRunError::Replay)
                .and_then(|state| {
                    let checkpoint = state.checkpoint();
                    // Persist the primed (phase-0) state too: a crash
                    // before the first boundary then resumes instead of
                    // re-validating from scratch.
                    store.save(&checkpoint).map_err(TraceRunError::Save)?;
                    Ok(checkpoint)
                }),
        };
        let remaining = match &initial {
            Ok(checkpoint) => phases - checkpoint.completed,
            Err(_) => 0,
        };
        let stages: Vec<Stage<'_>> = (0..remaining)
            .map(|_| {
                let roster = roster.clone();
                let store = store.clone();
                Box::new(move |frozen: Result<TraceRunCheckpoint, TraceRunError>| {
                    let mut state = TraceRun::resume(&roster, trace, frozen?)
                        .map_err(TraceRunError::Restore)?;
                    state.advance(trace)?;
                    let checkpoint = state.checkpoint();
                    store.save(&checkpoint).map_err(TraceRunError::Save)?;
                    Ok(checkpoint)
                }) as Stage<'_>
            })
            .collect();
        chains.push((initial, stages));
    }
    exec.run_chains(chains)
        .into_iter()
        .map(|frozen| {
            let state = TraceRun::resume(roster, trace, frozen?).map_err(TraceRunError::Restore)?;
            Ok(state.into_result())
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::render_trace_report;

    fn roster() -> DeviceRoster {
        DeviceRoster::with_capacities(128 << 20, 128 << 20)
    }

    /// A bursty trace sized for the 128 MiB test roster: 20 kIOPS bursts
    /// of 64 KiB writes, 25 % duty cycle.
    fn bursty_trace() -> Trace {
        // Hand-rolled (uc-core does not depend on uc-trace): 8 bursts of
        // 24 entries, 1 ms apart within the burst region.
        let mut entries = Vec::new();
        let mut rng = uc_sim::SimRng::new(0xBEE5);
        for burst in 0..8u64 {
            let start = SimTime::ZERO + SimDuration::from_millis(burst * 4);
            for i in 0..24u64 {
                entries.push(uc_workload::TraceEntry {
                    at: start + SimDuration::from_micros(40 * i),
                    kind: uc_blockdev::IoKind::Write,
                    offset: rng.range_u64(0, 1024) * 65536,
                    len: 65536,
                });
            }
        }
        Trace::from_entries(entries)
    }

    #[test]
    fn pipelined_and_sequential_match_for_every_kind() {
        let roster = roster();
        let trace = bursty_trace();
        let cfg = TraceRunConfig::open_loop(4)
            .with_replay(ReplayConfig::open_loop().with_window(SimDuration::from_millis(1)));
        let pipelined = run_pipelined(
            &roster,
            &DeviceKind::ALL,
            &trace,
            &cfg,
            &Executor::with_threads(3),
        )
        .unwrap();
        for (i, &kind) in DeviceKind::ALL.iter().enumerate() {
            let sequential = run(&roster, kind, &trace, &cfg).unwrap();
            assert_eq!(sequential.phases, pipelined[i].phases, "{kind}");
            assert_eq!(
                sequential.report.finished_at, pipelined[i].report.finished_at,
                "{kind}"
            );
            assert_eq!(
                sequential.report.latency.mean(),
                pipelined[i].report.latency.mean(),
                "{kind}"
            );
        }
        // The full rendered report is identical run-to-run (the CI bar).
        let a = render_trace_report(&evaluate(pipelined));
        let again = run_pipelined(
            &roster,
            &DeviceKind::ALL,
            &trace,
            &cfg,
            &Executor::sequential(),
        )
        .unwrap();
        assert_eq!(a, render_trace_report(&evaluate(again)));
    }

    #[test]
    fn early_covering_milestones_keep_sequential_and_pipelined_aligned() {
        // A short trace with far more phases than distinct arrival spans:
        // intermediate milestones equal the trace length, so the replay
        // driver finishes phases early. Sequential and pipelined runners
        // must still emit the same (full) number of PhaseStats.
        let roster = roster();
        let entries: Vec<uc_workload::TraceEntry> = (0..17u64)
            .map(|i| uc_workload::TraceEntry {
                at: SimTime::from_nanos(i),
                kind: uc_blockdev::IoKind::Write,
                offset: i * 65536,
                len: 65536,
            })
            .collect();
        let trace = Trace::from_entries(entries);
        let cfg = TraceRunConfig::open_loop(16);
        let sequential = run(&roster, DeviceKind::LocalSsd, &trace, &cfg).unwrap();
        let pipelined = run_pipelined(
            &roster,
            &[DeviceKind::LocalSsd],
            &trace,
            &cfg,
            &Executor::with_threads(2),
        )
        .unwrap();
        assert_eq!(sequential.phases.len(), 16);
        assert_eq!(sequential.phases, pipelined[0].phases);
        assert_eq!(
            sequential.report.finished_at,
            pipelined[0].report.finished_at
        );
    }

    #[test]
    fn phase_bookkeeping_sums_to_the_full_report() {
        let roster = roster();
        let trace = bursty_trace();
        let cfg = TraceRunConfig::open_loop(5);
        let result = run(&roster, DeviceKind::Essd1, &trace, &cfg).unwrap();
        assert_eq!(result.phases.len(), 5);
        let ios: u64 = result.phases.iter().map(|p| p.ios).sum();
        let bytes: u64 = result.phases.iter().map(|p| p.bytes).sum();
        assert_eq!(ios, result.report.ios);
        assert_eq!(bytes, result.report.bytes);
        assert_eq!(ios, trace.len() as u64, "open loop replays every entry");
        // Phase ends ascend by one phase length.
        for w in result.phases.windows(2) {
            assert_eq!(w[1].end.saturating_since(w[0].end), w[1].duration);
        }
    }

    #[test]
    fn fingerprint_pins_the_trace_identity() {
        let trace = bursty_trace();
        assert_eq!(trace_fingerprint(&trace), trace_fingerprint(&trace.clone()));
        let mut other = trace.entries().to_vec();
        other.pop();
        assert_ne!(
            trace_fingerprint(&trace),
            trace_fingerprint(&Trace::from_entries(other))
        );
    }

    #[test]
    #[should_panic(expected = "does not belong to this trace")]
    fn resume_against_a_different_trace_panics() {
        let roster = roster();
        let trace = bursty_trace();
        let cfg = TraceRunConfig::open_loop(3);
        let mut state = TraceRun::start(&roster, DeviceKind::LocalSsd, &trace, &cfg).unwrap();
        state.advance(&trace).unwrap();
        let frozen = state.checkpoint();
        let other = Trace::from_entries(trace.entries()[..10].to_vec());
        let _ = TraceRun::resume(&roster, &other, frozen);
    }

    #[test]
    fn checkpoint_file_round_trips_and_rejects_corruption() {
        let roster = roster();
        let trace = bursty_trace();
        let cfg = TraceRunConfig::open_loop(4);
        let mut state = TraceRun::start(&roster, DeviceKind::Essd2, &trace, &cfg).unwrap();
        state.advance(&trace).unwrap();
        state.advance(&trace).unwrap();
        let checkpoint = state.checkpoint();

        let dir = std::env::temp_dir()
            .join("uc-trace-run-tests")
            .join(format!("roundtrip-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = TraceStore::create(&dir).unwrap();
        let path = store.save(&checkpoint).unwrap();
        assert_eq!(store.saves(), 1);

        let loaded = TraceRunCheckpoint::load_from(&path).unwrap();
        assert_eq!(loaded.kind, checkpoint.kind);
        assert_eq!(loaded.fingerprint, checkpoint.fingerprint);
        assert_eq!(loaded.milestones, checkpoint.milestones);
        assert_eq!(loaded.completed, checkpoint.completed);
        assert_eq!(loaded.cuts, checkpoint.cuts);

        // The thawed run continues to the same final result.
        let mut a = TraceRun::resume(&roster, &trace, loaded).unwrap();
        let mut b = TraceRun::resume(&roster, &trace, checkpoint).unwrap();
        while !a.is_finished() {
            a.advance(&trace).unwrap();
            b.advance(&trace).unwrap();
        }
        assert_eq!(a.into_result().phases, b.into_result().phases);

        // Corruption decodes to typed errors.
        let good = std::fs::read(&path).unwrap();
        let mut flipped = good.clone();
        let mid = flipped.len() / 2;
        flipped[mid] ^= 0x08;
        std::fs::write(&path, &flipped).unwrap();
        assert!(matches!(
            TraceRunCheckpoint::load_from(&path),
            Err(DecodeError::ChecksumMismatch { .. })
        ));
        // A stale file is skipped (fresh start), not an error.
        assert!(store.load_matching(DeviceKind::Essd2, |_| true).is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn killed_run_resumes_to_identical_results() {
        let roster = roster();
        let trace = bursty_trace();
        let cfg = TraceRunConfig::open_loop(4);
        let dir = std::env::temp_dir()
            .join("uc-trace-run-tests")
            .join(format!("kill-resume-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = TraceStore::create(&dir).unwrap();
        // Advance each device partway, persist, "crash" (drop state).
        for &kind in &DeviceKind::ALL {
            let mut partial = TraceRun::start(&roster, kind, &trace, &cfg).unwrap();
            partial.advance(&trace).unwrap();
            if kind == DeviceKind::Essd1 {
                partial.advance(&trace).unwrap(); // devices die at different points
            }
            store.save(&partial.checkpoint()).unwrap();
        }
        let resumed = run_pipelined_durable(
            &roster,
            &DeviceKind::ALL,
            &trace,
            &cfg,
            &Executor::with_threads(2),
            &store,
            true,
        )
        .unwrap();
        for (i, &kind) in DeviceKind::ALL.iter().enumerate() {
            let uninterrupted = run(&roster, kind, &trace, &cfg).unwrap();
            assert_eq!(resumed[i].phases, uninterrupted.phases, "{kind}");
            assert_eq!(
                resumed[i].report.latency.mean(),
                uninterrupted.report.latency.mean(),
                "{kind}"
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_plan_checkpoints_start_fresh() {
        let roster = roster();
        let trace = bursty_trace();
        let dir = std::env::temp_dir()
            .join("uc-trace-run-tests")
            .join(format!("stale-plan-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = TraceStore::create(&dir).unwrap();
        // A checkpoint under a 3-phase plan…
        let cfg3 = TraceRunConfig::open_loop(3);
        let mut other = TraceRun::start(&roster, DeviceKind::LocalSsd, &trace, &cfg3).unwrap();
        other.advance(&trace).unwrap();
        store.save(&other.checkpoint()).unwrap();
        // …must not hijack a 5-phase resume.
        let cfg5 = TraceRunConfig::open_loop(5);
        let resumed = run_pipelined_durable(
            &roster,
            &[DeviceKind::LocalSsd],
            &trace,
            &cfg5,
            &Executor::sequential(),
            &store,
            true,
        )
        .unwrap();
        let plain = run(&roster, DeviceKind::LocalSsd, &trace, &cfg5).unwrap();
        assert_eq!(resumed[0].phases, plain.phases);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn evaluation_flags_overdriven_phases() {
        // Two synthetic results: one clean, one with a 10x latency phase
        // and a phase whose completions lag a full phase length.
        let phase = SimDuration::from_millis(1);
        let mk = |index: usize, mean_us: u64, lag: SimDuration| PhaseStat {
            index,
            end: SimTime::ZERO + phase * (index as u64 + 1),
            duration: phase,
            ios: 10,
            bytes: 10 << 16,
            mean_latency: SimDuration::from_micros(mean_us),
            gbps: 0.5,
            finished_at: SimTime::ZERO + phase * (index as u64 + 1) + lag,
        };
        let clean = TraceRunResult {
            device: DeviceKind::Essd2,
            report: JobReport::empty(SimDuration::from_millis(1), SimTime::ZERO),
            phases: vec![mk(0, 100, SimDuration::ZERO), mk(1, 150, SimDuration::ZERO)],
        };
        let dirty = TraceRunResult {
            device: DeviceKind::LocalSsd,
            report: JobReport::empty(SimDuration::from_millis(1), SimTime::ZERO),
            phases: vec![mk(0, 100, SimDuration::ZERO), mk(1, 1000, phase)],
        };
        let report = evaluate(vec![clean, dirty]);
        assert!(!report.clean());
        assert_eq!(report.violations.len(), 2, "{:?}", report.violations);
        assert!(report.violations.iter().any(
            |v| matches!(v.kind, TraceViolationKind::LatencyBlowup { factor } if factor > 9.0)
        ));
        assert!(report
            .violations
            .iter()
            .any(|v| matches!(v.kind, TraceViolationKind::CompletionLag { .. })));
        assert!(report.violations.iter().all(|v| v.phase == 1));
    }
}
