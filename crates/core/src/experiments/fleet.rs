//! The fleet experiment: hundreds of tenants multiplexed onto a shared
//! eSSD pool, with the contract evaluated per tenant.
//!
//! The paper measures one tenant per device; cloud fleets multiplex many.
//! This experiment drives [`uc_fleet`]'s simulation against a pool of
//! roster-class eSSDs (alternating the AWS io2 and Alibaba PL3 presets)
//! and evaluates two fleet-level contract expectations (thresholds in
//! [`thresholds`](crate::contract::thresholds)):
//!
//! * **noisy-neighbor blow-up** — a tenant whose mean latency exceeds
//!   [`FLEET_TENANT_LATENCY_BLOWUP`] times the fleet's mean of tenant
//!   means is a flagged interference victim: its requests queue behind
//!   co-located tenants' bursts rather than its own budget;
//! * **fairness floor** — an epoch whose Jain index falls below
//!   [`FLEET_MIN_FAIRNESS`] means service quality on some device
//!   collapsed for its residents (placement skew the rebalancer should
//!   be draining).
//!
//! Like fig3 and the trace experiment, the run is **durable**: at every
//! epoch boundary the whole fleet — placement, cursors, budgets,
//! metrics, and each device's complete hidden state — freezes into one
//! on-disk [`FleetCheckpoint`], and a killed run resumes byte-identical
//! to an uninterrupted one (the fleet CI smoke pins this end to end).

use crate::contract::thresholds::{FLEET_MIN_FAIRNESS, FLEET_TENANT_LATENCY_BLOWUP};
use crate::devices::payload_codecs;
use std::path::{Path, PathBuf};
use uc_blockdev::{CheckpointError, DeviceCheckpoint, IoError, PersistError};
use uc_essd::{Essd, EssdConfig};
use uc_fleet::{FleetConfig, FleetDevice, FleetReport, FleetSim, FleetSnapshot};
use uc_obs::ObsReport;
use uc_persist::{DecodeError, Decoder, Encoder, Persist};

/// Parameters of a fleet experiment run.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetRunConfig {
    /// The fleet itself: tenants, devices, mix, horizon, epochs, seed,
    /// rebalancing policy.
    pub fleet: FleetConfig,
    /// Per-device capacity, in bytes.
    pub capacity: u64,
}

impl FleetRunConfig {
    /// A fleet of `tenants` on `devices` of 256 MiB each, under
    /// [`FleetConfig::new`]'s defaults.
    pub fn new(tenants: usize, devices: usize) -> Self {
        FleetRunConfig {
            fleet: FleetConfig::new(tenants, devices),
            capacity: 256 << 20,
        }
    }

    /// Scales per-device capacity by `scale` (the `--scale` axis of the
    /// fleet binary; larger devices mean larger tenant regions).
    pub fn with_scale(mut self, scale: u64) -> Self {
        self.capacity = (256 << 20) * scale.max(1);
        self
    }
}

/// The jitter-seed base every fleet-pool device is built with.
fn device_seed(index: usize) -> u64 {
    0xF_1EE7_0000 + index as u64
}

/// Builds the experiment's device pool: `devices` eSSDs of `capacity`
/// bytes, alternating the AWS io2 and Alibaba PL3 presets so the pool
/// mixes both throttle behaviours, each uniquely named (the checkpoint
/// seam validates names on thaw) and deterministically seeded.
pub fn build_pool(config: &FleetRunConfig) -> Vec<FleetDevice> {
    (0..config.fleet.devices)
        .map(|i| {
            let preset = if i % 2 == 0 {
                EssdConfig::aws_io2(config.capacity)
            } else {
                EssdConfig::alibaba_pl3(config.capacity)
            };
            let essd = preset
                .with_name(format!("fleet-essd-{i}"))
                .with_seed(device_seed(i));
            Box::new(Essd::new(essd)) as FleetDevice
        })
        .collect()
}

/// A stable identity for a fleet run's exact definition: the CRC-32 of
/// the config's canonical wire form. Resuming a checkpoint under a
/// different fleet definition would silently corrupt the continuation;
/// the fingerprint makes it a detectable mismatch instead.
pub fn fleet_fingerprint(config: &FleetRunConfig) -> u32 {
    let mut w = Encoder::new();
    w.put_u64(config.fleet.tenants as u64);
    w.put_u64(config.fleet.devices as u64);
    w.put_u64(config.fleet.mix.steady as u64);
    w.put_u64(config.fleet.mix.diurnal as u64);
    w.put_u64(config.fleet.mix.bursty as u64);
    config.fleet.duration.encode(&mut w);
    w.put_u64(config.fleet.epochs as u64);
    w.put_u32(config.fleet.io_size);
    w.put_u64(config.fleet.seed);
    match config.fleet.rebalance {
        Some(policy) => {
            w.put_bool(true);
            w.put_f64(policy.hot_ratio);
            w.put_u64(policy.max_moves as u64);
        }
        None => w.put_bool(false),
    }
    w.put_u64(config.capacity);
    uc_persist::crc32(w.as_bytes())
}

/// One flagged tenant or epoch.
#[derive(Debug, Clone, PartialEq)]
pub enum FleetFinding {
    /// A tenant's mean latency exceeded the fleet mean by this factor.
    NoisyNeighborVictim {
        /// The suffering tenant.
        tenant: u32,
        /// `tenant mean / fleet mean-of-means`.
        factor: f64,
    },
    /// An epoch's Jain fairness index fell below the floor.
    FairnessCollapse {
        /// The offending epoch (0-based).
        epoch: usize,
        /// The epoch's index.
        fairness: f64,
    },
}

/// The contract verdict of a fleet experiment.
#[derive(Debug, Clone)]
pub struct FleetContractReport {
    /// The underlying fleet report.
    pub report: FleetReport,
    /// Every flagged tenant and epoch, tenants first (ascending id),
    /// then epochs in order.
    pub findings: Vec<FleetFinding>,
    /// Telemetry captured at the end of the run: the fleet's metric
    /// snapshot (including each pool device's counters) plus the flight
    /// recorder's trailing events. Byte-identical across same-seed runs.
    pub obs: ObsReport,
}

impl FleetContractReport {
    /// `true` if nothing was flagged *and* the run recorded no contract
    /// violations (tenant conservation, ledger conservation, queue-head
    /// monotonicity).
    pub fn clean(&self) -> bool {
        self.findings.is_empty() && self.report.violations.is_empty()
    }
}

/// Evaluates the fleet-level contract checks over one run's report.
///
/// Deterministic: the same report always produces the same findings (the
/// CI fleet smoke diffs two full runs byte for byte).
pub fn evaluate(report: FleetReport) -> FleetContractReport {
    let mut findings = Vec::new();
    let base = report.mean_of_tenant_means();
    if base > 0.0 {
        for tenant in &report.per_tenant {
            let mean = tenant.mean_latency.as_nanos() as f64;
            let factor = mean / base;
            if factor > FLEET_TENANT_LATENCY_BLOWUP {
                findings.push(FleetFinding::NoisyNeighborVictim {
                    tenant: tenant.id,
                    factor,
                });
            }
        }
    }
    for (epoch, &fairness) in report.fairness_per_epoch.iter().enumerate() {
        if fairness < FLEET_MIN_FAIRNESS {
            findings.push(FleetFinding::FairnessCollapse { epoch, fairness });
        }
    }
    FleetContractReport {
        report,
        findings,
        obs: ObsReport::default(),
    }
}

/// Runs the fleet experiment in one piece (no durability) and evaluates
/// the contract.
///
/// # Errors
///
/// Propagates the first device [`IoError`] (a placement/geometry bug;
/// healthy fleets never hit one).
pub fn run(config: &FleetRunConfig) -> Result<FleetContractReport, IoError> {
    let mut sim = FleetSim::new(config.fleet.clone(), build_pool(config));
    let report = sim.run()?;
    let obs = sim.obs_report();
    let mut verdict = evaluate(report);
    verdict.obs = obs;
    Ok(verdict)
}

/// A frozen fleet between epochs: the simulation snapshot plus every
/// device's complete hidden state, pinned to one fleet definition by the
/// fingerprint.
#[derive(Debug, Clone)]
pub struct FleetCheckpoint {
    /// Fingerprint of the config this run executes
    /// ([`fleet_fingerprint`]).
    pub fingerprint: u32,
    /// The fleet's resumable state.
    pub snapshot: FleetSnapshot,
    /// One checkpoint per pool device, in pool order.
    pub devices: Vec<DeviceCheckpoint>,
}

impl FleetCheckpoint {
    /// The on-disk record kind tag of a serialized fleet checkpoint.
    /// Bump the suffix when the layout changes.
    pub const RECORD_KIND: &'static str = "uc.fleet.v1";

    /// Appends this checkpoint's wire form to `w`.
    ///
    /// # Errors
    ///
    /// Returns [`PersistError::NotPersistent`] if any embedded device
    /// checkpoint carries no persistence codec (pool-built devices
    /// always do).
    pub fn encode_into(&self, w: &mut Encoder) -> Result<(), PersistError> {
        w.put_u32(self.fingerprint);
        self.snapshot.encode(w);
        w.put_u64(self.devices.len() as u64);
        for device in &self.devices {
            device.encode_into(w)?;
        }
        Ok(())
    }

    /// Parses a checkpoint back out of its wire form, thawing the device
    /// payloads through the roster's codec registry.
    ///
    /// # Errors
    ///
    /// Returns a typed [`DecodeError`] on any malformed input.
    pub fn decode_from(r: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        let fingerprint = r.get_u32()?;
        let snapshot = FleetSnapshot::decode(r)?;
        let count = r.get_u64()? as usize;
        let codecs = payload_codecs();
        let mut devices = Vec::with_capacity(count.min(1024));
        for _ in 0..count {
            devices.push(DeviceCheckpoint::decode_from(r, &codecs)?);
        }
        if devices.len() != snapshot.queue_heads.len() {
            return Err(DecodeError::InvalidValue {
                what: "FleetCheckpoint device count",
            });
        }
        Ok(FleetCheckpoint {
            fingerprint,
            snapshot,
            devices,
        })
    }

    /// Writes this checkpoint to `path` as a self-describing record file
    /// (atomically: temp file + rename).
    ///
    /// # Errors
    ///
    /// Returns [`PersistError`] on codec-less payloads or filesystem
    /// failures.
    pub fn save_to(&self, path: &Path) -> Result<(), PersistError> {
        let mut w = Encoder::new();
        self.encode_into(&mut w)?;
        uc_persist::write_record_file(path, Self::RECORD_KIND, w.as_bytes())?;
        Ok(())
    }

    /// Reads a checkpoint back from a record file written by
    /// [`FleetCheckpoint::save_to`].
    ///
    /// # Errors
    ///
    /// Every failure is a typed [`DecodeError`], never a panic.
    pub fn load_from(path: &Path) -> Result<Self, DecodeError> {
        let (kind, payload) = uc_persist::read_record_file(path)?;
        if kind != Self::RECORD_KIND {
            return Err(DecodeError::UnknownKind { found: kind });
        }
        let mut r = Decoder::new(&payload);
        let checkpoint = Self::decode_from(&mut r)?;
        r.finish()?;
        Ok(checkpoint)
    }
}

/// Errors of the durable fleet runner.
#[derive(Debug)]
pub enum FleetRunError {
    /// A pool device reported an I/O error.
    Io(IoError),
    /// Writing an epoch-boundary checkpoint to disk failed.
    Save(PersistError),
    /// A checkpoint loaded from disk does not thaw onto the devices this
    /// experiment builds.
    Restore(CheckpointError),
}

impl std::fmt::Display for FleetRunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FleetRunError::Io(e) => write!(f, "fleet i/o error: {e}"),
            FleetRunError::Save(e) => write!(f, "persisting fleet checkpoint: {e}"),
            FleetRunError::Restore(e) => write!(f, "restoring fleet checkpoint: {e}"),
        }
    }
}

impl std::error::Error for FleetRunError {}

impl From<IoError> for FleetRunError {
    fn from(e: IoError) -> Self {
        FleetRunError::Io(e)
    }
}

/// A directory holding one durable fleet checkpoint (`fleet.ckpt`),
/// atomically overwritten at every epoch boundary, so the newest
/// boundary is always the only one on disk and a crash can never leave a
/// torn record (temp file + rename).
#[derive(Debug, Clone)]
pub struct FleetStore {
    dir: PathBuf,
    kill_after: Option<u64>,
    saves: u64,
}

impl FleetStore {
    /// Opens (creating if needed) a checkpoint directory.
    ///
    /// # Errors
    ///
    /// Propagates the filesystem error if the directory cannot be
    /// created.
    pub fn create(dir: impl Into<PathBuf>) -> std::io::Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(FleetStore {
            dir,
            kill_after: None,
            saves: 0,
        })
    }

    /// Crash-testing hook: terminate the *process* (exit code 42)
    /// immediately after the `n`-th successful checkpoint save — the
    /// same deterministic stand-in for `kill -9` the fig3 and trace
    /// crash-resume gates use. Never set in normal operation.
    pub fn with_kill_after(mut self, saves: u64) -> Self {
        self.kill_after = Some(saves);
        self
    }

    /// Checkpoints saved through this store so far.
    pub fn saves(&self) -> u64 {
        self.saves
    }

    /// The checkpoint file path.
    pub fn checkpoint_path(&self) -> PathBuf {
        self.dir.join("fleet.ckpt")
    }

    /// Where a crash-hook telemetry dump lands (`crash.obs`, a
    /// `uc.obs.v1` record next to the checkpoint).
    pub fn obs_dump_path(&self) -> PathBuf {
        self.dir.join("crash.obs")
    }

    /// `true` if the *next* successful save will trip the simulated
    /// crash, i.e. the caller's last chance to dump telemetry.
    pub fn kill_imminent(&self) -> bool {
        self.kill_after.is_some_and(|limit| self.saves + 1 >= limit)
    }

    /// Persists one epoch-boundary checkpoint (atomically overwriting
    /// the previous boundary), returning its path.
    ///
    /// # Errors
    ///
    /// Propagates [`PersistError`] from the underlying save.
    pub fn save(&mut self, checkpoint: &FleetCheckpoint) -> Result<PathBuf, PersistError> {
        let path = self.checkpoint_path();
        checkpoint.save_to(&path)?;
        self.saves += 1;
        if let Some(limit) = self.kill_after {
            if self.saves >= limit {
                eprintln!(
                    "fleet: simulated crash after {} checkpoint save(s) \
                     (--kill-after {limit})",
                    self.saves
                );
                std::process::exit(42);
            }
        }
        Ok(path)
    }

    /// Loads the checkpoint if it exists, decodes cleanly and carries
    /// `fingerprint`; anything else is reported on stderr and the fleet
    /// starts fresh.
    pub fn load_matching(&self, fingerprint: u32) -> Option<FleetCheckpoint> {
        let path = self.checkpoint_path();
        if !path.exists() {
            return None;
        }
        match FleetCheckpoint::load_from(&path) {
            Ok(checkpoint) if checkpoint.fingerprint == fingerprint => Some(checkpoint),
            Ok(_) => {
                eprintln!(
                    "fleet: ignoring {} (taken under a different fleet \
                     definition); starting fresh",
                    path.display()
                );
                None
            }
            Err(e) => {
                eprintln!("fleet: ignoring {}: {e}", path.display());
                None
            }
        }
    }
}

/// Runs the fleet experiment durably: every epoch boundary persists a
/// [`FleetCheckpoint`] into `store`, and with `resume` the run continues
/// from the on-disk boundary instead of from scratch.
///
/// Durability does not perturb the simulation: a run killed at any
/// boundary and resumed from disk produces results **byte-identical** to
/// an uninterrupted run (the fleet CI smoke pins this end to end).
///
/// A resumed checkpoint must carry the current config's fingerprint; a
/// stale one is reported on stderr and the fleet starts fresh.
///
/// # Errors
///
/// Returns the first I/O error, checkpoint-save failure, or restore
/// mismatch the run hits.
pub fn run_durable(
    config: &FleetRunConfig,
    store: &mut FleetStore,
    resume: bool,
) -> Result<FleetContractReport, FleetRunError> {
    let fingerprint = fleet_fingerprint(config);
    let from_disk = if resume {
        store.load_matching(fingerprint)
    } else {
        None
    };
    let mut sim = match from_disk {
        Some(checkpoint) => {
            eprintln!(
                "fleet: resuming from epoch boundary {}/{}",
                checkpoint.snapshot.epoch, config.fleet.epochs
            );
            let mut pool = build_pool(config);
            for (device, frozen) in pool.iter_mut().zip(checkpoint.devices) {
                device
                    .restore_from(frozen)
                    .map_err(FleetRunError::Restore)?;
            }
            FleetSim::resume(config.fleet.clone(), pool, &checkpoint.snapshot)
        }
        None => FleetSim::new(config.fleet.clone(), build_pool(config)),
    };
    while !sim.is_finished() {
        sim.run_epoch()?;
        let checkpoint = FleetCheckpoint {
            fingerprint,
            snapshot: sim.snapshot(),
            devices: sim.checkpoint_devices(),
        };
        // The crash hook kills the process inside `save`; flush the
        // flight recorder first so the dump names what the fleet was
        // doing at the boundary that "crashed".
        if store.kill_imminent() {
            let _ = sim.obs_report().save_to(&store.obs_dump_path());
        }
        store.save(&checkpoint).map_err(FleetRunError::Save)?;
    }
    let obs = sim.obs_report();
    let mut verdict = evaluate(sim.report());
    verdict.obs = obs;
    Ok(verdict)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::render_fleet_report;
    use uc_fleet::RebalancePolicy;
    use uc_sim::SimDuration;

    fn small() -> FleetRunConfig {
        let mut config = FleetRunConfig::new(12, 2);
        config.capacity = 64 << 20;
        config.fleet = config
            .fleet
            .with_duration(SimDuration::from_millis(20))
            .with_rebalance(RebalancePolicy::default());
        config
    }

    fn tempdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join("uc-fleet-exp-tests")
            .join(format!("{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn two_runs_render_identically() {
        let config = small();
        let a = render_fleet_report(&run(&config).unwrap());
        let b = render_fleet_report(&run(&config).unwrap());
        assert_eq!(a, b);
        assert!(a.contains("fairness"), "{a}");
    }

    #[test]
    fn durable_run_matches_plain_run_and_resumes_mid_flight() {
        let config = small();
        let plain = run(&config).unwrap();
        let dir = tempdir("durable");

        let mut store = FleetStore::create(&dir).unwrap();
        let durable = run_durable(&config, &mut store, false).unwrap();
        assert_eq!(store.saves(), config.fleet.epochs as u64);
        assert_eq!(render_fleet_report(&plain), render_fleet_report(&durable));
        // Telemetry is observational state: an uninterrupted durable run
        // sees the same history as a plain run, byte for byte.
        assert_eq!(plain.obs.render_text(), durable.obs.render_text());

        // "Kill" after two epochs: run a fresh sim two epochs, persist,
        // then resume from disk and finish.
        let mut partial = FleetSim::new(config.fleet.clone(), build_pool(&config));
        partial.run_epoch().unwrap();
        partial.run_epoch().unwrap();
        let mut store = FleetStore::create(&dir).unwrap();
        store
            .save(&FleetCheckpoint {
                fingerprint: fleet_fingerprint(&config),
                snapshot: partial.snapshot(),
                devices: partial.checkpoint_devices(),
            })
            .unwrap();
        drop(partial);

        let resumed = run_durable(&config, &mut store, true).unwrap();
        assert_eq!(render_fleet_report(&plain), render_fleet_report(&resumed));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_fingerprint_starts_fresh() {
        let config = small();
        let dir = tempdir("stale");
        let mut store = FleetStore::create(&dir).unwrap();
        let mut partial = FleetSim::new(config.fleet.clone(), build_pool(&config));
        partial.run_epoch().unwrap();
        store
            .save(&FleetCheckpoint {
                fingerprint: fleet_fingerprint(&config) ^ 1, // wrong identity
                snapshot: partial.snapshot(),
                devices: partial.checkpoint_devices(),
            })
            .unwrap();
        let resumed = run_durable(&config, &mut store, true).unwrap();
        let plain = run(&config).unwrap();
        assert_eq!(render_fleet_report(&plain), render_fleet_report(&resumed));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_file_roundtrips_and_rejects_corruption() {
        let config = small();
        let dir = tempdir("roundtrip");
        let mut store = FleetStore::create(&dir).unwrap();
        let mut sim = FleetSim::new(config.fleet.clone(), build_pool(&config));
        sim.run_epoch().unwrap();
        let checkpoint = FleetCheckpoint {
            fingerprint: fleet_fingerprint(&config),
            snapshot: sim.snapshot(),
            devices: sim.checkpoint_devices(),
        };
        let path = store.save(&checkpoint).unwrap();

        let loaded = FleetCheckpoint::load_from(&path).unwrap();
        assert_eq!(loaded.fingerprint, checkpoint.fingerprint);
        assert_eq!(loaded.snapshot.epoch, 1);
        assert_eq!(loaded.devices.len(), 2);

        let good = std::fs::read(&path).unwrap();
        let mut flipped = good.clone();
        let mid = flipped.len() / 2;
        flipped[mid] ^= 0x08;
        std::fs::write(&path, &flipped).unwrap();
        assert!(FleetCheckpoint::load_from(&path).is_err());
        assert!(store.load_matching(checkpoint.fingerprint).is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn run_carries_a_populated_obs_report() {
        let config = small();
        let verdict = run(&config).unwrap();
        assert!(
            verdict.obs.snapshot.counter("fleet.ios").unwrap_or(0) > 0,
            "obs snapshot should carry fleet counters"
        );
        assert!(
            verdict
                .obs
                .snapshot
                .counter("fleet.device0.cluster.bytes_written")
                .unwrap_or(0)
                > 0,
            "obs snapshot should reach into pool devices"
        );
    }

    #[test]
    fn kill_imminent_fires_exactly_before_the_fatal_save() {
        let dir = tempdir("imminent");
        let store = FleetStore::create(&dir).unwrap().with_kill_after(2);
        // saves == 0: the next save is #1, the crash fires after #2.
        assert!(!store.kill_imminent());
        let mut armed = store.clone();
        armed.saves = 1; // next save is the killing one
        assert!(armed.kill_imminent());
        let unarmed = FleetStore::create(&dir).unwrap();
        assert!(!unarmed.kill_imminent());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn evaluation_flags_victims_and_collapses() {
        let config = small();
        let mut report = run(&config).unwrap().report;
        // Synthesize a pathological report on top of a real one.
        report.fairness_per_epoch[0] = 0.3;
        let fleet_mean = report.mean_of_tenant_means();
        report.per_tenant[0].mean_latency = SimDuration::from_nanos((fleet_mean * 10.0) as u64);
        let verdict = evaluate(report);
        assert!(!verdict.clean());
        assert!(verdict
            .findings
            .iter()
            .any(|f| matches!(f, FleetFinding::NoisyNeighborVictim { tenant: 0, .. })));
        assert!(verdict
            .findings
            .iter()
            .any(|f| matches!(f, FleetFinding::FairnessCollapse { epoch: 0, .. })));
    }
}
