//! Figure 5: throughput under mixed read/write workloads.

use crate::devices::{DeviceKind, DeviceRoster};
use crate::experiments::Executor;
use uc_blockdev::{DeviceFactory, IoError};
use uc_workload::{run_job, AccessPattern, JobSpec};

/// Workload parameters for the Figure 5 mix sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig5Config {
    /// Write ratios to sweep (paper: 0 % to 100 %).
    pub write_ratios: Vec<f64>,
    /// I/O size in bytes (large, to reach the bandwidth envelope).
    pub io_size: u32,
    /// Queue depth.
    pub queue_depth: usize,
    /// I/Os per measurement cell.
    pub ios_per_cell: u64,
}

impl Fig5Config {
    /// The paper's sweep: write ratio 0..100 in steps of 10, 128 KiB I/Os
    /// at QD 32.
    pub fn paper() -> Self {
        Fig5Config {
            write_ratios: (0..=10).map(|i| i as f64 / 10.0).collect(),
            io_size: 128 << 10,
            queue_depth: 32,
            ios_per_cell: 6_000,
        }
    }

    /// A reduced sweep for tests and smoke runs.
    pub fn quick() -> Self {
        Fig5Config {
            write_ratios: vec![0.0, 0.3, 0.5, 0.7, 1.0],
            ios_per_cell: 1_500,
            ..Fig5Config::paper()
        }
    }
}

/// Figure 5 results for one device.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig5Result {
    /// Which device was measured.
    pub device: DeviceKind,
    /// The write ratios swept.
    pub write_ratios: Vec<f64>,
    /// Total (read + write) throughput at each ratio, GB/s (solid lines).
    pub total_gbps: Vec<f64>,
    /// Write-only throughput at each ratio, GB/s (dashed lines).
    pub write_gbps: Vec<f64>,
}

impl Fig5Result {
    /// Coefficient of variation of the total throughput across ratios —
    /// near zero for a budget-clamped device (Observation 4).
    pub fn total_cv(&self) -> f64 {
        uc_metrics::SummaryStats::from_samples(&self.total_gbps).cv()
    }

    /// Peak-to-trough spread of the total throughput relative to its mean.
    pub fn total_spread(&self) -> f64 {
        uc_metrics::SummaryStats::from_samples(&self.total_gbps).relative_spread()
    }

    /// Mean total throughput across ratios, GB/s.
    pub fn mean_total_gbps(&self) -> f64 {
        uc_metrics::SummaryStats::from_samples(&self.total_gbps).mean()
    }
}

/// Runs the Figure 5 sweep on `kind` on the default (per-core) executor.
///
/// Ratio 0 runs pure random reads, ratio 1 pure random writes, matching
/// the paper's endpoints.
///
/// # Errors
///
/// Propagates the first I/O error from the device.
pub fn run(
    roster: &DeviceRoster,
    kind: DeviceKind,
    cfg: &Fig5Config,
) -> Result<Fig5Result, IoError> {
    run_with(roster, kind, cfg, &Executor::from_env())
}

/// Runs the Figure 5 sweep on `kind`, fanning the per-ratio cells out on
/// `exec`. Each cell builds its own seeded device through the roster's
/// [`DeviceFactory`] seam, so results are byte-identical for any executor
/// width.
///
/// # Errors
///
/// Propagates the first I/O error in deterministic (cell-order) priority
/// (the whole sweep still runs first; failing cells abort at their first
/// invalid submission, so a doomed sweep stays cheap).
pub fn run_with(
    roster: &DeviceRoster,
    kind: DeviceKind,
    cfg: &Fig5Config,
    exec: &Executor,
) -> Result<Fig5Result, IoError> {
    let cells: Vec<_> = cfg
        .write_ratios
        .iter()
        .enumerate()
        .map(|(i, &ratio)| {
            move || {
                let pattern = if ratio <= 0.0 {
                    AccessPattern::RandRead
                } else if ratio >= 1.0 {
                    AccessPattern::RandWrite
                } else {
                    AccessPattern::Mixed {
                        write_ratio: ratio,
                        random: true,
                    }
                };
                let mut dev = roster.fresh(kind, 0xF1650000 + i as u64);
                // Keep the written volume under half the capacity so device
                // GC stays out of the mix sweep (as in the paper's short
                // FIO runs).
                let write_frac = ratio.max(0.1);
                let max_ios = ((roster.capacity_of(kind) / 2) as f64
                    / (cfg.io_size as f64 * write_frac)) as u64;
                let spec = JobSpec::new(pattern, cfg.io_size, cfg.queue_depth)
                    .with_io_limit(cfg.ios_per_cell.min(max_ios.max(200)))
                    .with_seed(0x55 + i as u64);
                let report = run_job(dev.as_mut(), &spec)?;
                let secs = report.finished_at.as_secs_f64();
                let write = if secs > 0.0 {
                    report.write_throughput.total_bytes() as f64 / 1e9 / secs
                } else {
                    0.0
                };
                Ok::<(f64, f64), IoError>((report.throughput_gbps(), write))
            }
        })
        .collect();
    let measured: Result<Vec<(f64, f64)>, IoError> = exec.run(cells).into_iter().collect();
    let (total, write) = measured?.into_iter().unzip();
    Ok(Fig5Result {
        device: kind,
        write_ratios: cfg.write_ratios.clone(),
        total_gbps: total,
        write_gbps: write,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn essd_total_is_flat_at_budget() {
        let roster = DeviceRoster::with_capacities(128 << 20, 128 << 20);
        let cfg = Fig5Config {
            write_ratios: vec![0.0, 0.5, 1.0],
            ios_per_cell: 1_000,
            ..Fig5Config::paper()
        };
        let r = run(&roster, DeviceKind::Essd1, &cfg).unwrap();
        assert!(
            r.total_cv() < 0.1,
            "budget-clamped device should be flat, cv {}",
            r.total_cv()
        );
        // Write share grows with the ratio.
        assert!(r.write_gbps[0] < 0.05);
        assert!(r.write_gbps[2] > r.write_gbps[1]);
    }

    #[test]
    fn ssd_total_varies_with_mix() {
        let roster = DeviceRoster::with_capacities(128 << 20, 128 << 20);
        let cfg = Fig5Config {
            write_ratios: vec![0.0, 0.5, 1.0],
            ios_per_cell: 2_500,
            ..Fig5Config::paper()
        };
        let r = run(&roster, DeviceKind::LocalSsd, &cfg).unwrap();
        assert!(
            r.total_spread() > 0.15,
            "local SSD throughput should depend on the mix, spread {}",
            r.total_spread()
        );
    }
}
