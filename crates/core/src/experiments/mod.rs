//! Experiment runners for every table and figure of the paper.
//!
//! Each submodule regenerates one artifact:
//!
//! | Module   | Paper artifact | What it measures |
//! |----------|----------------|------------------|
//! | [`table1`] | Table I      | max bandwidth, max IOPS, capacity per device |
//! | [`fig2`]   | Figure 2     | avg/P99.9 latency grids over pattern × size × depth |
//! | [`fig3`]   | Figure 3     | throughput timeline under 3× capacity of random writes |
//! | [`fig4`]   | Figure 4     | random- vs sequential-write throughput and gain |
//! | [`fig5`]   | Figure 5     | throughput across read/write mix ratios |
//!
//! Every runner builds a *fresh* device per measurement cell (no state
//! leakage between cells) and is deterministic for a given configuration.

pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod table1;

pub use fig2::{Fig2Config, Fig2Result, LatencyCell, PatternGrid};
pub use fig3::{Fig3Config, Fig3Result};
pub use fig4::{Fig4Config, Fig4Result};
pub use fig5::{Fig5Config, Fig5Result};
pub use table1::{run as run_table1, Table1Row};
