//! Experiment runners for every table and figure of the paper.
//!
//! Each submodule regenerates one artifact:
//!
//! | Module   | Paper artifact | What it measures |
//! |----------|----------------|------------------|
//! | [`table1`] | Table I      | max bandwidth, max IOPS, capacity per device |
//! | [`fig2`]   | Figure 2     | avg/P99.9 latency grids over pattern × size × depth |
//! | [`fig3`]   | Figure 3     | throughput timeline under 3× capacity of random writes |
//! | [`fig4`]   | Figure 4     | random- vs sequential-write throughput and gain |
//! | [`fig5`]   | Figure 5     | throughput across read/write mix ratios |
//!
//! Every runner builds a *fresh* device per measurement cell (no state
//! leakage between cells) and is deterministic for a given configuration.
//!
//! The grid runners (`table1`, `fig2`, `fig4`, `fig5`) decompose their
//! sweeps into self-contained cells and fan them out on the shared
//! [`Executor`] — by default one worker per core (`UC_THREADS` overrides).
//! Because each cell builds its own seeded device through the
//! [`DeviceFactory`](uc_blockdev::DeviceFactory) seam and carries its own
//! virtual clock, parallel and sequential runs are byte-identical; every
//! runner also exposes a `run_with` variant taking an explicit executor.
//!
//! `fig3` is different: each device's endurance run is one continuous
//! virtual timeline, so instead of independent cells it is sliced into
//! **resumable segments** through the checkpoint seam
//! ([`CheckpointDevice`](uc_blockdev::CheckpointDevice)) — see
//! [`fig3::run_pipelined`], which pipelines the per-device segment chains
//! across workers ([`Executor::run_chains`]) with byte-identical results
//! at any thread count.
//!
//! [`trace`] goes beyond the paper's own artifacts: it replays a
//! captured or generated block-I/O trace (see the `uc-trace` crate)
//! against every device and evaluates the contract phase by phase,
//! using the same resumable-chain machinery as `fig3` (and the same
//! determinism bar).
//!
//! [`fleet`] scales the contract out: hundreds of tenants multiplexed
//! onto a shared eSSD pool (the `uc-fleet` crate), with per-tenant
//! interference findings, epoch fairness, checkpoint-seam rebalancing,
//! and a durable epoch-boundary checkpoint matching fig3's kill-resume
//! determinism bar.

pub mod executor;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fleet;
pub mod table1;
pub mod trace;

pub use executor::Executor;
pub use fig2::{Fig2Config, Fig2Result, LatencyCell, PatternGrid};
pub use fig3::{CheckpointDir, DurableError, Fig3Checkpoint, Fig3Config, Fig3Result, SegmentedRun};
pub use fig4::{Fig4Config, Fig4Result};
pub use fig5::{Fig5Config, Fig5Result};
pub use fleet::{
    FleetCheckpoint, FleetContractReport, FleetFinding, FleetRunConfig, FleetRunError, FleetStore,
};
pub use table1::{run as run_table1, Table1Row};
pub use trace::{
    PhaseStat, TraceContractReport, TraceRun, TraceRunCheckpoint, TraceRunConfig, TraceRunError,
    TraceRunResult, TraceStore, TraceViolation, TraceViolationKind,
};
