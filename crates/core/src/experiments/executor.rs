//! The shared cell executor: fans independent measurement cells out
//! across worker threads.
//!
//! Every figure runner decomposes its sweep into self-contained *cells* —
//! closures that build their own fresh device (through the
//! [`DeviceFactory`](uc_blockdev::DeviceFactory) seam) and return one
//! measurement. Cells never share device state, so they are embarrassingly
//! parallel; the executor schedules them over a scoped thread pool and
//! returns results **in the cells' original order**, which keeps parallel
//! runs byte-identical to sequential ones (each cell's virtual-time
//! schedule is fully determined by its own seed and spec).
//!
//! # Example
//!
//! ```
//! use uc_core::experiments::Executor;
//!
//! let cells: Vec<_> = (0..8).map(|i| move || i * i).collect();
//! let parallel = Executor::with_threads(4).run(cells.clone());
//! let sequential = Executor::sequential().run(cells);
//! assert_eq!(parallel, sequential);
//! ```

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Runs independent jobs across a fixed number of worker threads,
/// preserving result order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Executor {
    threads: usize,
}

impl Executor {
    /// An executor that runs every cell inline on the calling thread.
    pub fn sequential() -> Self {
        Executor { threads: 1 }
    }

    /// An executor with exactly `threads` workers (clamped to at least 1).
    pub fn with_threads(threads: usize) -> Self {
        Executor {
            threads: threads.max(1),
        }
    }

    /// The default executor: one worker per available core, overridable
    /// with the `UC_THREADS` environment variable (`UC_THREADS=1` forces
    /// the sequential path).
    pub fn from_env() -> Self {
        let threads = std::env::var("UC_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            });
        Executor::with_threads(threads)
    }

    /// Number of worker threads this executor uses.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs every cell and returns their results in the input order.
    ///
    /// Scheduling is work-stealing over a shared index, so thread count
    /// and interleaving never affect *which* work a cell does — only
    /// where it runs. A panicking cell propagates the panic to the caller
    /// once the scope joins.
    pub fn run<F, R>(&self, cells: Vec<F>) -> Vec<R>
    where
        F: FnOnce() -> R + Send,
        R: Send,
    {
        if self.threads <= 1 || cells.len() <= 1 {
            return cells.into_iter().map(|cell| cell()).collect();
        }
        let workers = self.threads.min(cells.len());
        let jobs: Vec<Mutex<Option<F>>> = cells.into_iter().map(|c| Mutex::new(Some(c))).collect();
        let slots: Vec<Mutex<Option<R>>> = jobs.iter().map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let index = next.fetch_add(1, Ordering::Relaxed);
                    let Some(job) = jobs.get(index) else { break };
                    let cell = job
                        .lock()
                        .expect("job mutex")
                        .take()
                        .expect("cell taken once");
                    let result = cell();
                    *slots[index].lock().expect("slot mutex") = Some(result);
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("slot mutex")
                    .expect("every cell ran")
            })
            .collect()
    }
}

impl Default for Executor {
    fn default() -> Self {
        Executor::from_env()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order_at_any_width() {
        let input: Vec<usize> = (0..37).collect();
        let expected: Vec<usize> = input.iter().map(|i| i * 3).collect();
        for threads in [1, 2, 4, 16, 64] {
            let cells: Vec<_> = input.iter().map(|&i| move || i * 3).collect();
            assert_eq!(Executor::with_threads(threads).run(cells), expected);
        }
    }

    #[test]
    fn handles_empty_and_single_inputs() {
        let none: Vec<fn() -> u32> = Vec::new();
        assert!(Executor::with_threads(8).run(none).is_empty());
        assert_eq!(Executor::with_threads(8).run(vec![|| 7u32]), vec![7]);
    }

    #[test]
    fn workers_actually_run_concurrently_when_asked() {
        // With 4 workers and 4 cells that all wait on the same barrier,
        // completion is only possible if they run at once.
        let barrier = std::sync::Barrier::new(4);
        let cells: Vec<_> = (0..4)
            .map(|i| {
                let barrier = &barrier;
                move || {
                    barrier.wait();
                    i
                }
            })
            .collect();
        assert_eq!(Executor::with_threads(4).run(cells), vec![0, 1, 2, 3]);
    }

    #[test]
    fn threads_clamp_and_env_default() {
        assert_eq!(Executor::with_threads(0).threads(), 1);
        assert!(Executor::from_env().threads() >= 1);
        assert_eq!(Executor::sequential().threads(), 1);
    }
}
