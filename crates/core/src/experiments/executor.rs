//! The shared cell executor: fans independent measurement cells out
//! across worker threads.
//!
//! Every figure runner decomposes its sweep into self-contained *cells* —
//! closures that build their own fresh device (through the
//! [`DeviceFactory`](uc_blockdev::DeviceFactory) seam) and return one
//! measurement. Cells never share device state, so they are embarrassingly
//! parallel; the executor schedules them over a scoped thread pool and
//! returns results **in the cells' original order**, which keeps parallel
//! runs byte-identical to sequential ones (each cell's virtual-time
//! schedule is fully determined by its own seed and spec).
//!
//! # Example
//!
//! ```
//! use uc_core::experiments::Executor;
//!
//! let cells: Vec<_> = (0..8).map(|i| move || i * i).collect();
//! let parallel = Executor::with_threads(4).run(cells.clone());
//! let sequential = Executor::sequential().run(cells);
//! assert_eq!(parallel, sequential);
//! ```

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};

/// Runs independent jobs across a fixed number of worker threads,
/// preserving result order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Executor {
    threads: usize,
}

impl Executor {
    /// An executor that runs every cell inline on the calling thread.
    pub fn sequential() -> Self {
        Executor { threads: 1 }
    }

    /// An executor with exactly `threads` workers (clamped to at least 1).
    pub fn with_threads(threads: usize) -> Self {
        Executor {
            threads: threads.max(1),
        }
    }

    /// The default executor: one worker per available core, overridable
    /// with the `UC_THREADS` environment variable (`UC_THREADS=1` forces
    /// the sequential path).
    pub fn from_env() -> Self {
        let threads = std::env::var("UC_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            });
        Executor::with_threads(threads)
    }

    /// Number of worker threads this executor uses.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs every cell and returns their results in the input order.
    ///
    /// Scheduling is work-stealing over a shared index, so thread count
    /// and interleaving never affect *which* work a cell does — only
    /// where it runs. A panicking cell propagates the panic to the caller
    /// once the scope joins.
    pub fn run<F, R>(&self, cells: Vec<F>) -> Vec<R>
    where
        F: FnOnce() -> R + Send,
        R: Send,
    {
        if self.threads <= 1 || cells.len() <= 1 {
            return cells.into_iter().map(|cell| cell()).collect();
        }
        let workers = self.threads.min(cells.len());
        let jobs: Vec<Mutex<Option<F>>> = cells.into_iter().map(|c| Mutex::new(Some(c))).collect();
        let slots: Vec<Mutex<Option<R>>> = jobs.iter().map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let index = next.fetch_add(1, Ordering::Relaxed);
                    let Some(job) = jobs.get(index) else { break };
                    let cell = job
                        .lock()
                        .expect("job mutex")
                        .take()
                        .expect("cell taken once");
                    let result = cell();
                    *slots[index].lock().expect("slot mutex") = Some(result);
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("slot mutex")
                    .expect("every cell ran")
            })
            .collect()
    }
}

/// One chain in [`Executor::run_chains`]: the evolving state plus the
/// stages still to run on it.
struct Chain<S, F> {
    state: Option<S>,
    stages: VecDeque<F>,
}

/// Shared scheduler state for [`Executor::run_chains`].
struct ChainSched {
    ready: VecDeque<usize>,
    finished: usize,
    aborted: bool,
}

impl Executor {
    /// Runs several independent *chains* of stages, pipelined across the
    /// workers, and returns each chain's final state in input order.
    ///
    /// A chain is `(initial_state, stages)`: stage `k` consumes the state
    /// stage `k-1` produced, so stages of one chain are strictly
    /// sequential — but stages of *different* chains interleave freely.
    /// This is the dataflow of the segmented Figure 3 endurance run:
    /// segment `k` of device A executes concurrently with segment `k-1`
    /// of device B, each feeding its checkpoint forward. Scheduling is
    /// work-conserving at stage granularity (a worker always picks up any
    /// ready chain), so wall clock is bounded by
    /// `max(longest chain, total stage work / workers)` instead of
    /// whole-chains-per-worker — and, because each chain's stages run in
    /// a fixed order on state only they touch, results are identical at
    /// any thread count.
    ///
    /// A panicking stage aborts the run and propagates the panic once the
    /// scope joins.
    pub fn run_chains<S, F>(&self, chains: Vec<(S, Vec<F>)>) -> Vec<S>
    where
        S: Send,
        F: FnOnce(S) -> S + Send,
    {
        if self.threads <= 1 || chains.len() <= 1 {
            return chains
                .into_iter()
                .map(|(state, stages)| stages.into_iter().fold(state, |s, stage| stage(s)))
                .collect();
        }
        let total = chains.len();
        let slots: Vec<Mutex<Chain<S, F>>> = chains
            .into_iter()
            .map(|(state, stages)| {
                Mutex::new(Chain {
                    state: Some(state),
                    stages: stages.into_iter().collect(),
                })
            })
            .collect();
        // Chains with no stages are born finished; only the rest queue.
        let ready: VecDeque<usize> = slots
            .iter()
            .enumerate()
            .filter(|(_, c)| !c.lock().expect("chain mutex").stages.is_empty())
            .map(|(i, _)| i)
            .collect();
        let finished = total - ready.len();
        let sched = Mutex::new(ChainSched {
            ready,
            finished,
            aborted: false,
        });
        let wakeup = Condvar::new();
        let workers = self.threads.min(total);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let index = {
                        let mut s = sched.lock().expect("scheduler mutex");
                        loop {
                            if s.aborted || s.finished == total {
                                return;
                            }
                            if let Some(index) = s.ready.pop_front() {
                                break index;
                            }
                            s = wakeup.wait(s).expect("scheduler condvar");
                        }
                    };
                    let (state, stage, last) = {
                        let mut chain = slots[index].lock().expect("chain mutex");
                        let state = chain.state.take().expect("state present when scheduled");
                        let stage = chain.stages.pop_front().expect("ready chain has a stage");
                        (state, stage, chain.stages.is_empty())
                    };
                    // If the stage panics, unblock the other workers so the
                    // scope can join and propagate the panic.
                    struct Abort<'a> {
                        sched: &'a Mutex<ChainSched>,
                        wakeup: &'a Condvar,
                        armed: bool,
                    }
                    impl Drop for Abort<'_> {
                        fn drop(&mut self) {
                            if self.armed {
                                if let Ok(mut s) = self.sched.lock() {
                                    s.aborted = true;
                                }
                                self.wakeup.notify_all();
                            }
                        }
                    }
                    let mut guard = Abort {
                        sched: &sched,
                        wakeup: &wakeup,
                        armed: true,
                    };
                    let next = stage(state);
                    guard.armed = false;
                    slots[index].lock().expect("chain mutex").state = Some(next);
                    let mut s = sched.lock().expect("scheduler mutex");
                    if last {
                        s.finished += 1;
                        if s.finished == total {
                            drop(s);
                            wakeup.notify_all();
                        }
                    } else {
                        s.ready.push_back(index);
                        drop(s);
                        wakeup.notify_one();
                    }
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("chain mutex")
                    .state
                    .expect("every chain ran to completion")
            })
            .collect()
    }
}

impl Default for Executor {
    fn default() -> Self {
        Executor::from_env()
    }
}

#[cfg(test)]
// Boxed-stage chain fixtures are necessarily verbose types.
#[allow(clippy::type_complexity)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order_at_any_width() {
        let input: Vec<usize> = (0..37).collect();
        let expected: Vec<usize> = input.iter().map(|i| i * 3).collect();
        for threads in [1, 2, 4, 16, 64] {
            let cells: Vec<_> = input.iter().map(|&i| move || i * 3).collect();
            assert_eq!(Executor::with_threads(threads).run(cells), expected);
        }
    }

    #[test]
    fn handles_empty_and_single_inputs() {
        let none: Vec<fn() -> u32> = Vec::new();
        assert!(Executor::with_threads(8).run(none).is_empty());
        assert_eq!(Executor::with_threads(8).run(vec![|| 7u32]), vec![7]);
    }

    #[test]
    fn workers_actually_run_concurrently_when_asked() {
        // With 4 workers and 4 cells that all wait on the same barrier,
        // completion is only possible if they run at once.
        let barrier = std::sync::Barrier::new(4);
        let cells: Vec<_> = (0..4)
            .map(|i| {
                let barrier = &barrier;
                move || {
                    barrier.wait();
                    i
                }
            })
            .collect();
        assert_eq!(Executor::with_threads(4).run(cells), vec![0, 1, 2, 3]);
    }

    #[test]
    fn chains_thread_state_in_order_at_any_width() {
        // Each chain appends its stage index; the final state must be the
        // ordered sequence regardless of worker count or interleaving.
        let build = |chains: usize,
                     stages: usize|
         -> Vec<(
            Vec<usize>,
            Vec<Box<dyn FnOnce(Vec<usize>) -> Vec<usize> + Send>>,
        )> {
            (0..chains)
                .map(|_| {
                    let stages: Vec<Box<dyn FnOnce(Vec<usize>) -> Vec<usize> + Send>> = (0..stages)
                        .map(|k| {
                            Box::new(move |mut v: Vec<usize>| {
                                v.push(k);
                                v
                            })
                                as Box<dyn FnOnce(Vec<usize>) -> Vec<usize> + Send>
                        })
                        .collect();
                    (Vec::new(), stages)
                })
                .collect()
        };
        let expected: Vec<Vec<usize>> = (0..5).map(|_| (0..7).collect()).collect();
        for threads in [1, 2, 4, 32] {
            let result = Executor::with_threads(threads).run_chains(build(5, 7));
            assert_eq!(result, expected, "threads={threads}");
        }
    }

    #[test]
    fn chains_of_unequal_length_and_empty_chains() {
        let chains: Vec<(u64, Vec<Box<dyn FnOnce(u64) -> u64 + Send>>)> = (0..4u64)
            .map(|i| {
                let stages: Vec<Box<dyn FnOnce(u64) -> u64 + Send>> = (0..i)
                    .map(|_| Box::new(|x: u64| x + 1) as Box<dyn FnOnce(u64) -> u64 + Send>)
                    .collect();
                (100 * i, stages)
            })
            .collect();
        assert_eq!(
            Executor::with_threads(3).run_chains(chains),
            vec![0, 101, 202, 303]
        );
        let none: Vec<(u8, Vec<fn(u8) -> u8>)> = Vec::new();
        assert!(Executor::with_threads(3).run_chains(none).is_empty());
    }

    #[test]
    fn chain_stages_actually_pipeline_across_workers() {
        // Two chains of two stages on two workers, all four stages meeting
        // at one barrier: only possible if stage k of one chain overlaps
        // stage k-1 (or k) of the other — i.e. chains are not serialized
        // whole.
        let barrier = std::sync::Barrier::new(2);
        let chains: Vec<(usize, Vec<Box<dyn FnOnce(usize) -> usize + Send>>)> = (0..2)
            .map(|i| {
                let stages: Vec<Box<dyn FnOnce(usize) -> usize + Send>> = (0..2)
                    .map(|_| {
                        let barrier = &barrier;
                        Box::new(move |x: usize| {
                            barrier.wait();
                            x + 1
                        }) as Box<dyn FnOnce(usize) -> usize + Send>
                    })
                    .collect();
                (i, stages)
            })
            .collect();
        assert_eq!(Executor::with_threads(2).run_chains(chains), vec![2, 3]);
    }

    #[test]
    fn chain_edge_shapes_match_sequential() {
        // The degenerate shapes — no chains at all, a lone
        // single-segment chain, and more workers than chains — must all
        // produce exactly what the sequential fold produces.
        let build = |chains: u64| -> Vec<(u64, Vec<Box<dyn FnOnce(u64) -> u64 + Send>>)> {
            (0..chains)
                .map(|i| {
                    // Single-segment chains: one stage each, mixing the
                    // seed in a way that is order-sensitive.
                    let stages: Vec<Box<dyn FnOnce(u64) -> u64 + Send>> =
                        vec![Box::new(move |x: u64| {
                            x.wrapping_mul(6364136223846793005).wrapping_add(i)
                        })];
                    (i * 31, stages)
                })
                .collect()
        };
        for chains in [0u64, 1, 3] {
            let expected = Executor::sequential().run_chains(build(chains));
            for threads in [2, 8, 64] {
                // Worker count exceeds chain count in every pairing here
                // except (3 chains, 2 threads), which rides along.
                let got = Executor::with_threads(threads).run_chains(build(chains));
                assert_eq!(got, expected, "chains={chains} threads={threads}");
            }
        }
        // An empty chain list returns an empty result at any width.
        let none: Vec<(u8, Vec<fn(u8) -> u8>)> = Vec::new();
        assert!(Executor::with_threads(64).run_chains(none).is_empty());
    }

    #[test]
    fn threads_clamp_and_env_default() {
        assert_eq!(Executor::with_threads(0).threads(), 1);
        assert!(Executor::from_env().threads() >= 1);
        assert_eq!(Executor::sequential().threads(), 1);
    }
}
