//! Figure 3: runtime throughput under 3× capacity of sustained random
//! writes.
//!
//! The endurance run is the one experiment whose virtual timeline cannot
//! be fanned out as independent cells: each device's run is a single
//! continuous history (FTL wear, buffer occupancy, token-bucket levels all
//! carry forward). This module therefore slices the run into **resumable
//! segments** at capacity-fraction milestones, using the checkpoint seam
//! ([`CheckpointDevice`]) plus the resumable closed-loop driver
//! ([`ClosedLoopJob`]): after each milestone the device and driver state
//! are frozen into a [`Fig3Checkpoint`] that the next worker thaws and
//! continues. [`run_pipelined`] feeds the per-device segment chains
//! through [`Executor::run_chains`], so segment `k` of one device runs
//! concurrently with segment `k-1` of another.
//!
//! Determinism is the contract: [`run`], [`run_segmented`] at any segment
//! count, and [`run_pipelined`] at any thread count all produce
//! byte-identical [`Fig3Result`]s (pinned by this module's tests and the
//! facade-level property tests).

use crate::devices::{DeviceKind, DeviceRoster};
use crate::experiments::Executor;
use uc_blockdev::{CheckpointDevice, CheckpointError, DeviceCheckpoint, IoError};
use uc_metrics::Series;
use uc_sim::SimDuration;
use uc_workload::{AccessPattern, ClosedLoopJob, DriverCheckpoint, JobReport, JobSpec};

/// Workload parameters for the Figure 3 endurance run.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig3Config {
    /// I/O size in bytes (large, to reach peak throughput quickly).
    pub io_size: u32,
    /// Queue depth.
    pub queue_depth: usize,
    /// Total volume as a multiple of device capacity (paper: 3×).
    pub capacity_multiple: f64,
    /// Throughput-timeline window.
    pub window: SimDuration,
}

impl Fig3Config {
    /// The paper's setting: write 3× the capacity with large random writes.
    pub fn paper() -> Self {
        Fig3Config {
            io_size: 128 << 10,
            queue_depth: 32,
            capacity_multiple: 3.0,
            window: SimDuration::from_millis(200),
        }
    }

    /// A shorter run (1.5× capacity) for tests.
    pub fn quick() -> Self {
        Fig3Config {
            capacity_multiple: 1.5,
            ..Fig3Config::paper()
        }
    }
}

/// Figure 3 results for one device.
#[derive(Debug, Clone)]
pub struct Fig3Result {
    /// Which device was measured.
    pub device: DeviceKind,
    /// The device capacity used for normalization.
    pub capacity: u64,
    /// Throughput versus time: `(seconds, GB/s)`.
    pub time_series: Series,
    /// Throughput versus *written volume*: `(multiple of capacity, GB/s)`.
    /// This is the axis the paper's markers annotate.
    pub volume_series: Series,
}

impl Fig3Result {
    /// Peak throughput over the run, in GB/s.
    pub fn peak_gbps(&self) -> f64 {
        self.volume_series.max_y()
    }

    /// Mean throughput over the final 10 % of the run (the post-collapse
    /// steady state, if any), in GB/s.
    pub fn tail_gbps(&self) -> f64 {
        let pts = self.volume_series.points();
        if pts.is_empty() {
            return 0.0;
        }
        let tail = &pts[pts.len() - (pts.len() / 10).max(1)..];
        tail.iter().map(|p| p.1).sum::<f64>() / tail.len() as f64
    }

    /// Mean throughput over an early plateau (after the warmup transient
    /// of queue fill and token-bucket burst), in GB/s.
    pub fn plateau_gbps(&self) -> f64 {
        let pts = self.volume_series.points();
        if pts.is_empty() {
            return 0.0;
        }
        let lo = (pts.len() / 50).max(2).min(pts.len() - 1);
        let hi = (pts.len() / 8).max(lo + 1).min(pts.len());
        let window = &pts[lo..hi];
        window.iter().map(|p| p.1).sum::<f64>() / window.len() as f64
    }

    /// The volume series smoothed for knee detection (5-window moving
    /// average, which absorbs per-window quantization at small scales).
    pub fn smoothed_volume_series(&self) -> Series {
        self.volume_series.moving_average(5)
    }

    /// The written-volume multiple at which throughput first fell below
    /// half the early plateau, if it ever did — the paper's "knee".
    ///
    /// Using the plateau (not the absolute peak) makes the detector robust
    /// to the warmup spike a token-bucket burst or an empty write buffer
    /// produces in the first windows.
    pub fn knee_multiple(&self) -> Option<f64> {
        let reference = self.plateau_gbps();
        if reference <= 0.0 {
            return None;
        }
        let smooth = self.smoothed_volume_series();
        let pts = smooth.points();
        let start = (pts.len() / 8).max(3).min(pts.len());
        pts[start..]
            .iter()
            .find(|&&(_, y)| y < reference / 2.0)
            .map(|&(x, _)| x)
    }
}

/// The jitter-seed base every fig3 device is built with (`+ kind`).
fn device_seed(kind: DeviceKind) -> u64 {
    0xF1630000 + kind as u64
}

/// The throughput window for a run over `volume` bytes: scaled so the run
/// spans a few hundred points regardless of the simulated capacity (a
/// scaled-down device finishes in well under a second of virtual time).
fn effective_window(cfg: &Fig3Config, volume: u64) -> SimDuration {
    let est_secs = volume as f64 / 2.0e9;
    cfg.window
        .min(SimDuration::from_secs_f64(est_secs / 100.0))
        .max(SimDuration::from_micros(500))
}

/// Post-processes a finished endurance report into the figure's series.
fn finish(kind: DeviceKind, capacity: u64, window: SimDuration, report: &JobReport) -> Fig3Result {
    let time_series = report.throughput.series();
    // Re-index by cumulative written volume (normalized by capacity).
    let mut cumulative = 0.0f64;
    let window_secs = window.as_secs_f64();
    let mut volume_points = Vec::with_capacity(time_series.len());
    for &(_, gbps) in time_series.points() {
        cumulative += gbps * 1e9 * window_secs;
        volume_points.push((cumulative / capacity as f64, gbps));
    }
    Fig3Result {
        device: kind,
        capacity,
        volume_series: Series::from_points(
            format!("{kind} GB/s vs written multiple"),
            volume_points,
        ),
        time_series,
    }
}

/// A frozen endurance run between segments: everything needed to continue
/// the run on any worker — the device's complete hidden state plus the
/// paused closed-loop driver.
///
/// Produced by [`SegmentedRun::checkpoint`], thawed by
/// [`SegmentedRun::resume`]. This is the unit of work [`run_pipelined`]
/// feeds forward along each device's segment chain.
#[derive(Debug, Clone)]
pub struct Fig3Checkpoint {
    /// Which device is being measured.
    pub kind: DeviceKind,
    /// The device capacity used for normalization.
    pub capacity: u64,
    /// The throughput-timeline window of this run.
    pub window: SimDuration,
    /// Ascending byte milestones; the last is the full endurance volume.
    pub milestones: Vec<u64>,
    /// Milestones already reached.
    pub completed: usize,
    /// The device's complete hidden state.
    pub device: DeviceCheckpoint,
    /// The paused workload driver.
    pub driver: DriverCheckpoint,
}

/// A Figure 3 endurance run sliced into resumable segments.
///
/// Segment boundaries are capacity-fraction milestones of the total
/// written volume. Between segments the run can be checkpointed, moved
/// and resumed; however it is driven, the final [`Fig3Result`] is
/// byte-identical to an unsliced run.
pub struct SegmentedRun {
    kind: DeviceKind,
    capacity: u64,
    window: SimDuration,
    milestones: Vec<u64>,
    completed: usize,
    device: Box<dyn CheckpointDevice + Send>,
    job: ClosedLoopJob,
}

impl SegmentedRun {
    /// Primes an endurance run on a fresh device, sliced into `segments`
    /// equal byte milestones (clamped to at least 1).
    ///
    /// # Errors
    ///
    /// Propagates the first I/O error from the device.
    pub fn start(
        roster: &DeviceRoster,
        kind: DeviceKind,
        cfg: &Fig3Config,
        segments: usize,
    ) -> Result<Self, IoError> {
        let capacity = roster.capacity_of(kind);
        let mut device = roster.build_checkpointable(kind, device_seed(kind));
        let volume = (capacity as f64 * cfg.capacity_multiple) as u64;
        let window = effective_window(cfg, volume);
        let segments = segments.max(1) as u64;
        // Equal-volume milestones; the last always equals the full volume,
        // which is also the spec's own byte limit.
        let milestones: Vec<u64> = (1..=segments).map(|k| volume * k / segments).collect();
        let spec = JobSpec::new(AccessPattern::RandWrite, cfg.io_size, cfg.queue_depth)
            .with_byte_limit(volume)
            .with_throughput_window(window)
            .with_seed(0xF163);
        let job = ClosedLoopJob::start(&mut device, &spec)?;
        Ok(SegmentedRun {
            kind,
            capacity,
            window,
            milestones,
            completed: 0,
            device,
            job,
        })
    }

    /// Milestones already reached (segments executed).
    pub fn completed(&self) -> usize {
        self.completed
    }

    /// Total segments in the plan.
    pub fn segments(&self) -> usize {
        self.milestones.len()
    }

    /// `true` once the endurance volume has been written.
    pub fn is_finished(&self) -> bool {
        self.job.is_finished() || self.completed >= self.milestones.len()
    }

    /// Runs one segment: drives the device to the next byte milestone.
    ///
    /// # Errors
    ///
    /// Propagates the first I/O error from the device.
    pub fn advance(&mut self) -> Result<(), IoError> {
        let target = self.milestones[self.completed.min(self.milestones.len() - 1)];
        self.job.run_until(&mut self.device, target)?;
        self.completed += 1;
        Ok(())
    }

    /// Freezes the run between segments into a portable checkpoint.
    pub fn checkpoint(&self) -> Fig3Checkpoint {
        Fig3Checkpoint {
            kind: self.kind,
            capacity: self.capacity,
            window: self.window,
            milestones: self.milestones.clone(),
            completed: self.completed,
            device: self.device.checkpoint(),
            driver: self.job.checkpoint(),
        }
    }

    /// Thaws a checkpoint: builds a fresh device through the roster's
    /// checkpoint seam, restores the frozen state into it, and resumes the
    /// paused driver.
    ///
    /// # Errors
    ///
    /// Returns a [`CheckpointError`] if the checkpoint does not belong to
    /// a device this roster builds for `checkpoint.kind` (e.g. a roster at
    /// a different scale).
    pub fn resume(
        roster: &DeviceRoster,
        checkpoint: Fig3Checkpoint,
    ) -> Result<Self, CheckpointError> {
        let mut device = roster.build_checkpointable(checkpoint.kind, device_seed(checkpoint.kind));
        device.restore_from(checkpoint.device)?;
        Ok(SegmentedRun {
            kind: checkpoint.kind,
            capacity: checkpoint.capacity,
            window: checkpoint.window,
            milestones: checkpoint.milestones,
            completed: checkpoint.completed,
            device,
            job: ClosedLoopJob::resume(checkpoint.driver),
        })
    }

    /// Consumes the finished run, yielding the figure's series.
    ///
    /// # Panics
    ///
    /// Panics if the run is not finished.
    pub fn into_result(self) -> Fig3Result {
        assert!(self.is_finished(), "fig3 run still has segments to go");
        finish(self.kind, self.capacity, self.window, self.job.report())
    }
}

/// Runs the Figure 3 endurance experiment on `kind` as one continuous
/// (single-segment) run.
///
/// # Errors
///
/// Propagates the first I/O error from the device.
pub fn run(
    roster: &DeviceRoster,
    kind: DeviceKind,
    cfg: &Fig3Config,
) -> Result<Fig3Result, IoError> {
    run_segmented(roster, kind, cfg, 1)
}

/// Runs the endurance experiment sliced into `segments` resumable
/// segments on the calling thread, round-tripping through a
/// [`Fig3Checkpoint`] at every boundary (exercising the same freeze/thaw
/// path the pipelined runner uses). The result is byte-identical to
/// [`run`]'s.
///
/// # Errors
///
/// Propagates the first I/O error from the device.
///
/// # Panics
///
/// Panics if a checkpoint taken by this run fails to restore (a
/// checkpoint-seam bug, not an I/O condition).
pub fn run_segmented(
    roster: &DeviceRoster,
    kind: DeviceKind,
    cfg: &Fig3Config,
    segments: usize,
) -> Result<Fig3Result, IoError> {
    let mut state = SegmentedRun::start(roster, kind, cfg, segments)?;
    loop {
        state.advance()?;
        if state.is_finished() {
            return Ok(state.into_result());
        }
        let frozen = state.checkpoint();
        state = SegmentedRun::resume(roster, frozen).expect("own checkpoint restores");
    }
}

/// Runs the endurance experiment for several devices with their segment
/// chains pipelined across `exec`'s workers: segment `k` of one device
/// runs concurrently with segment `k-1` of another, each boundary feeding
/// a [`Fig3Checkpoint`] forward to whichever worker picks the chain up
/// next.
///
/// Results are returned in `kinds` order and are byte-identical to
/// [`run`]'s for every device, at any thread count.
///
/// # Errors
///
/// Propagates the first I/O error any device reports.
///
/// # Panics
///
/// Panics if a checkpoint taken by this run fails to restore (a
/// checkpoint-seam bug, not an I/O condition).
pub fn run_pipelined(
    roster: &DeviceRoster,
    kinds: &[DeviceKind],
    cfg: &Fig3Config,
    segments: usize,
    exec: &Executor,
) -> Result<Vec<Fig3Result>, IoError> {
    type Stage =
        Box<dyn FnOnce(Result<Fig3Checkpoint, IoError>) -> Result<Fig3Checkpoint, IoError> + Send>;
    let segments = segments.max(1);
    let mut chains: Vec<(Result<Fig3Checkpoint, IoError>, Vec<Stage>)> =
        Vec::with_capacity(kinds.len());
    for &kind in kinds {
        // Prime on the coordinating thread (cheap: one doorbell), then
        // hand the frozen run to the chain.
        let initial = SegmentedRun::start(roster, kind, cfg, segments).map(|r| r.checkpoint());
        let stages: Vec<Stage> = (0..segments)
            .map(|_| {
                let roster = roster.clone();
                Box::new(move |frozen: Result<Fig3Checkpoint, IoError>| {
                    let mut state =
                        SegmentedRun::resume(&roster, frozen?).expect("own checkpoint restores");
                    state.advance()?;
                    Ok(state.checkpoint())
                }) as Stage
            })
            .collect();
        chains.push((initial, stages));
    }
    exec.run_chains(chains)
        .into_iter()
        .map(|frozen| {
            let state = SegmentedRun::resume(roster, frozen?).expect("own checkpoint restores");
            Ok(state.into_result())
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::render_fig3;

    #[test]
    fn segmented_and_pipelined_match_unsliced_for_every_kind() {
        // The determinism contract of the checkpoint redesign: slicing the
        // endurance run into segments — in-place, with freeze/thaw round
        // trips, or pipelined across workers — must leave the rendered
        // figure byte-identical for every device class.
        let roster = DeviceRoster::with_capacities(128 << 20, 128 << 20);
        let cfg = Fig3Config::quick();
        let pipelined = run_pipelined(
            &roster,
            &DeviceKind::ALL,
            &cfg,
            4,
            &Executor::with_threads(3),
        )
        .unwrap();
        for (i, &kind) in DeviceKind::ALL.iter().enumerate() {
            let unsliced = run(&roster, kind, &cfg).unwrap();
            let segmented = run_segmented(&roster, kind, &cfg, 5).unwrap();
            for (label, sliced) in [("segmented", &segmented), ("pipelined", &pipelined[i])] {
                assert_eq!(sliced.capacity, unsliced.capacity, "{kind}/{label}");
                assert_eq!(
                    sliced.time_series, unsliced.time_series,
                    "{kind}/{label} time series"
                );
                assert_eq!(
                    sliced.volume_series, unsliced.volume_series,
                    "{kind}/{label} volume series"
                );
                assert_eq!(
                    render_fig3(sliced),
                    render_fig3(&unsliced),
                    "{kind}/{label} rendered figure"
                );
            }
        }
    }

    #[test]
    fn segment_bookkeeping_and_checkpoint_flow() {
        let roster = DeviceRoster::with_capacities(128 << 20, 128 << 20);
        let cfg = Fig3Config::quick();
        let mut run = SegmentedRun::start(&roster, DeviceKind::Essd2, &cfg, 3).unwrap();
        assert_eq!(run.segments(), 3);
        assert_eq!(run.completed(), 0);
        assert!(!run.is_finished());
        run.advance().unwrap();
        assert_eq!(run.completed(), 1);
        let frozen = run.checkpoint();
        assert_eq!(frozen.completed, 1);
        assert_eq!(frozen.milestones.len(), 3);
        assert!(frozen.device.device().contains("PL3") || !frozen.device.device().is_empty());
        // A frozen run thaws on a roster clone (another worker's view).
        let mut thawed = SegmentedRun::resume(&roster.clone(), frozen).unwrap();
        while !thawed.is_finished() {
            thawed.advance().unwrap();
        }
        let result = thawed.into_result();
        assert!(result.peak_gbps() > 0.0);
    }

    #[test]
    fn resume_on_mismatched_roster_fails_loudly() {
        let roster = DeviceRoster::with_capacities(128 << 20, 128 << 20);
        let cfg = Fig3Config::quick();
        let run = SegmentedRun::start(&roster, DeviceKind::LocalSsd, &cfg, 2).unwrap();
        let frozen = run.checkpoint();
        // A roster at another scale builds a different device; the name
        // check (or payload check) must reject the stale checkpoint.
        let other = roster.with_scale(2);
        assert!(SegmentedRun::resume(&other, frozen).is_err());
    }

    #[test]
    fn ssd_collapses_near_capacity() {
        let roster = DeviceRoster::with_capacities(128 << 20, 128 << 20);
        let cfg = Fig3Config {
            capacity_multiple: 2.0,
            ..Fig3Config::paper()
        };
        let r = run(&roster, DeviceKind::LocalSsd, &cfg).unwrap();
        assert!(r.peak_gbps() > 1.0, "clean device writes fast");
        let knee = r.knee_multiple().expect("GC collapse must occur");
        assert!(
            (0.5..1.6).contains(&knee),
            "knee at {knee}x capacity, expected near 1x"
        );
        assert!(
            r.tail_gbps() < r.peak_gbps() / 3.0,
            "steady state ({}) far below peak ({})",
            r.tail_gbps(),
            r.peak_gbps()
        );
    }

    #[test]
    fn essd2_sustains_throughout() {
        let roster = DeviceRoster::with_capacities(128 << 20, 128 << 20);
        let r = run(&roster, DeviceKind::Essd2, &Fig3Config::quick()).unwrap();
        assert!(
            r.knee_multiple().is_none(),
            "ESSD-2 must not collapse, knee at {:?}",
            r.knee_multiple()
        );
    }
}
