//! Figure 3: runtime throughput under 3× capacity of sustained random
//! writes.

use crate::devices::{DeviceKind, DeviceRoster};
use uc_blockdev::IoError;
use uc_metrics::Series;
use uc_sim::SimDuration;
use uc_workload::{run_job, AccessPattern, JobSpec};

/// Workload parameters for the Figure 3 endurance run.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig3Config {
    /// I/O size in bytes (large, to reach peak throughput quickly).
    pub io_size: u32,
    /// Queue depth.
    pub queue_depth: usize,
    /// Total volume as a multiple of device capacity (paper: 3×).
    pub capacity_multiple: f64,
    /// Throughput-timeline window.
    pub window: SimDuration,
}

impl Fig3Config {
    /// The paper's setting: write 3× the capacity with large random writes.
    pub fn paper() -> Self {
        Fig3Config {
            io_size: 128 << 10,
            queue_depth: 32,
            capacity_multiple: 3.0,
            window: SimDuration::from_millis(200),
        }
    }

    /// A shorter run (1.5× capacity) for tests.
    pub fn quick() -> Self {
        Fig3Config {
            capacity_multiple: 1.5,
            ..Fig3Config::paper()
        }
    }
}

/// Figure 3 results for one device.
#[derive(Debug, Clone)]
pub struct Fig3Result {
    /// Which device was measured.
    pub device: DeviceKind,
    /// The device capacity used for normalization.
    pub capacity: u64,
    /// Throughput versus time: `(seconds, GB/s)`.
    pub time_series: Series,
    /// Throughput versus *written volume*: `(multiple of capacity, GB/s)`.
    /// This is the axis the paper's markers annotate.
    pub volume_series: Series,
}

impl Fig3Result {
    /// Peak throughput over the run, in GB/s.
    pub fn peak_gbps(&self) -> f64 {
        self.volume_series.max_y()
    }

    /// Mean throughput over the final 10 % of the run (the post-collapse
    /// steady state, if any), in GB/s.
    pub fn tail_gbps(&self) -> f64 {
        let pts = self.volume_series.points();
        if pts.is_empty() {
            return 0.0;
        }
        let tail = &pts[pts.len() - (pts.len() / 10).max(1)..];
        tail.iter().map(|p| p.1).sum::<f64>() / tail.len() as f64
    }

    /// Mean throughput over an early plateau (after the warmup transient
    /// of queue fill and token-bucket burst), in GB/s.
    pub fn plateau_gbps(&self) -> f64 {
        let pts = self.volume_series.points();
        if pts.is_empty() {
            return 0.0;
        }
        let lo = (pts.len() / 50).max(2).min(pts.len() - 1);
        let hi = (pts.len() / 8).max(lo + 1).min(pts.len());
        let window = &pts[lo..hi];
        window.iter().map(|p| p.1).sum::<f64>() / window.len() as f64
    }

    /// The volume series smoothed for knee detection (5-window moving
    /// average, which absorbs per-window quantization at small scales).
    pub fn smoothed_volume_series(&self) -> Series {
        self.volume_series.moving_average(5)
    }

    /// The written-volume multiple at which throughput first fell below
    /// half the early plateau, if it ever did — the paper's "knee".
    ///
    /// Using the plateau (not the absolute peak) makes the detector robust
    /// to the warmup spike a token-bucket burst or an empty write buffer
    /// produces in the first windows.
    pub fn knee_multiple(&self) -> Option<f64> {
        let reference = self.plateau_gbps();
        if reference <= 0.0 {
            return None;
        }
        let smooth = self.smoothed_volume_series();
        let pts = smooth.points();
        let start = (pts.len() / 8).max(3).min(pts.len());
        pts[start..]
            .iter()
            .find(|&&(_, y)| y < reference / 2.0)
            .map(|&(x, _)| x)
    }
}

/// Runs the Figure 3 endurance experiment on `kind`.
///
/// # Errors
///
/// Propagates the first I/O error from the device.
pub fn run(
    roster: &DeviceRoster,
    kind: DeviceKind,
    cfg: &Fig3Config,
) -> Result<Fig3Result, IoError> {
    let capacity = roster.capacity_of(kind);
    let mut dev = roster.build_seeded(kind, 0xF1630000 + kind as u64);
    let volume = (capacity as f64 * cfg.capacity_multiple) as u64;
    // Scale the window so the run spans a few hundred points regardless of
    // the simulated capacity (a scaled-down device finishes in well under a
    // second of virtual time).
    let est_secs = volume as f64 / 2.0e9;
    let window = cfg
        .window
        .min(SimDuration::from_secs_f64(est_secs / 100.0))
        .max(SimDuration::from_micros(500));
    let spec = JobSpec::new(AccessPattern::RandWrite, cfg.io_size, cfg.queue_depth)
        .with_byte_limit(volume)
        .with_throughput_window(window)
        .with_seed(0xF163);
    let report = run_job(dev.as_mut(), &spec)?;

    let time_series = report.throughput.series();
    // Re-index by cumulative written volume (normalized by capacity).
    let mut cumulative = 0.0f64;
    let window_secs = window.as_secs_f64();
    let mut volume_points = Vec::with_capacity(time_series.len());
    for &(_, gbps) in time_series.points() {
        cumulative += gbps * 1e9 * window_secs;
        volume_points.push((cumulative / capacity as f64, gbps));
    }
    Ok(Fig3Result {
        device: kind,
        capacity,
        volume_series: Series::from_points(
            format!("{kind} GB/s vs written multiple"),
            volume_points,
        ),
        time_series,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ssd_collapses_near_capacity() {
        let roster = DeviceRoster::with_capacities(128 << 20, 128 << 20);
        let cfg = Fig3Config {
            capacity_multiple: 2.0,
            ..Fig3Config::paper()
        };
        let r = run(&roster, DeviceKind::LocalSsd, &cfg).unwrap();
        assert!(r.peak_gbps() > 1.0, "clean device writes fast");
        let knee = r.knee_multiple().expect("GC collapse must occur");
        assert!(
            (0.5..1.6).contains(&knee),
            "knee at {knee}x capacity, expected near 1x"
        );
        assert!(
            r.tail_gbps() < r.peak_gbps() / 3.0,
            "steady state ({}) far below peak ({})",
            r.tail_gbps(),
            r.peak_gbps()
        );
    }

    #[test]
    fn essd2_sustains_throughout() {
        let roster = DeviceRoster::with_capacities(128 << 20, 128 << 20);
        let r = run(&roster, DeviceKind::Essd2, &Fig3Config::quick()).unwrap();
        assert!(
            r.knee_multiple().is_none(),
            "ESSD-2 must not collapse, knee at {:?}",
            r.knee_multiple()
        );
    }
}
