//! Figure 3: runtime throughput under 3× capacity of sustained random
//! writes.
//!
//! The endurance run is the one experiment whose virtual timeline cannot
//! be fanned out as independent cells: each device's run is a single
//! continuous history (FTL wear, buffer occupancy, token-bucket levels all
//! carry forward). This module therefore slices the run into **resumable
//! segments** at capacity-fraction milestones, using the checkpoint seam
//! ([`CheckpointDevice`]) plus the resumable closed-loop driver
//! ([`ClosedLoopJob`]): after each milestone the device and driver state
//! are frozen into a [`Fig3Checkpoint`] that the next worker thaws and
//! continues. [`run_pipelined`] feeds the per-device segment chains
//! through [`Executor::run_chains`], so segment `k` of one device runs
//! concurrently with segment `k-1` of another.
//!
//! Determinism is the contract: [`run`], [`run_segmented`] at any segment
//! count, and [`run_pipelined`] at any thread count all produce
//! byte-identical [`Fig3Result`]s (pinned by this module's tests and the
//! facade-level property tests).

use crate::devices::{payload_codecs, DeviceKind, DeviceRoster};
use crate::experiments::Executor;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use uc_blockdev::{CheckpointDevice, CheckpointError, DeviceCheckpoint, IoError, PersistError};
use uc_metrics::Series;
use uc_persist::{DecodeError, Decoder, Encoder, Persist};
use uc_sim::SimDuration;
use uc_workload::{AccessPattern, ClosedLoopJob, DriverCheckpoint, JobReport, JobSpec};

/// Workload parameters for the Figure 3 endurance run.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig3Config {
    /// I/O size in bytes (large, to reach peak throughput quickly).
    pub io_size: u32,
    /// Queue depth.
    pub queue_depth: usize,
    /// Total volume as a multiple of device capacity (paper: 3×).
    pub capacity_multiple: f64,
    /// Throughput-timeline window.
    pub window: SimDuration,
}

impl Fig3Config {
    /// The paper's setting: write 3× the capacity with large random writes.
    pub fn paper() -> Self {
        Fig3Config {
            io_size: 128 << 10,
            queue_depth: 32,
            capacity_multiple: 3.0,
            window: SimDuration::from_millis(200),
        }
    }

    /// A shorter run (1.5× capacity) for tests.
    pub fn quick() -> Self {
        Fig3Config {
            capacity_multiple: 1.5,
            ..Fig3Config::paper()
        }
    }
}

/// Figure 3 results for one device.
#[derive(Debug, Clone)]
pub struct Fig3Result {
    /// Which device was measured.
    pub device: DeviceKind,
    /// The device capacity used for normalization.
    pub capacity: u64,
    /// Throughput versus time: `(seconds, GB/s)`.
    pub time_series: Series,
    /// Throughput versus *written volume*: `(multiple of capacity, GB/s)`.
    /// This is the axis the paper's markers annotate.
    pub volume_series: Series,
}

impl Fig3Result {
    /// Peak throughput over the run, in GB/s.
    pub fn peak_gbps(&self) -> f64 {
        self.volume_series.max_y()
    }

    /// Mean throughput over the final 10 % of the run (the post-collapse
    /// steady state, if any), in GB/s.
    pub fn tail_gbps(&self) -> f64 {
        let pts = self.volume_series.points();
        if pts.is_empty() {
            return 0.0;
        }
        let tail = &pts[pts.len() - (pts.len() / 10).max(1)..];
        tail.iter().map(|p| p.1).sum::<f64>() / tail.len() as f64
    }

    /// Mean throughput over an early plateau (after the warmup transient
    /// of queue fill and token-bucket burst), in GB/s.
    pub fn plateau_gbps(&self) -> f64 {
        let pts = self.volume_series.points();
        if pts.is_empty() {
            return 0.0;
        }
        let lo = (pts.len() / 50).max(2).min(pts.len() - 1);
        let hi = (pts.len() / 8).max(lo + 1).min(pts.len());
        let window = &pts[lo..hi];
        window.iter().map(|p| p.1).sum::<f64>() / window.len() as f64
    }

    /// The volume series smoothed for knee detection (5-window moving
    /// average, which absorbs per-window quantization at small scales).
    pub fn smoothed_volume_series(&self) -> Series {
        self.volume_series.moving_average(5)
    }

    /// The written-volume multiple at which throughput first fell below
    /// half the early plateau, if it ever did — the paper's "knee".
    ///
    /// Using the plateau (not the absolute peak) makes the detector robust
    /// to the warmup spike a token-bucket burst or an empty write buffer
    /// produces in the first windows.
    pub fn knee_multiple(&self) -> Option<f64> {
        let reference = self.plateau_gbps();
        if reference <= 0.0 {
            return None;
        }
        let smooth = self.smoothed_volume_series();
        let pts = smooth.points();
        let start = (pts.len() / 8).max(3).min(pts.len());
        pts[start..]
            .iter()
            .find(|&&(_, y)| y < reference / 2.0)
            .map(|&(x, _)| x)
    }
}

/// The jitter-seed base every fig3 device is built with (`+ kind`).
fn device_seed(kind: DeviceKind) -> u64 {
    0xF1630000 + kind as u64
}

/// The throughput window for a run over `volume` bytes: scaled so the run
/// spans a few hundred points regardless of the simulated capacity (a
/// scaled-down device finishes in well under a second of virtual time).
fn effective_window(cfg: &Fig3Config, volume: u64) -> SimDuration {
    let est_secs = volume as f64 / 2.0e9;
    cfg.window
        .min(SimDuration::from_secs_f64(est_secs / 100.0))
        .max(SimDuration::from_micros(500))
}

/// The milestone plan of one device's endurance run: normalization
/// capacity, throughput window, and ascending byte milestones (the last
/// is the full volume). Derived in exactly one place — both
/// [`SegmentedRun::start`] and the durable runner's resume-validity check
/// go through here, so the check can never drift from what a fresh run
/// actually executes.
#[derive(Debug, Clone, PartialEq)]
struct Plan {
    capacity: u64,
    window: SimDuration,
    milestones: Vec<u64>,
}

impl Plan {
    fn of(roster: &DeviceRoster, kind: DeviceKind, cfg: &Fig3Config, segments: usize) -> Plan {
        let capacity = roster.capacity_of(kind);
        let volume = (capacity as f64 * cfg.capacity_multiple) as u64;
        let window = effective_window(cfg, volume);
        let segments = segments.max(1) as u64;
        // Equal-volume milestones; the last always equals the full
        // volume, which is also the job spec's own byte limit.
        let milestones = (1..=segments).map(|k| volume * k / segments).collect();
        Plan {
            capacity,
            window,
            milestones,
        }
    }

    /// The full endurance volume in bytes.
    fn volume(&self) -> u64 {
        *self.milestones.last().expect("at least one milestone")
    }

    /// `true` if `checkpoint` was taken under this exact plan (same
    /// scale, config and segment count) and can continue it.
    fn matches(&self, checkpoint: &Fig3Checkpoint) -> bool {
        checkpoint.capacity == self.capacity
            && checkpoint.window == self.window
            && checkpoint.milestones == self.milestones
    }
}

/// Post-processes a finished endurance report into the figure's series.
fn finish(kind: DeviceKind, capacity: u64, window: SimDuration, report: &JobReport) -> Fig3Result {
    let time_series = report.throughput.series();
    // Re-index by cumulative written volume (normalized by capacity).
    let mut cumulative = 0.0f64;
    let window_secs = window.as_secs_f64();
    let mut volume_points = Vec::with_capacity(time_series.len());
    for &(_, gbps) in time_series.points() {
        cumulative += gbps * 1e9 * window_secs;
        volume_points.push((cumulative / capacity as f64, gbps));
    }
    Fig3Result {
        device: kind,
        capacity,
        volume_series: Series::from_points(
            format!("{kind} GB/s vs written multiple"),
            volume_points,
        ),
        time_series,
    }
}

/// A frozen endurance run between segments: everything needed to continue
/// the run on any worker — the device's complete hidden state plus the
/// paused closed-loop driver.
///
/// Produced by [`SegmentedRun::checkpoint`], thawed by
/// [`SegmentedRun::resume`]. This is the unit of work [`run_pipelined`]
/// feeds forward along each device's segment chain.
#[derive(Debug, Clone)]
pub struct Fig3Checkpoint {
    /// Which device is being measured.
    pub kind: DeviceKind,
    /// The device capacity used for normalization.
    pub capacity: u64,
    /// The throughput-timeline window of this run.
    pub window: SimDuration,
    /// Ascending byte milestones; the last is the full endurance volume.
    pub milestones: Vec<u64>,
    /// Milestones already reached.
    pub completed: usize,
    /// The device's complete hidden state.
    pub device: DeviceCheckpoint,
    /// The paused workload driver.
    pub driver: DriverCheckpoint,
}

impl Fig3Checkpoint {
    /// The on-disk record kind tag of a serialized fig3 segment
    /// checkpoint. Bump the suffix when the layout changes.
    pub const RECORD_KIND: &'static str = "uc.fig3-checkpoint.v1";

    /// Appends this checkpoint's wire form to `w`.
    ///
    /// # Errors
    ///
    /// Returns [`PersistError::NotPersistent`] if the embedded device
    /// checkpoint carries no persistence codec (roster-built devices
    /// always do).
    pub fn encode_into(&self, w: &mut Encoder) -> Result<(), PersistError> {
        self.kind.encode(w);
        w.put_u64(self.capacity);
        self.window.encode(w);
        self.milestones.encode(w);
        self.completed.encode(w);
        self.device.encode_into(w)?;
        self.driver.encode(w);
        Ok(())
    }

    /// Parses a checkpoint back out of its wire form, thawing the device
    /// payload through the roster's codec registry
    /// ([`payload_codecs`]).
    ///
    /// # Errors
    ///
    /// Returns a typed [`DecodeError`] on any malformed input.
    pub fn decode_from(r: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        let kind = DeviceKind::decode(r)?;
        let capacity = r.get_u64()?;
        let window = SimDuration::decode(r)?;
        let milestones = Vec::<u64>::decode(r)?;
        let completed = usize::decode(r)?;
        let device = DeviceCheckpoint::decode_from(r, &payload_codecs())?;
        let driver = DriverCheckpoint::decode(r)?;
        if completed > milestones.len() {
            return Err(DecodeError::InvalidValue {
                what: "Fig3Checkpoint.completed",
            });
        }
        Ok(Fig3Checkpoint {
            kind,
            capacity,
            window,
            milestones,
            completed,
            device,
            driver,
        })
    }

    /// Writes this checkpoint to `path` as a self-describing record file
    /// (atomically: temp file + rename).
    ///
    /// # Errors
    ///
    /// Returns [`PersistError`] on codec-less payloads or filesystem
    /// failures.
    pub fn save_to(&self, path: &Path) -> Result<(), PersistError> {
        let mut w = Encoder::new();
        self.encode_into(&mut w)?;
        uc_persist::write_record_file(path, Self::RECORD_KIND, w.as_bytes())?;
        Ok(())
    }

    /// Reads a checkpoint back from a record file written by
    /// [`Fig3Checkpoint::save_to`].
    ///
    /// # Errors
    ///
    /// Every failure — unreadable file, foreign bytes, truncation,
    /// flipped bits, future format version, unknown payload kind — is a
    /// typed [`DecodeError`], never a panic.
    pub fn load_from(path: &Path) -> Result<Self, DecodeError> {
        let (kind, payload) = uc_persist::read_record_file(path)?;
        if kind != Self::RECORD_KIND {
            return Err(DecodeError::UnknownKind { found: kind });
        }
        let mut r = Decoder::new(&payload);
        let checkpoint = Self::decode_from(&mut r)?;
        r.finish()?;
        Ok(checkpoint)
    }
}

/// A Figure 3 endurance run sliced into resumable segments.
///
/// Segment boundaries are capacity-fraction milestones of the total
/// written volume. Between segments the run can be checkpointed, moved
/// and resumed; however it is driven, the final [`Fig3Result`] is
/// byte-identical to an unsliced run.
pub struct SegmentedRun {
    kind: DeviceKind,
    capacity: u64,
    window: SimDuration,
    milestones: Vec<u64>,
    completed: usize,
    device: Box<dyn CheckpointDevice + Send>,
    job: ClosedLoopJob,
}

impl SegmentedRun {
    /// Primes an endurance run on a fresh device, sliced into `segments`
    /// equal byte milestones (clamped to at least 1).
    ///
    /// # Errors
    ///
    /// Propagates the first I/O error from the device.
    pub fn start(
        roster: &DeviceRoster,
        kind: DeviceKind,
        cfg: &Fig3Config,
        segments: usize,
    ) -> Result<Self, IoError> {
        let plan = Plan::of(roster, kind, cfg, segments);
        let mut device = roster.build_checkpointable(kind, device_seed(kind));
        let spec = JobSpec::new(AccessPattern::RandWrite, cfg.io_size, cfg.queue_depth)
            .with_byte_limit(plan.volume())
            .with_throughput_window(plan.window)
            .with_seed(0xF163);
        let job = ClosedLoopJob::start(&mut device, &spec)?;
        Ok(SegmentedRun {
            kind,
            capacity: plan.capacity,
            window: plan.window,
            milestones: plan.milestones,
            completed: 0,
            device,
            job,
        })
    }

    /// Milestones already reached (segments executed).
    pub fn completed(&self) -> usize {
        self.completed
    }

    /// Total segments in the plan.
    pub fn segments(&self) -> usize {
        self.milestones.len()
    }

    /// `true` once the endurance volume has been written.
    pub fn is_finished(&self) -> bool {
        self.job.is_finished() || self.completed >= self.milestones.len()
    }

    /// Runs one segment: drives the device to the next byte milestone.
    ///
    /// # Errors
    ///
    /// Propagates the first I/O error from the device.
    pub fn advance(&mut self) -> Result<(), IoError> {
        let target = self.milestones[self.completed.min(self.milestones.len() - 1)];
        self.job.run_until(&mut self.device, target)?;
        self.completed += 1;
        Ok(())
    }

    /// Freezes the run between segments into a portable checkpoint.
    pub fn checkpoint(&self) -> Fig3Checkpoint {
        Fig3Checkpoint {
            kind: self.kind,
            capacity: self.capacity,
            window: self.window,
            milestones: self.milestones.clone(),
            completed: self.completed,
            device: self.device.checkpoint(),
            driver: self.job.checkpoint(),
        }
    }

    /// Thaws a checkpoint: builds a fresh device through the roster's
    /// checkpoint seam, restores the frozen state into it, and resumes the
    /// paused driver.
    ///
    /// # Errors
    ///
    /// Returns a [`CheckpointError`] if the checkpoint does not belong to
    /// a device this roster builds for `checkpoint.kind` (e.g. a roster at
    /// a different scale).
    pub fn resume(
        roster: &DeviceRoster,
        checkpoint: Fig3Checkpoint,
    ) -> Result<Self, CheckpointError> {
        let mut device = roster.build_checkpointable(checkpoint.kind, device_seed(checkpoint.kind));
        device.restore_from(checkpoint.device)?;
        Ok(SegmentedRun {
            kind: checkpoint.kind,
            capacity: checkpoint.capacity,
            window: checkpoint.window,
            milestones: checkpoint.milestones,
            completed: checkpoint.completed,
            device,
            job: ClosedLoopJob::resume(checkpoint.driver),
        })
    }

    /// Consumes the finished run, yielding the figure's series.
    ///
    /// # Panics
    ///
    /// Panics if the run is not finished.
    pub fn into_result(self) -> Fig3Result {
        assert!(self.is_finished(), "fig3 run still has segments to go");
        finish(self.kind, self.capacity, self.window, self.job.report())
    }
}

/// Runs the Figure 3 endurance experiment on `kind` as one continuous
/// (single-segment) run.
///
/// # Errors
///
/// Propagates the first I/O error from the device.
pub fn run(
    roster: &DeviceRoster,
    kind: DeviceKind,
    cfg: &Fig3Config,
) -> Result<Fig3Result, IoError> {
    run_segmented(roster, kind, cfg, 1)
}

/// Runs the endurance experiment sliced into `segments` resumable
/// segments on the calling thread, round-tripping through a
/// [`Fig3Checkpoint`] at every boundary (exercising the same freeze/thaw
/// path the pipelined runner uses). The result is byte-identical to
/// [`run`]'s.
///
/// # Errors
///
/// Propagates the first I/O error from the device.
///
/// # Panics
///
/// Panics if a checkpoint taken by this run fails to restore (a
/// checkpoint-seam bug, not an I/O condition).
pub fn run_segmented(
    roster: &DeviceRoster,
    kind: DeviceKind,
    cfg: &Fig3Config,
    segments: usize,
) -> Result<Fig3Result, IoError> {
    let mut state = SegmentedRun::start(roster, kind, cfg, segments)?;
    loop {
        state.advance()?;
        if state.is_finished() {
            return Ok(state.into_result());
        }
        let frozen = state.checkpoint();
        state = SegmentedRun::resume(roster, frozen).expect("own checkpoint restores");
    }
}

/// Runs the endurance experiment for several devices with their segment
/// chains pipelined across `exec`'s workers: segment `k` of one device
/// runs concurrently with segment `k-1` of another, each boundary feeding
/// a [`Fig3Checkpoint`] forward to whichever worker picks the chain up
/// next.
///
/// Results are returned in `kinds` order and are byte-identical to
/// [`run`]'s for every device, at any thread count.
///
/// # Errors
///
/// Propagates the first I/O error any device reports.
///
/// # Panics
///
/// Panics if a checkpoint taken by this run fails to restore (a
/// checkpoint-seam bug, not an I/O condition).
pub fn run_pipelined(
    roster: &DeviceRoster,
    kinds: &[DeviceKind],
    cfg: &Fig3Config,
    segments: usize,
    exec: &Executor,
) -> Result<Vec<Fig3Result>, IoError> {
    type Stage =
        Box<dyn FnOnce(Result<Fig3Checkpoint, IoError>) -> Result<Fig3Checkpoint, IoError> + Send>;
    let segments = segments.max(1);
    let mut chains: Vec<(Result<Fig3Checkpoint, IoError>, Vec<Stage>)> =
        Vec::with_capacity(kinds.len());
    for &kind in kinds {
        // Prime on the coordinating thread (cheap: one doorbell), then
        // hand the frozen run to the chain.
        let initial = SegmentedRun::start(roster, kind, cfg, segments).map(|r| r.checkpoint());
        let stages: Vec<Stage> = (0..segments)
            .map(|_| {
                let roster = roster.clone();
                Box::new(move |frozen: Result<Fig3Checkpoint, IoError>| {
                    let mut state =
                        SegmentedRun::resume(&roster, frozen?).expect("own checkpoint restores");
                    state.advance()?;
                    Ok(state.checkpoint())
                }) as Stage
            })
            .collect();
        chains.push((initial, stages));
    }
    exec.run_chains(chains)
        .into_iter()
        .map(|frozen| {
            let state = SegmentedRun::resume(roster, frozen?).expect("own checkpoint restores");
            Ok(state.into_result())
        })
        .collect()
}

/// Errors of the durable (on-disk) fig3 runner.
#[derive(Debug)]
pub enum DurableError {
    /// A device reported an I/O error while a segment was running.
    Io(IoError),
    /// Writing a segment checkpoint to disk failed.
    Save(PersistError),
    /// A checkpoint loaded from disk does not restore onto the devices
    /// this roster builds (e.g. a checkpoint taken at another `--scale`).
    Restore(CheckpointError),
}

impl std::fmt::Display for DurableError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DurableError::Io(e) => write!(f, "device i/o error: {e}"),
            DurableError::Save(e) => write!(f, "persisting segment checkpoint: {e}"),
            DurableError::Restore(e) => write!(f, "restoring segment checkpoint: {e}"),
        }
    }
}

impl std::error::Error for DurableError {}

impl From<IoError> for DurableError {
    fn from(e: IoError) -> Self {
        DurableError::Io(e)
    }
}

/// A directory of durable fig3 segment checkpoints.
///
/// One file per device per reached segment boundary, named
/// `fig3-<slug>.seg<completed>.ckpt`. After every successful save the
/// superseded older boundaries of that device are pruned, so the
/// directory holds at most one checkpoint per device over an entire
/// endurance run ([`CheckpointDir::prune_older`]). Resume scans newest →
/// oldest and takes the first file that decodes cleanly
/// ([`CheckpointDir::latest`]), so a truncated or half-written file
/// degrades into resuming from the previous boundary rather than an
/// error.
///
/// The store is cheaply cloneable and `Send + Sync`: the pipelined
/// runner's worker threads share it.
#[derive(Debug, Clone)]
pub struct CheckpointDir {
    dir: PathBuf,
    kill_after: Option<u64>,
    saves: Arc<AtomicU64>,
}

impl CheckpointDir {
    /// Opens (creating if needed) a checkpoint directory.
    ///
    /// # Errors
    ///
    /// Propagates the filesystem error if the directory cannot be
    /// created.
    pub fn create(dir: impl Into<PathBuf>) -> std::io::Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(CheckpointDir {
            dir,
            kill_after: None,
            saves: Arc::new(AtomicU64::new(0)),
        })
    }

    /// The directory holding the checkpoint files.
    pub fn path(&self) -> &Path {
        &self.dir
    }

    /// Crash-testing hook: terminate the *process* (exit code 42)
    /// immediately after the `n`-th successful checkpoint save.
    ///
    /// This is how the CI kill-and-resume gate crashes a run
    /// deterministically at a segment boundary — the strongest possible
    /// crash short of `kill -9`, since no destructors run and no further
    /// state is written. Never set in normal operation.
    pub fn with_kill_after(mut self, saves: u64) -> Self {
        self.kill_after = Some(saves);
        self
    }

    /// Checkpoints saved through this store (and its clones) so far.
    pub fn saves(&self) -> u64 {
        self.saves.load(Ordering::Relaxed)
    }

    fn file_name(kind: DeviceKind, completed: usize) -> String {
        format!("fig3-{}.seg{completed:04}.ckpt", kind.slug())
    }

    /// The file path of `kind`'s checkpoint at segment boundary
    /// `completed`.
    pub fn segment_path(&self, kind: DeviceKind, completed: usize) -> PathBuf {
        self.dir.join(Self::file_name(kind, completed))
    }

    /// Persists one segment-boundary checkpoint, returning its path.
    ///
    /// # Errors
    ///
    /// Propagates [`PersistError`] from the underlying save.
    pub fn save(&self, checkpoint: &Fig3Checkpoint) -> Result<PathBuf, PersistError> {
        let path = self.segment_path(checkpoint.kind, checkpoint.completed);
        checkpoint.save_to(&path)?;
        let saved = self.saves.fetch_add(1, Ordering::Relaxed) + 1;
        if let Some(limit) = self.kill_after {
            if saved >= limit {
                eprintln!(
                    "fig3: simulated crash after {saved} checkpoint save(s) \
                     (--kill-after {limit})"
                );
                std::process::exit(42);
            }
        }
        Ok(path)
    }

    /// Segment boundaries of `kind` present on disk, ascending.
    fn boundaries(&self, kind: DeviceKind) -> Vec<usize> {
        let prefix = format!("fig3-{}.seg", kind.slug());
        let mut found: Vec<usize> = std::fs::read_dir(&self.dir)
            .into_iter()
            .flatten()
            .flatten()
            .filter_map(|entry| {
                let name = entry.file_name().into_string().ok()?;
                let rest = name.strip_prefix(&prefix)?.strip_suffix(".ckpt")?;
                rest.parse::<usize>().ok()
            })
            .collect();
        found.sort_unstable();
        found
    }

    /// Loads `kind`'s newest checkpoint that decodes cleanly, if any.
    ///
    /// Corrupt or unreadable files are skipped (newest first) with a
    /// note on stderr — a crash can leave at most torn temp files, but a
    /// degraded disk must not make resume fail outright while an older
    /// valid boundary still exists.
    pub fn latest(&self, kind: DeviceKind) -> Option<Fig3Checkpoint> {
        self.latest_matching(kind, |_| true)
    }

    /// Loads `kind`'s newest checkpoint that decodes cleanly **and**
    /// satisfies `accept`, scanning newest → oldest.
    ///
    /// This is the resume entry point: a stale higher-numbered boundary
    /// (e.g. left over from a run with a different `--segments`) is
    /// reported and scanned *past*, so it can never shadow an older file
    /// that does match the current plan.
    pub fn latest_matching<F>(&self, kind: DeviceKind, accept: F) -> Option<Fig3Checkpoint>
    where
        F: Fn(&Fig3Checkpoint) -> bool,
    {
        for completed in self.boundaries(kind).into_iter().rev() {
            let path = self.segment_path(kind, completed);
            match Fig3Checkpoint::load_from(&path) {
                Ok(checkpoint) if checkpoint.kind != kind => eprintln!(
                    "fig3: ignoring {} (names device {}, expected {kind})",
                    path.display(),
                    checkpoint.kind
                ),
                Ok(checkpoint) if accept(&checkpoint) => return Some(checkpoint),
                Ok(_) => eprintln!(
                    "fig3: ignoring {} (taken under a different plan — \
                     scale/config/segments); trying older boundaries",
                    path.display()
                ),
                Err(e) => eprintln!("fig3: ignoring {}: {e}", path.display()),
            }
        }
        None
    }

    /// Deletes `kind`'s checkpoints at boundaries older than
    /// `completed`, so the directory does not grow unboundedly over a
    /// full endurance run. Best-effort: deletion errors are ignored (the
    /// next prune retries).
    pub fn prune_older(&self, kind: DeviceKind, completed: usize) {
        for old in self.boundaries(kind) {
            if old < completed {
                let _ = std::fs::remove_file(self.segment_path(kind, old));
            }
        }
    }
}

/// Runs the endurance experiment like [`run_pipelined`], additionally
/// persisting every segment-boundary checkpoint into `store` — and, with
/// `resume`, continuing each device from its newest valid on-disk
/// checkpoint instead of from scratch.
///
/// Durability does not perturb the simulation: the persisted bytes are
/// the same frozen state the in-memory pipeline hands between workers,
/// so a run killed at any boundary and resumed from disk renders figures
/// **byte-identical** to an uninterrupted run (the crash-resume CI gate
/// pins this).
///
/// A resumed checkpoint must match the current plan (same capacity,
/// window and byte milestones — i.e. same `--scale`, config and
/// `--segments`); a stale one is reported on stderr and that device
/// starts fresh.
///
/// # Errors
///
/// Returns the first device I/O error, checkpoint-save failure, or
/// restore mismatch any chain hits.
pub fn run_pipelined_durable(
    roster: &DeviceRoster,
    kinds: &[DeviceKind],
    cfg: &Fig3Config,
    segments: usize,
    exec: &Executor,
    store: &CheckpointDir,
    resume: bool,
) -> Result<Vec<Fig3Result>, DurableError> {
    type Stage = Box<
        dyn FnOnce(Result<Fig3Checkpoint, DurableError>) -> Result<Fig3Checkpoint, DurableError>
            + Send,
    >;
    let segments = segments.max(1);
    let mut chains: Vec<(Result<Fig3Checkpoint, DurableError>, Vec<Stage>)> =
        Vec::with_capacity(kinds.len());
    for &kind in kinds {
        // The exact plan a fresh run would execute (`Plan::of` is shared
        // with `SegmentedRun::start`); only a checkpoint taken under this
        // plan may continue it.
        let plan = Plan::of(roster, kind, cfg, segments);
        let from_disk = if resume {
            store.latest_matching(kind, |checkpoint| plan.matches(checkpoint))
        } else {
            None
        };

        let initial: Result<Fig3Checkpoint, DurableError> = match from_disk {
            Some(checkpoint) => {
                eprintln!(
                    "fig3: resuming {kind} from segment boundary {}/{}",
                    checkpoint.completed,
                    checkpoint.milestones.len()
                );
                Ok(checkpoint)
            }
            None => SegmentedRun::start(roster, kind, cfg, segments)
                .map_err(DurableError::Io)
                .and_then(|run| {
                    let checkpoint = run.checkpoint();
                    // Persist the primed (segment-0) state too: a crash
                    // before the first boundary then resumes instead of
                    // re-priming.
                    store.save(&checkpoint).map_err(DurableError::Save)?;
                    Ok(checkpoint)
                }),
        };

        let remaining = match &initial {
            Ok(checkpoint) => segments - checkpoint.completed,
            Err(_) => 0,
        };
        let stages: Vec<Stage> = (0..remaining)
            .map(|_| {
                let roster = roster.clone();
                let store = store.clone();
                Box::new(move |frozen: Result<Fig3Checkpoint, DurableError>| {
                    let mut state =
                        SegmentedRun::resume(&roster, frozen?).map_err(DurableError::Restore)?;
                    state.advance()?;
                    let checkpoint = state.checkpoint();
                    store.save(&checkpoint).map_err(DurableError::Save)?;
                    store.prune_older(checkpoint.kind, checkpoint.completed);
                    Ok(checkpoint)
                }) as Stage
            })
            .collect();
        chains.push((initial, stages));
    }
    exec.run_chains(chains)
        .into_iter()
        .map(|frozen| {
            let state = SegmentedRun::resume(roster, frozen?).map_err(DurableError::Restore)?;
            Ok(state.into_result())
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::render_fig3;

    #[test]
    fn segmented_and_pipelined_match_unsliced_for_every_kind() {
        // The determinism contract of the checkpoint redesign: slicing the
        // endurance run into segments — in-place, with freeze/thaw round
        // trips, or pipelined across workers — must leave the rendered
        // figure byte-identical for every device class.
        let roster = DeviceRoster::with_capacities(128 << 20, 128 << 20);
        let cfg = Fig3Config::quick();
        let pipelined = run_pipelined(
            &roster,
            &DeviceKind::ALL,
            &cfg,
            4,
            &Executor::with_threads(3),
        )
        .unwrap();
        for (i, &kind) in DeviceKind::ALL.iter().enumerate() {
            let unsliced = run(&roster, kind, &cfg).unwrap();
            let segmented = run_segmented(&roster, kind, &cfg, 5).unwrap();
            for (label, sliced) in [("segmented", &segmented), ("pipelined", &pipelined[i])] {
                assert_eq!(sliced.capacity, unsliced.capacity, "{kind}/{label}");
                assert_eq!(
                    sliced.time_series, unsliced.time_series,
                    "{kind}/{label} time series"
                );
                assert_eq!(
                    sliced.volume_series, unsliced.volume_series,
                    "{kind}/{label} volume series"
                );
                assert_eq!(
                    render_fig3(sliced),
                    render_fig3(&unsliced),
                    "{kind}/{label} rendered figure"
                );
            }
        }
    }

    #[test]
    fn segment_bookkeeping_and_checkpoint_flow() {
        let roster = DeviceRoster::with_capacities(128 << 20, 128 << 20);
        let cfg = Fig3Config::quick();
        let mut run = SegmentedRun::start(&roster, DeviceKind::Essd2, &cfg, 3).unwrap();
        assert_eq!(run.segments(), 3);
        assert_eq!(run.completed(), 0);
        assert!(!run.is_finished());
        run.advance().unwrap();
        assert_eq!(run.completed(), 1);
        let frozen = run.checkpoint();
        assert_eq!(frozen.completed, 1);
        assert_eq!(frozen.milestones.len(), 3);
        assert!(frozen.device.device().contains("PL3") || !frozen.device.device().is_empty());
        // A frozen run thaws on a roster clone (another worker's view).
        let mut thawed = SegmentedRun::resume(&roster.clone(), frozen).unwrap();
        while !thawed.is_finished() {
            thawed.advance().unwrap();
        }
        let result = thawed.into_result();
        assert!(result.peak_gbps() > 0.0);
    }

    #[test]
    fn resume_on_mismatched_roster_fails_loudly() {
        let roster = DeviceRoster::with_capacities(128 << 20, 128 << 20);
        let cfg = Fig3Config::quick();
        let run = SegmentedRun::start(&roster, DeviceKind::LocalSsd, &cfg, 2).unwrap();
        let frozen = run.checkpoint();
        // A roster at another scale builds a different device; the name
        // check (or payload check) must reject the stale checkpoint.
        let other = roster.with_scale(2);
        assert!(SegmentedRun::resume(&other, frozen).is_err());
    }

    fn temp_store(name: &str) -> CheckpointDir {
        let dir = std::env::temp_dir()
            .join("uc-fig3-durable-tests")
            .join(format!("{name}-{}", std::process::id()));
        // Stale files from a previous failed run would perturb resume.
        let _ = std::fs::remove_dir_all(&dir);
        CheckpointDir::create(dir).expect("create checkpoint dir")
    }

    #[test]
    fn durable_run_matches_plain_run_and_prunes_stale_files() {
        let roster = DeviceRoster::with_capacities(128 << 20, 128 << 20);
        let cfg = Fig3Config::quick();
        let store = temp_store("durable-matches");
        let durable = run_pipelined_durable(
            &roster,
            &DeviceKind::ALL,
            &cfg,
            4,
            &Executor::with_threads(3),
            &store,
            false,
        )
        .unwrap();
        for (i, &kind) in DeviceKind::ALL.iter().enumerate() {
            let plain = run(&roster, kind, &cfg).unwrap();
            assert_eq!(
                render_fig3(&durable[i]),
                render_fig3(&plain),
                "{kind}: durable run must render byte-identically"
            );
            // Superseded boundaries were pruned: exactly the final
            // checkpoint file remains per device.
            let files: Vec<usize> = store.boundaries(kind);
            assert_eq!(files, vec![4], "{kind}: stale checkpoints must be pruned");
        }
        assert_eq!(store.saves(), 3 * 5, "3 devices x (seg0 + 4 boundaries)");
        let _ = std::fs::remove_dir_all(store.path());
    }

    #[test]
    fn killed_run_resumes_to_byte_identical_figures() {
        // Simulate the crash-resume CI gate in-process: advance each
        // device partway, persist the boundary (as the durable runner
        // would), "crash", then resume from disk and compare against an
        // uninterrupted run.
        let roster = DeviceRoster::with_capacities(128 << 20, 128 << 20);
        let cfg = Fig3Config::quick();
        let segments = 4;
        let store = temp_store("kill-resume");
        for &kind in &DeviceKind::ALL {
            let mut partial = SegmentedRun::start(&roster, kind, &cfg, segments).unwrap();
            partial.advance().unwrap();
            if kind == DeviceKind::Essd2 {
                partial.advance().unwrap(); // devices die at different points
            }
            store.save(&partial.checkpoint()).unwrap();
            // The interrupted process's state is dropped here: only the
            // on-disk checkpoint survives the "crash".
        }
        let resumed = run_pipelined_durable(
            &roster,
            &DeviceKind::ALL,
            &cfg,
            segments,
            &Executor::with_threads(2),
            &store,
            true,
        )
        .unwrap();
        for (i, &kind) in DeviceKind::ALL.iter().enumerate() {
            let uninterrupted = run(&roster, kind, &cfg).unwrap();
            assert_eq!(
                render_fig3(&resumed[i]),
                render_fig3(&uninterrupted),
                "{kind}: kill-and-resume must render byte-identically"
            );
        }
        let _ = std::fs::remove_dir_all(store.path());
    }

    #[test]
    fn stale_plan_checkpoints_are_ignored_on_resume() {
        let roster = DeviceRoster::with_capacities(128 << 20, 128 << 20);
        let cfg = Fig3Config::quick();
        let store = temp_store("stale-plan");
        // A checkpoint taken under a 3-segment plan...
        let mut other = SegmentedRun::start(&roster, DeviceKind::LocalSsd, &cfg, 3).unwrap();
        other.advance().unwrap();
        store.save(&other.checkpoint()).unwrap();
        // ...must not hijack a 5-segment resume: the device starts fresh
        // and still produces the canonical figure.
        let resumed = run_pipelined_durable(
            &roster,
            &[DeviceKind::LocalSsd],
            &cfg,
            5,
            &Executor::sequential(),
            &store,
            true,
        )
        .unwrap();
        let plain = run(&roster, DeviceKind::LocalSsd, &cfg).unwrap();
        assert_eq!(render_fig3(&resumed[0]), render_fig3(&plain));
        let _ = std::fs::remove_dir_all(store.path());
    }

    #[test]
    fn stale_higher_boundary_does_not_shadow_matching_checkpoint() {
        // A leftover seg0003 from an 8-segment plan must be scanned
        // *past*, not merely rejected, so the seg0001 of the current
        // 4-segment plan still resumes.
        let roster = DeviceRoster::with_capacities(128 << 20, 128 << 20);
        let cfg = Fig3Config::quick();
        let store = temp_store("stale-shadow");
        let kind = DeviceKind::LocalSsd;
        let mut stale = SegmentedRun::start(&roster, kind, &cfg, 8).unwrap();
        for _ in 0..3 {
            stale.advance().unwrap();
        }
        store.save(&stale.checkpoint()).unwrap();
        let mut current = SegmentedRun::start(&roster, kind, &cfg, 4).unwrap();
        current.advance().unwrap();
        store.save(&current.checkpoint()).unwrap();

        let found = store
            .latest_matching(kind, |cp| cp.milestones.len() == 4)
            .expect("the matching older boundary must be found");
        assert_eq!(found.completed, 1);
        let resumed = run_pipelined_durable(
            &roster,
            &[kind],
            &cfg,
            4,
            &Executor::sequential(),
            &store,
            true,
        )
        .unwrap();
        let plain = run(&roster, kind, &cfg).unwrap();
        assert_eq!(render_fig3(&resumed[0]), render_fig3(&plain));
        let _ = std::fs::remove_dir_all(store.path());
    }

    #[test]
    fn corrupt_newest_checkpoint_falls_back_to_older_boundary() {
        let roster = DeviceRoster::with_capacities(128 << 20, 128 << 20);
        let cfg = Fig3Config::quick();
        let store = temp_store("corrupt-fallback");
        let kind = DeviceKind::LocalSsd;
        let mut run_state = SegmentedRun::start(&roster, kind, &cfg, 4).unwrap();
        run_state.advance().unwrap();
        store.save(&run_state.checkpoint()).unwrap();
        run_state.advance().unwrap();
        let newest = store.save(&run_state.checkpoint()).unwrap();
        // Torn write: the newest boundary is half a file.
        let bytes = std::fs::read(&newest).unwrap();
        std::fs::write(&newest, &bytes[..bytes.len() / 2]).unwrap();
        let latest = store.latest(kind).expect("older boundary survives");
        assert_eq!(latest.completed, 1, "falls back past the torn file");
        let _ = std::fs::remove_dir_all(store.path());
    }

    #[test]
    fn fig3_checkpoint_file_round_trips_and_rejects_corruption() {
        let roster = DeviceRoster::with_capacities(128 << 20, 128 << 20);
        let cfg = Fig3Config::quick();
        let mut state = SegmentedRun::start(&roster, DeviceKind::Essd1, &cfg, 3).unwrap();
        state.advance().unwrap();
        let checkpoint = state.checkpoint();
        let store = temp_store("file-roundtrip");
        let path = store.save(&checkpoint).unwrap();

        let loaded = Fig3Checkpoint::load_from(&path).unwrap();
        assert_eq!(loaded.kind, checkpoint.kind);
        assert_eq!(loaded.capacity, checkpoint.capacity);
        assert_eq!(loaded.milestones, checkpoint.milestones);
        assert_eq!(loaded.completed, checkpoint.completed);
        // The thawed run continues to the same final figure.
        let mut a = SegmentedRun::resume(&roster, loaded).unwrap();
        let mut b = SegmentedRun::resume(&roster, checkpoint).unwrap();
        while !a.is_finished() {
            a.advance().unwrap();
            b.advance().unwrap();
        }
        assert_eq!(render_fig3(&a.into_result()), render_fig3(&b.into_result()));

        // Corruptions decode to typed errors, never panics.
        let good = std::fs::read(&path).unwrap();
        let mut wrong_magic = good.clone();
        wrong_magic[0] ^= 0xFF;
        std::fs::write(&path, &wrong_magic).unwrap();
        assert!(matches!(
            Fig3Checkpoint::load_from(&path),
            Err(DecodeError::BadMagic)
        ));
        let mut flipped = good.clone();
        let mid = flipped.len() / 2;
        flipped[mid] ^= 0x40;
        std::fs::write(&path, &flipped).unwrap();
        assert!(matches!(
            Fig3Checkpoint::load_from(&path),
            Err(DecodeError::ChecksumMismatch { .. })
        ));
        let mut future = good.clone();
        future[8] = 0xFF; // bump the format version
        std::fs::write(&path, &future).unwrap();
        assert!(matches!(
            Fig3Checkpoint::load_from(&path),
            Err(DecodeError::UnsupportedVersion { .. })
        ));
        let _ = std::fs::remove_dir_all(store.path());
    }

    #[test]
    fn ssd_collapses_near_capacity() {
        let roster = DeviceRoster::with_capacities(128 << 20, 128 << 20);
        let cfg = Fig3Config {
            capacity_multiple: 2.0,
            ..Fig3Config::paper()
        };
        let r = run(&roster, DeviceKind::LocalSsd, &cfg).unwrap();
        assert!(r.peak_gbps() > 1.0, "clean device writes fast");
        let knee = r.knee_multiple().expect("GC collapse must occur");
        assert!(
            (0.5..1.6).contains(&knee),
            "knee at {knee}x capacity, expected near 1x"
        );
        assert!(
            r.tail_gbps() < r.peak_gbps() / 3.0,
            "steady state ({}) far below peak ({})",
            r.tail_gbps(),
            r.peak_gbps()
        );
    }

    #[test]
    fn essd2_sustains_throughout() {
        let roster = DeviceRoster::with_capacities(128 << 20, 128 << 20);
        let r = run(&roster, DeviceKind::Essd2, &Fig3Config::quick()).unwrap();
        assert!(
            r.knee_multiple().is_none(),
            "ESSD-2 must not collapse, knee at {:?}",
            r.knee_multiple()
        );
    }
}
