//! Table I: measured device envelopes.

use crate::devices::{DeviceKind, DeviceRoster};
use crate::experiments::Executor;
use uc_blockdev::IoError;
use uc_workload::{run_job, AccessPattern, JobSpec};

/// One row of Table I, measured on the simulated device (rather than
/// copied from a datasheet): peak bandwidth, peak 4 KiB IOPS, capacity.
#[derive(Debug, Clone, PartialEq)]
pub struct Table1Row {
    /// Which device.
    pub device: DeviceKind,
    /// Device name string.
    pub name: String,
    /// Peak measured bandwidth in GB/s (best of large-I/O read and write).
    pub max_bandwidth_gbps: f64,
    /// Peak measured 4 KiB IOPS (thousands).
    pub max_kiops: f64,
    /// Capacity in GiB.
    pub capacity_gib: f64,
}

/// Measures Table I for every device in the roster, on the default
/// (per-core) executor.
///
/// # Errors
///
/// Propagates the first I/O error from any device.
pub fn run(roster: &DeviceRoster) -> Result<Vec<Table1Row>, IoError> {
    run_with(roster, &Executor::from_env())
}

/// Measures Table I, fanning the per-device envelope probes out on
/// `exec`. Each cell constructs fresh devices inside its worker via
/// [`DeviceRoster::build`] — the default-seed path, keeping the
/// calibrated jitter streams — so results are byte-identical for any
/// executor width.
///
/// # Errors
///
/// Propagates the first I/O error from any device, in device order.
pub fn run_with(roster: &DeviceRoster, exec: &Executor) -> Result<Vec<Table1Row>, IoError> {
    let cells: Vec<_> = DeviceKind::ALL
        .iter()
        .map(|&kind| {
            move || {
                let name = roster.build(kind).info().name().to_string();
                let bw = {
                    let mut best: f64 = 0.0;
                    for pattern in [AccessPattern::RandRead, AccessPattern::RandWrite] {
                        let mut dev = roster.build(kind);
                        let spec = JobSpec::new(pattern, 256 << 10, 32)
                            .with_io_limit(3_000)
                            .with_seed(0x7A);
                        best = best.max(run_job(dev.as_mut(), &spec)?.throughput_gbps());
                    }
                    best
                };
                let kiops = {
                    let mut dev = roster.build(kind);
                    let spec = JobSpec::new(AccessPattern::RandRead, 4096, 32)
                        .with_io_limit(20_000)
                        .with_seed(0x7B);
                    run_job(dev.as_mut(), &spec)?.iops() / 1000.0
                };
                Ok(Table1Row {
                    device: kind,
                    name,
                    max_bandwidth_gbps: bw,
                    max_kiops: kiops,
                    capacity_gib: roster.capacity_of(kind) as f64 / (1u64 << 30) as f64,
                })
            }
        })
        .collect();
    exec.run(cells).into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_has_three_calibrated_rows() {
        let roster = DeviceRoster::with_capacities(128 << 20, 128 << 20);
        let rows = run(&roster).unwrap();
        assert_eq!(rows.len(), 3);
        let by_kind = |k: DeviceKind| rows.iter().find(|r| r.device == k).unwrap();
        let ssd = by_kind(DeviceKind::LocalSsd);
        let e1 = by_kind(DeviceKind::Essd1);
        let e2 = by_kind(DeviceKind::Essd2);
        // Table I ordering: SSD read BW > ESSD-1 budget > ESSD-2 budget.
        assert!(ssd.max_bandwidth_gbps > e1.max_bandwidth_gbps);
        assert!(e1.max_bandwidth_gbps > e2.max_bandwidth_gbps);
        // The local SSD's small-I/O IOPS dwarf both cloud devices'.
        assert!(ssd.max_kiops > e1.max_kiops);
        assert!(ssd.max_kiops > e2.max_kiops);
    }
}
