//! The calibrated device roster of the paper's Table I.

use uc_blockdev::{BlockDevice, CheckpointDevice, DeviceFactory};
use uc_essd::{Essd, EssdConfig};
use uc_ssd::{Ssd, SsdConfig};

/// Which of the paper's three devices to instantiate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeviceKind {
    /// The local-SSD baseline (Samsung 970 Pro class).
    LocalSsd,
    /// ESSD-1 (AWS io2 class).
    Essd1,
    /// ESSD-2 (Alibaba PL3 class).
    Essd2,
}

impl DeviceKind {
    /// All three devices, in the paper's order.
    pub const ALL: [DeviceKind; 3] = [DeviceKind::Essd1, DeviceKind::Essd2, DeviceKind::LocalSsd];

    /// Short label used in tables.
    pub fn label(&self) -> &'static str {
        match self {
            DeviceKind::LocalSsd => "SSD",
            DeviceKind::Essd1 => "ESSD-1",
            DeviceKind::Essd2 => "ESSD-2",
        }
    }

    /// Filename-safe lowercase slug (used in checkpoint file names).
    pub fn slug(&self) -> &'static str {
        match self {
            DeviceKind::LocalSsd => "ssd",
            DeviceKind::Essd1 => "essd-1",
            DeviceKind::Essd2 => "essd-2",
        }
    }
}

impl uc_persist::Persist for DeviceKind {
    fn encode(&self, w: &mut uc_persist::Encoder) {
        w.put_u8(match self {
            DeviceKind::LocalSsd => 0,
            DeviceKind::Essd1 => 1,
            DeviceKind::Essd2 => 2,
        });
    }

    fn decode(r: &mut uc_persist::Decoder<'_>) -> Result<Self, uc_persist::DecodeError> {
        match r.get_u8()? {
            0 => Ok(DeviceKind::LocalSsd),
            1 => Ok(DeviceKind::Essd1),
            2 => Ok(DeviceKind::Essd2),
            _ => Err(uc_persist::DecodeError::InvalidValue {
                what: "DeviceKind tag",
            }),
        }
    }
}

/// The payload codecs of every device class the roster builds.
///
/// This is the registry [`DeviceCheckpoint::load_from`]
/// (`uc_blockdev::DeviceCheckpoint`) needs to thaw an on-disk checkpoint
/// of *any* roster device: the record's kind tag selects the SSD or ESSD
/// decoder, and an unknown tag fails typed instead of misparsing.
pub fn payload_codecs() -> Vec<uc_blockdev::PayloadCodec> {
    vec![
        uc_blockdev::PayloadCodec::of::<uc_ssd::SsdCheckpoint>(),
        uc_blockdev::PayloadCodec::of::<uc_essd::EssdCheckpoint>(),
    ]
}

impl std::fmt::Display for DeviceKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// A factory for fresh instances of the paper's three devices.
///
/// Experiments build a *fresh* device per measurement cell so that FTL and
/// buffer state cannot leak between cells; the roster carries the scaled
/// capacities (the paper's 1 TB SSD / 2 TB ESSDs keep their 1:2 ratio at
/// simulation scale — see DESIGN.md).
///
/// The roster implements [`DeviceFactory`] (keyed by [`DeviceKind`]), so
/// the parallel cell executor — and any other consumer of the factory
/// seam — can hand one shared roster to many worker threads and let each
/// cell build its own device where it runs.
///
/// A `scale` multiplier (see [`DeviceRoster::with_scale`]) grows every
/// capacity proportionally toward the paper's TB-scale settings; `--scale
/// 1024` on the `contract` binary reproduces the paper's full 1 TB / 2 TB
/// geometry.
///
/// # Example
///
/// ```
/// use uc_core::devices::{DeviceKind, DeviceRoster};
///
/// let roster = DeviceRoster::scaled_default();
/// let mut ssd = roster.build(DeviceKind::LocalSsd);
/// assert!(ssd.info().capacity() >= roster.ssd_capacity());
///
/// let bigger = roster.with_scale(4);
/// assert_eq!(bigger.ssd_capacity(), 4 * roster.ssd_capacity());
/// ```
#[derive(Debug, Clone)]
pub struct DeviceRoster {
    ssd_capacity: u64,
    essd_capacity: u64,
    scale: u64,
}

impl DeviceRoster {
    /// The default simulation scale: 1 GiB SSD, 2 GiB ESSDs (the paper's
    /// 1 TB : 2 TB ratio at 1/1024 scale).
    pub fn scaled_default() -> Self {
        DeviceRoster {
            ssd_capacity: 1 << 30,
            essd_capacity: 2 << 30,
            scale: 1,
        }
    }

    /// A roster with explicit capacities.
    ///
    /// # Panics
    ///
    /// Panics if either capacity is below 64 MiB (too small for the scaled
    /// geometries to be meaningful).
    pub fn with_capacities(ssd: u64, essd: u64) -> Self {
        assert!(
            ssd >= 64 << 20 && essd >= 64 << 20,
            "capacities below 64 MiB produce degenerate geometries"
        );
        DeviceRoster {
            ssd_capacity: ssd,
            essd_capacity: essd,
            scale: 1,
        }
    }

    /// This roster with its capacity multiplier *set* to `scale` —
    /// replacing any previous multiplier, so effective capacities are
    /// always `base × scale` (the ROADMAP "scale story" knob: `scale =
    /// 1024` turns the default GiB-scale roster into the paper's TB-scale
    /// devices).
    ///
    /// # Panics
    ///
    /// Panics if `scale` is zero.
    pub fn with_scale(&self, scale: u64) -> Self {
        assert!(scale > 0, "scale multiplier must be positive");
        DeviceRoster {
            ssd_capacity: self.ssd_capacity,
            essd_capacity: self.essd_capacity,
            scale,
        }
    }

    /// The active capacity multiplier.
    pub fn scale(&self) -> u64 {
        self.scale
    }

    /// The SSD's scaled capacity in bytes.
    ///
    /// # Panics
    ///
    /// Panics if `base × scale` overflows `u64` (release builds would
    /// otherwise wrap silently into nonsense geometry).
    pub fn ssd_capacity(&self) -> u64 {
        self.ssd_capacity
            .checked_mul(self.scale)
            .expect("scaled SSD capacity overflows u64")
    }

    /// The ESSDs' scaled capacity in bytes.
    ///
    /// # Panics
    ///
    /// Panics if `base × scale` overflows `u64`.
    pub fn essd_capacity(&self) -> u64 {
        self.essd_capacity
            .checked_mul(self.scale)
            .expect("scaled ESSD capacity overflows u64")
    }

    /// The capacity `kind` is built with.
    pub fn capacity_of(&self, kind: DeviceKind) -> u64 {
        match kind {
            DeviceKind::LocalSsd => self.ssd_capacity(),
            _ => self.essd_capacity(),
        }
    }

    /// Builds a fresh instance of `kind`.
    pub fn build(&self, kind: DeviceKind) -> Box<dyn BlockDevice + Send> {
        match kind {
            DeviceKind::LocalSsd => {
                Box::new(Ssd::new(SsdConfig::samsung_970_pro(self.ssd_capacity())))
            }
            DeviceKind::Essd1 => Box::new(Essd::new(EssdConfig::aws_io2(self.essd_capacity()))),
            DeviceKind::Essd2 => Box::new(Essd::new(EssdConfig::alibaba_pl3(self.essd_capacity()))),
        }
    }

    /// Builds a fresh instance with a distinct jitter seed (for
    /// repeated-trial experiments).
    pub fn build_seeded(&self, kind: DeviceKind, seed: u64) -> Box<dyn BlockDevice + Send> {
        // Same construction as the checkpoint seam, upcast to the plain
        // data-path trait — one copy of the per-kind profiles to maintain.
        self.build_checkpointable(kind, seed)
    }

    /// Builds a fresh, seeded instance through the checkpoint seam: the
    /// same device [`DeviceRoster::build_seeded`] returns, typed so its
    /// complete hidden state can be captured and restored
    /// ([`CheckpointDevice`]).
    ///
    /// This is how the segmented Figure 3 runner moves one device's
    /// endurance timeline between workers: build here, restore the
    /// previous segment's checkpoint into it, run to the next milestone.
    pub fn build_checkpointable(
        &self,
        kind: DeviceKind,
        seed: u64,
    ) -> Box<dyn CheckpointDevice + Send> {
        match kind {
            DeviceKind::LocalSsd => Box::new(Ssd::with_seed(
                SsdConfig::samsung_970_pro(self.ssd_capacity()),
                seed,
            )),
            DeviceKind::Essd1 => Box::new(Essd::new(
                EssdConfig::aws_io2(self.essd_capacity()).with_seed(seed),
            )),
            DeviceKind::Essd2 => Box::new(Essd::new(
                EssdConfig::alibaba_pl3(self.essd_capacity()).with_seed(seed),
            )),
        }
    }
}

impl DeviceFactory for DeviceRoster {
    type Key = DeviceKind;

    fn fresh(&self, key: DeviceKind, seed: u64) -> Box<dyn BlockDevice + Send> {
        self.build_seeded(key, seed)
    }
}

impl Default for DeviceRoster {
    fn default() -> Self {
        DeviceRoster::scaled_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roster_builds_all_kinds() {
        let roster = DeviceRoster::scaled_default();
        for kind in DeviceKind::ALL {
            let dev = roster.build(kind);
            assert!(dev.info().capacity() > 0, "{kind}");
        }
    }

    #[test]
    fn capacities_keep_paper_ratio() {
        let roster = DeviceRoster::scaled_default();
        assert_eq!(roster.essd_capacity(), 2 * roster.ssd_capacity());
        assert_eq!(
            roster.capacity_of(DeviceKind::Essd1),
            roster.capacity_of(DeviceKind::Essd2)
        );
    }

    #[test]
    fn scale_multiplies_every_capacity() {
        let roster = DeviceRoster::scaled_default();
        let scaled = roster.with_scale(8);
        assert_eq!(scaled.scale(), 8);
        assert_eq!(scaled.ssd_capacity(), 8 * roster.ssd_capacity());
        assert_eq!(scaled.essd_capacity(), 8 * roster.essd_capacity());
        for kind in DeviceKind::ALL {
            assert_eq!(scaled.capacity_of(kind), 8 * roster.capacity_of(kind));
        }
        // The paper ratio survives scaling.
        assert_eq!(scaled.essd_capacity(), 2 * scaled.ssd_capacity());
        // with_scale *sets* the multiplier; it does not compose.
        assert_eq!(
            scaled.with_scale(2).ssd_capacity(),
            2 * roster.ssd_capacity()
        );
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_scale_rejected() {
        let _ = DeviceRoster::scaled_default().with_scale(0);
    }

    #[test]
    #[should_panic(expected = "overflows")]
    fn absurd_scale_panics_instead_of_wrapping() {
        let _ = DeviceRoster::scaled_default()
            .with_scale(u64::MAX)
            .ssd_capacity();
    }

    #[test]
    fn roster_is_a_device_factory() {
        fn takes_factory<F: DeviceFactory<Key = DeviceKind>>(f: &F) -> u64 {
            f.fresh(DeviceKind::Essd1, 3).info().capacity()
        }
        let roster = DeviceRoster::scaled_default();
        assert_eq!(takes_factory(&roster), roster.essd_capacity());
        // Factories cross threads: build each kind on its own worker.
        std::thread::scope(|scope| {
            for kind in DeviceKind::ALL {
                let roster = &roster;
                scope.spawn(move || {
                    assert!(roster.fresh(kind, 1).info().capacity() > 0);
                });
            }
        });
    }

    #[test]
    fn checkpointable_build_matches_plain_build() {
        use uc_blockdev::IoRequest;
        use uc_sim::SimTime;
        let roster = DeviceRoster::with_capacities(128 << 20, 128 << 20);
        for kind in DeviceKind::ALL {
            let mut plain = roster.build_seeded(kind, 42);
            let mut ckpt = roster.build_checkpointable(kind, 42);
            assert_eq!(plain.info(), ckpt.info(), "{kind}");
            let mut now = SimTime::ZERO;
            for i in 0..16u64 {
                let req = IoRequest::write((i % 8) * 65536, 65536, now);
                let a = plain.submit(&req).unwrap();
                let b = ckpt.submit(&req).unwrap();
                assert_eq!(a, b, "{kind}");
                now = a;
            }
            // The checkpoint seam is live on the built object.
            let cp = ckpt.checkpoint();
            assert_eq!(cp.device(), ckpt.info().name());
            ckpt.restore_from(cp).unwrap();
        }
    }

    #[test]
    fn labels_match_paper() {
        assert_eq!(DeviceKind::LocalSsd.label(), "SSD");
        assert_eq!(DeviceKind::Essd1.to_string(), "ESSD-1");
    }

    #[test]
    #[should_panic(expected = "64 MiB")]
    fn degenerate_capacity_rejected() {
        let _ = DeviceRoster::with_capacities(1 << 20, 1 << 30);
    }
}
