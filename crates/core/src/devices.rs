//! The calibrated device roster of the paper's Table I.

use uc_blockdev::BlockDevice;
use uc_essd::{Essd, EssdConfig};
use uc_ssd::{Ssd, SsdConfig};

/// Which of the paper's three devices to instantiate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeviceKind {
    /// The local-SSD baseline (Samsung 970 Pro class).
    LocalSsd,
    /// ESSD-1 (AWS io2 class).
    Essd1,
    /// ESSD-2 (Alibaba PL3 class).
    Essd2,
}

impl DeviceKind {
    /// All three devices, in the paper's order.
    pub const ALL: [DeviceKind; 3] = [DeviceKind::Essd1, DeviceKind::Essd2, DeviceKind::LocalSsd];

    /// Short label used in tables.
    pub fn label(&self) -> &'static str {
        match self {
            DeviceKind::LocalSsd => "SSD",
            DeviceKind::Essd1 => "ESSD-1",
            DeviceKind::Essd2 => "ESSD-2",
        }
    }
}

impl std::fmt::Display for DeviceKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// A factory for fresh instances of the paper's three devices.
///
/// Experiments build a *fresh* device per measurement cell so that FTL and
/// buffer state cannot leak between cells; the roster carries the scaled
/// capacities (the paper's 1 TB SSD / 2 TB ESSDs keep their 1:2 ratio at
/// simulation scale — see DESIGN.md).
///
/// # Example
///
/// ```
/// use uc_core::devices::{DeviceKind, DeviceRoster};
///
/// let roster = DeviceRoster::scaled_default();
/// let mut ssd = roster.build(DeviceKind::LocalSsd);
/// assert!(ssd.info().capacity() >= roster.ssd_capacity());
/// ```
#[derive(Debug, Clone)]
pub struct DeviceRoster {
    ssd_capacity: u64,
    essd_capacity: u64,
}

impl DeviceRoster {
    /// The default simulation scale: 1 GiB SSD, 2 GiB ESSDs (the paper's
    /// 1 TB : 2 TB ratio at 1/1024 scale).
    pub fn scaled_default() -> Self {
        DeviceRoster {
            ssd_capacity: 1 << 30,
            essd_capacity: 2 << 30,
        }
    }

    /// A roster with explicit capacities.
    ///
    /// # Panics
    ///
    /// Panics if either capacity is below 64 MiB (too small for the scaled
    /// geometries to be meaningful).
    pub fn with_capacities(ssd: u64, essd: u64) -> Self {
        assert!(
            ssd >= 64 << 20 && essd >= 64 << 20,
            "capacities below 64 MiB produce degenerate geometries"
        );
        DeviceRoster {
            ssd_capacity: ssd,
            essd_capacity: essd,
        }
    }

    /// The SSD's scaled capacity in bytes.
    pub fn ssd_capacity(&self) -> u64 {
        self.ssd_capacity
    }

    /// The ESSDs' scaled capacity in bytes.
    pub fn essd_capacity(&self) -> u64 {
        self.essd_capacity
    }

    /// The capacity `kind` is built with.
    pub fn capacity_of(&self, kind: DeviceKind) -> u64 {
        match kind {
            DeviceKind::LocalSsd => self.ssd_capacity,
            _ => self.essd_capacity,
        }
    }

    /// Builds a fresh instance of `kind`.
    pub fn build(&self, kind: DeviceKind) -> Box<dyn BlockDevice> {
        match kind {
            DeviceKind::LocalSsd => {
                Box::new(Ssd::new(SsdConfig::samsung_970_pro(self.ssd_capacity)))
            }
            DeviceKind::Essd1 => Box::new(Essd::new(EssdConfig::aws_io2(self.essd_capacity))),
            DeviceKind::Essd2 => Box::new(Essd::new(EssdConfig::alibaba_pl3(self.essd_capacity))),
        }
    }

    /// Builds a fresh instance with a distinct jitter seed (for
    /// repeated-trial experiments).
    pub fn build_seeded(&self, kind: DeviceKind, seed: u64) -> Box<dyn BlockDevice> {
        match kind {
            DeviceKind::LocalSsd => Box::new(Ssd::with_seed(
                SsdConfig::samsung_970_pro(self.ssd_capacity),
                seed,
            )),
            DeviceKind::Essd1 => Box::new(Essd::new(
                EssdConfig::aws_io2(self.essd_capacity).with_seed(seed),
            )),
            DeviceKind::Essd2 => Box::new(Essd::new(
                EssdConfig::alibaba_pl3(self.essd_capacity).with_seed(seed),
            )),
        }
    }
}

impl Default for DeviceRoster {
    fn default() -> Self {
        DeviceRoster::scaled_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roster_builds_all_kinds() {
        let roster = DeviceRoster::scaled_default();
        for kind in DeviceKind::ALL {
            let dev = roster.build(kind);
            assert!(dev.info().capacity() > 0, "{kind}");
        }
    }

    #[test]
    fn capacities_keep_paper_ratio() {
        let roster = DeviceRoster::scaled_default();
        assert_eq!(roster.essd_capacity(), 2 * roster.ssd_capacity());
        assert_eq!(
            roster.capacity_of(DeviceKind::Essd1),
            roster.capacity_of(DeviceKind::Essd2)
        );
    }

    #[test]
    fn labels_match_paper() {
        assert_eq!(DeviceKind::LocalSsd.label(), "SSD");
        assert_eq!(DeviceKind::Essd1.to_string(), "ESSD-1");
    }

    #[test]
    #[should_panic(expected = "64 MiB")]
    fn degenerate_capacity_rejected() {
        let _ = DeviceRoster::with_capacities(1 << 20, 1 << 30);
    }
}
