//! The unwritten contract as checkable predicates.
//!
//! Each of the paper's four observations becomes a function from
//! experiment results to an [`ObservationResult`] with a pass/fail verdict
//! and human-readable evidence. [`check_all`] bundles them into a
//! [`ContractReport`].
//!
//! The checks are *shape* checks: they assert the qualitative claims the
//! paper makes (who wins, by roughly what factor, where knees fall), not
//! testbed-exact numbers.

use crate::devices::DeviceKind;
use crate::experiments::{Fig2Result, Fig3Result, Fig4Result, Fig5Result};
use std::fmt;
use thresholds::*;

/// The calibrated pass/fail thresholds of the four observation checks.
///
/// These are **calibrated, not derived**: each encodes where the paper's
/// qualitative claim ("tens of times", "much later", "no longer
/// sensitive") is separated from noise *for the calibrated roster at
/// simulation scale*. Recalibrating the roster (capacities, budgets,
/// network profile) means revisiting this module as a whole — the
/// constants live together so that a recalibration touches one place.
pub mod thresholds {
    /// Obs 1: the worst small-I/O (4 KiB, QD 1) ESSD/SSD latency gap must
    /// be at least this multiple. The paper reports "tens to a hundred
    /// times"; 10× is the floor below which the claim is no longer
    /// qualitatively true.
    pub const OBS1_MIN_SMALL_IO_GAP: f64 = 10.0;

    /// Obs 1: scaling I/Os up (largest size × deepest queue) must shrink
    /// the worst gap by at least this factor versus the small-I/O corner.
    /// The paper's grids collapse from tens-of-× to single digits; a 2×
    /// shrink is the weakest shape consistent with "the gap disappears as
    /// I/Os scale up".
    pub const OBS1_MIN_SCALE_UP_SHRINK: f64 = 2.0;

    /// Obs 1 (single-cell demos): a conservative floor on the 4 KiB/QD 1
    /// random-write gap used by the facade quickstart doctest and smoke
    /// tests that only measure one cell. Half of
    /// [`OBS1_MIN_SMALL_IO_GAP`] — one cell on a reduced-capacity roster
    /// is noisier than the full-grid worst case.
    pub const OBS1_SINGLE_CELL_GAP_FLOOR: f64 = 5.0;

    /// Obs 2: the local SSD's GC knee must appear by this multiple of its
    /// capacity. The paper measures 0.9×; the simulated FTL's gradual
    /// write-amplification ramp lands the half-throughput point a little
    /// later (1.1–1.5× depending on scale), so accept up to 1.6× — still
    /// far from the ESSDs' 2.55× / never.
    pub const OBS2_MAX_SSD_KNEE: f64 = 1.6;

    /// Obs 2: an ESSD knee (if any) must appear at or after this capacity
    /// multiple to count as "much later" than the SSD's ~1× collapse.
    /// ESSD-1's provider throttle engages at 2.55× in the paper.
    pub const OBS2_MIN_ESSD_KNEE: f64 = 2.0;

    /// Obs 3: the pre-GC local SSD's random/sequential write gain must
    /// stay inside this band to count as pattern-indifferent. The band is
    /// asymmetric: the write buffer slightly favors random bursts.
    pub const OBS3_SSD_NEUTRAL_GAIN: (f64, f64) = (0.8, 1.3);

    /// Obs 3: an ESSD's best random/sequential gain must exceed this for
    /// a "clear random-write win". The paper reports 1.52× (ESSD-1) and
    /// 2.79× (ESSD-2); 1.3 separates the win from the SSD's neutral band.
    pub const OBS3_MIN_ESSD_GAIN: f64 = 1.3;

    /// Obs 4: coefficient of variation of an ESSD's total throughput
    /// across read/write mixes must stay below this for "deterministic,
    /// no longer sensitive to the access pattern". A budget-clamped
    /// device measures ≪ 0.05; 0.1 leaves headroom for short-run noise.
    pub const OBS4_MAX_ESSD_CV: f64 = 0.1;

    /// Obs 4: the local SSD's peak-to-trough throughput spread across
    /// mixes must exceed this fraction of its mean — the baseline really
    /// does move with the mix (read and write envelopes differ by ~2×).
    pub const OBS4_MIN_SSD_SPREAD: f64 = 0.15;

    /// Trace experiment: a replay phase whose mean latency exceeds the
    /// device's best phase by more than this factor is flagged as a
    /// burst-overdrive violation — the arrival pattern pushed the device
    /// past its budget (the queueing Implication 4 tells clients to
    /// smooth away). 3× separates real overdrive from the ~2× swing
    /// ordinary queue-depth variation produces.
    pub const TRACE_PHASE_LATENCY_BLOWUP: f64 = 3.0;

    /// Trace experiment: a phase whose last completion runs past the
    /// phase's nominal end by more than this fraction of the phase
    /// length is flagged as sustained saturation — the device is not
    /// absorbing the offered load in the phase it arrived. Transient
    /// spill-over from a burst at a phase edge stays well under half a
    /// phase.
    pub const TRACE_MAX_PHASE_LAG: f64 = 0.5;

    /// Fleet experiment: a tenant whose mean latency exceeds the fleet's
    /// mean of tenant means by more than this factor is flagged as a
    /// noisy-neighbor victim — its requests queue behind co-located
    /// tenants' bursts (latency is measured from the budget grant, so a
    /// tenant's *own* throttling can never trip this). 3× separates real
    /// interference from the spread heterogeneous arrival shapes produce
    /// on a healthy fleet.
    pub const FLEET_TENANT_LATENCY_BLOWUP: f64 = 3.0;

    /// Fleet experiment: an epoch whose Jain fairness index (over the
    /// tenants' inverse mean latencies) falls below this floor is
    /// flagged as a fairness collapse — service quality diverged so far
    /// across tenants that some device's residents are starving, the
    /// placement skew the rebalancer exists to drain. A healthy mixed
    /// fleet stays well above 0.5; one tenant taking everything scores
    /// `1/n`.
    pub const FLEET_MIN_FAIRNESS: f64 = 0.5;
}

/// Verdict and evidence for one observation.
#[derive(Debug, Clone, PartialEq)]
pub struct ObservationResult {
    /// Observation number (1–4).
    pub id: u8,
    /// The paper's one-line statement.
    pub title: String,
    /// Whether the simulated devices uphold the observation.
    pub passed: bool,
    /// Supporting measurements, one line each.
    pub evidence: Vec<String>,
}

impl fmt::Display for ObservationResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Observation #{}: {} — {}",
            self.id,
            self.title,
            if self.passed { "HOLDS" } else { "VIOLATED" }
        )?;
        for line in &self.evidence {
            writeln!(f, "  · {line}")?;
        }
        Ok(())
    }
}

/// All four observations together.
#[derive(Debug, Clone, PartialEq)]
pub struct ContractReport {
    /// Individual verdicts, in observation order.
    pub observations: Vec<ObservationResult>,
}

impl ContractReport {
    /// `true` if every observation holds.
    pub fn all_hold(&self) -> bool {
        self.observations.iter().all(|o| o.passed)
    }
}

impl fmt::Display for ContractReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "=== The Unwritten Contract of Cloud-based ESSDs ===")?;
        for o in &self.observations {
            write!(f, "{o}")?;
        }
        writeln!(
            f,
            "Contract {}",
            if self.all_hold() {
                "UPHELD: all four observations reproduced"
            } else {
                "NOT UPHELD: see violations above"
            }
        )
    }
}

fn fmt_gap(g: f64) -> String {
    format!("{g:.1}x")
}

/// Observation 1: *the latency of ESSDs is tens to a hundred times higher
/// than that of SSD when I/Os are not well scaled up*, the gap shrinking
/// as I/O size and queue depth grow, and smallest for random reads.
///
/// Expects Figure 2 results for the SSD and at least one ESSD (grids must
/// share dimensions).
pub fn check_observation1(ssd: &Fig2Result, essds: &[&Fig2Result]) -> ObservationResult {
    let mut evidence = Vec::new();
    let mut passed = !essds.is_empty();
    let last_q = ssd.queue_depths.len() - 1;
    let last_s = ssd.io_sizes.len() - 1;
    for essd in essds {
        // Gap at the smallest scale, per pattern (0 = rand write,
        // 2 = rand read, 3 = seq read).
        let gaps_small: Vec<f64> = (0..4)
            .map(|p| essd.gap_versus(ssd, p, false)[0][0])
            .collect();
        let gaps_big: Vec<f64> = (0..4)
            .map(|p| essd.gap_versus(ssd, p, false)[last_q][last_s])
            .collect();
        let worst_small = gaps_small.iter().cloned().fold(0.0, f64::max);
        let worst_big = gaps_big.iter().cloned().fold(0.0, f64::max);
        evidence.push(format!(
            "{}: 4K/QD1 gaps [rw {}, sw {}, rr {}, sr {}]; largest gap at full scale {}",
            essd.device,
            fmt_gap(gaps_small[0]),
            fmt_gap(gaps_small[1]),
            fmt_gap(gaps_small[2]),
            fmt_gap(gaps_small[3]),
            fmt_gap(worst_big),
        ));
        // (a) unscaled I/O pays a very large penalty;
        if worst_small < OBS1_MIN_SMALL_IO_GAP {
            passed = false;
            evidence.push(format!(
                "{}: VIOLATION: worst small-I/O gap only {}",
                essd.device,
                fmt_gap(worst_small)
            ));
        }
        // (b) scaling up shrinks the gap substantially;
        if worst_big > worst_small / OBS1_MIN_SCALE_UP_SHRINK {
            passed = false;
            evidence.push(format!(
                "{}: VIOLATION: scaling up did not shrink the gap ({} -> {})",
                essd.device,
                fmt_gap(worst_small),
                fmt_gap(worst_big)
            ));
        }
        // (c) the random-read gap is the smallest of the four patterns.
        let rr = gaps_small[2];
        if gaps_small
            .iter()
            .enumerate()
            .any(|(p, &g)| p != 2 && g < rr)
        {
            passed = false;
            evidence.push(format!(
                "{}: VIOLATION: random-read gap {} is not the smallest",
                essd.device,
                fmt_gap(rr)
            ));
        }
    }
    ObservationResult {
        id: 1,
        title: "ESSD latency is tens to a hundred times the SSD's when I/Os \
                are not scaled up"
            .to_string(),
        passed,
        evidence,
    }
}

/// Observation 2: *the performance impact of GC appears much later or even
/// disappears* on ESSDs, while the local SSD collapses near 1× capacity.
pub fn check_observation2(results: &[&Fig3Result]) -> ObservationResult {
    let mut evidence = Vec::new();
    let mut passed = true;
    let mut saw_ssd = false;
    for r in results {
        let knee = r.knee_multiple();
        match knee {
            Some(k) => evidence.push(format!(
                "{}: peak {:.2} GB/s, knee at {:.2}x capacity, tail {:.2} GB/s",
                r.device,
                r.peak_gbps(),
                k,
                r.tail_gbps()
            )),
            None => evidence.push(format!(
                "{}: peak {:.2} GB/s, sustained to end of run (no knee)",
                r.device,
                r.peak_gbps()
            )),
        }
        match r.device {
            DeviceKind::LocalSsd => {
                saw_ssd = true;
                match knee {
                    Some(k) if k <= OBS2_MAX_SSD_KNEE => {}
                    _ => {
                        passed = false;
                        evidence.push(format!(
                            "{}: VIOLATION: expected GC collapse near 1x capacity",
                            r.device
                        ));
                    }
                }
            }
            _ => {
                // ESSDs: knee absent, or far later than the SSD's.
                if let Some(k) = knee {
                    if k < OBS2_MIN_ESSD_KNEE {
                        passed = false;
                        evidence.push(format!(
                            "{}: VIOLATION: knee at {k:.2}x is not 'much later'",
                            r.device
                        ));
                    }
                }
            }
        }
    }
    if !saw_ssd {
        passed = false;
        evidence.push("VIOLATION: no local-SSD baseline provided".to_string());
    }
    ObservationResult {
        id: 2,
        title: "The performance impact of GC appears much later or even \
                disappears"
            .to_string(),
        passed,
        evidence,
    }
}

/// Observation 3: *random-write throughput outperforms sequential-write
/// throughput* on ESSDs (up to 1.52× / 2.79× in the paper), while the
/// pre-GC local SSD is pattern-indifferent.
pub fn check_observation3(results: &[&Fig4Result]) -> ObservationResult {
    let mut evidence = Vec::new();
    let mut passed = true;
    for r in results {
        let (gain, qd, size) = r.max_gain();
        evidence.push(format!(
            "{}: max random/sequential gain {:.2}x at QD{} / {} KiB",
            r.device,
            gain,
            qd,
            size >> 10
        ));
        match r.device {
            DeviceKind::LocalSsd => {
                if !(OBS3_SSD_NEUTRAL_GAIN.0..=OBS3_SSD_NEUTRAL_GAIN.1).contains(&gain) {
                    passed = false;
                    evidence.push(format!(
                        "{}: VIOLATION: pre-GC SSD should be pattern-neutral",
                        r.device
                    ));
                }
            }
            _ => {
                if gain < OBS3_MIN_ESSD_GAIN {
                    passed = false;
                    evidence.push(format!(
                        "{}: VIOLATION: expected a clear random-write win",
                        r.device
                    ));
                }
            }
        }
    }
    ObservationResult {
        id: 3,
        title: "Random-write throughput outperforms sequential-write \
                throughput on ESSDs"
            .to_string(),
        passed,
        evidence,
    }
}

/// Observation 4: *the maximum bandwidth is deterministic and no longer
/// sensitive to the access pattern* on ESSDs, while the local SSD's
/// envelope moves with the read/write mix.
pub fn check_observation4(ssd: &Fig5Result, essds: &[&Fig5Result]) -> ObservationResult {
    let mut evidence = Vec::new();
    let mut passed = true;
    for r in essds {
        evidence.push(format!(
            "{}: total throughput mean {:.2} GB/s, cv {:.3} across mixes",
            r.device,
            r.mean_total_gbps(),
            r.total_cv()
        ));
        if r.total_cv() > OBS4_MAX_ESSD_CV {
            passed = false;
            evidence.push(format!(
                "{}: VIOLATION: budget-clamped bandwidth should be flat",
                r.device
            ));
        }
    }
    evidence.push(format!(
        "{}: total throughput {:.2}..{:.2} GB/s (spread {:.0}% of mean)",
        ssd.device,
        uc_metrics::SummaryStats::from_samples(&ssd.total_gbps).min(),
        uc_metrics::SummaryStats::from_samples(&ssd.total_gbps).max(),
        ssd.total_spread() * 100.0
    ));
    if ssd.total_spread() < OBS4_MIN_SSD_SPREAD {
        passed = false;
        evidence.push("SSD: VIOLATION: local SSD bandwidth should vary with the mix".to_string());
    }
    ObservationResult {
        id: 4,
        title: "The maximum bandwidth is deterministic and no longer \
                sensitive to the access pattern"
            .to_string(),
        passed,
        evidence,
    }
}

/// Everything [`check_all`] consumes: per-device results for Figures 2–5.
#[derive(Debug, Clone)]
pub struct ContractInputs {
    /// Figure 2 for the local SSD.
    pub fig2_ssd: Fig2Result,
    /// Figure 2 for each ESSD.
    pub fig2_essds: Vec<Fig2Result>,
    /// Figure 3 for all devices (must include the local SSD).
    pub fig3: Vec<Fig3Result>,
    /// Figure 4 for all devices.
    pub fig4: Vec<Fig4Result>,
    /// Figure 5 for the local SSD.
    pub fig5_ssd: Fig5Result,
    /// Figure 5 for each ESSD.
    pub fig5_essds: Vec<Fig5Result>,
}

/// Checks all four observations.
pub fn check_all(inputs: &ContractInputs) -> ContractReport {
    let fig2_refs: Vec<&Fig2Result> = inputs.fig2_essds.iter().collect();
    let fig3_refs: Vec<&Fig3Result> = inputs.fig3.iter().collect();
    let fig4_refs: Vec<&Fig4Result> = inputs.fig4.iter().collect();
    let fig5_refs: Vec<&Fig5Result> = inputs.fig5_essds.iter().collect();
    ContractReport {
        observations: vec![
            check_observation1(&inputs.fig2_ssd, &fig2_refs),
            check_observation2(&fig3_refs),
            check_observation3(&fig4_refs),
            check_observation4(&inputs.fig5_ssd, &fig5_refs),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::{LatencyCell, PatternGrid};
    use uc_sim::SimDuration;
    use uc_workload::AccessPattern;

    /// Builds a 2x2 grid where the device's latency scales by `grow` from
    /// the (4K, QD1) corner to the (256K, QD16) corner.
    fn synthetic_fig2(device: DeviceKind, base_us: u64, rr_us: u64, grow: u64) -> Fig2Result {
        let cell = |us: u64| LatencyCell {
            avg: SimDuration::from_micros(us),
            p999: SimDuration::from_micros(us * 3),
        };
        let grid = |us: u64| PatternGrid {
            pattern: AccessPattern::RandWrite,
            cells: vec![
                vec![cell(us), cell(us * grow)],
                vec![cell(us), cell(us * grow)],
            ],
        };
        Fig2Result {
            device,
            io_sizes: vec![4096, 262144],
            queue_depths: vec![1, 16],
            grids: vec![grid(base_us), grid(base_us), grid(rr_us), grid(base_us)],
        }
    }

    #[test]
    fn observation1_passes_on_paper_shape() {
        // SSD latency grows 10x with I/O size (transfer-bound); the ESSD
        // stays flat (network-bound): the gap collapses from 33x to 3.3x.
        let ssd = synthetic_fig2(DeviceKind::LocalSsd, 10, 50, 10);
        let essd = synthetic_fig2(DeviceKind::Essd1, 330, 470, 1);
        let res = check_observation1(&ssd, &[&essd]);
        assert!(res.passed, "{res}");
    }

    #[test]
    fn observation1_fails_when_gap_small() {
        let ssd = synthetic_fig2(DeviceKind::LocalSsd, 100, 100, 1);
        let essd = synthetic_fig2(DeviceKind::Essd1, 150, 140, 1);
        let res = check_observation1(&ssd, &[&essd]);
        assert!(!res.passed);
    }

    fn synthetic_fig3(device: DeviceKind, knee_at: Option<f64>) -> Fig3Result {
        let mut pts = Vec::new();
        for i in 0..300 {
            let x = i as f64 / 100.0; // 0..3x capacity
            let y = match knee_at {
                Some(k) if x > k => 0.2,
                _ => 2.7,
            };
            pts.push((x, y));
        }
        Fig3Result {
            device,
            capacity: 1 << 30,
            time_series: uc_metrics::Series::from_points("t", pts.clone()),
            volume_series: uc_metrics::Series::from_points("v", pts),
        }
    }

    #[test]
    fn observation2_passes_on_paper_shape() {
        let ssd = synthetic_fig3(DeviceKind::LocalSsd, Some(0.9));
        let e1 = synthetic_fig3(DeviceKind::Essd1, Some(2.55));
        let e2 = synthetic_fig3(DeviceKind::Essd2, None);
        let res = check_observation2(&[&ssd, &e1, &e2]);
        assert!(res.passed, "{res}");
    }

    #[test]
    fn observation2_fails_if_essd_collapses_early() {
        let ssd = synthetic_fig3(DeviceKind::LocalSsd, Some(0.9));
        let e1 = synthetic_fig3(DeviceKind::Essd1, Some(1.0));
        let res = check_observation2(&[&ssd, &e1]);
        assert!(!res.passed);
    }

    fn synthetic_fig4(device: DeviceKind, gain: f64) -> Fig4Result {
        Fig4Result {
            device,
            io_sizes: vec![4096],
            queue_depths: vec![32],
            rand_gbps: vec![vec![gain]],
            seq_gbps: vec![vec![1.0]],
        }
    }

    #[test]
    fn observation3_checks_gain_split() {
        let res = check_observation3(&[
            &synthetic_fig4(DeviceKind::LocalSsd, 1.0),
            &synthetic_fig4(DeviceKind::Essd1, 1.5),
            &synthetic_fig4(DeviceKind::Essd2, 2.8),
        ]);
        assert!(res.passed, "{res}");
        let res = check_observation3(&[&synthetic_fig4(DeviceKind::Essd1, 1.05)]);
        assert!(!res.passed);
    }

    fn synthetic_fig5(device: DeviceKind, totals: Vec<f64>) -> Fig5Result {
        Fig5Result {
            device,
            write_ratios: (0..totals.len()).map(|i| i as f64).collect(),
            write_gbps: vec![0.0; totals.len()],
            total_gbps: totals,
        }
    }

    #[test]
    fn observation4_checks_flat_versus_varying() {
        let ssd = synthetic_fig5(DeviceKind::LocalSsd, vec![3.5, 4.3, 2.5, 2.7]);
        let e1 = synthetic_fig5(DeviceKind::Essd1, vec![3.0, 3.01, 2.99, 3.0]);
        let res = check_observation4(&ssd, &[&e1]);
        assert!(res.passed, "{res}");

        let wobbly = synthetic_fig5(DeviceKind::Essd1, vec![3.0, 2.0, 1.0, 2.5]);
        let res = check_observation4(&ssd, &[&wobbly]);
        assert!(!res.passed);
    }

    #[test]
    fn report_display_mentions_verdicts() {
        let ssd = synthetic_fig5(DeviceKind::LocalSsd, vec![3.5, 2.5]);
        let e1 = synthetic_fig5(DeviceKind::Essd1, vec![3.0, 3.0]);
        let obs = check_observation4(&ssd, &[&e1]);
        let report = ContractReport {
            observations: vec![obs],
        };
        let text = report.to_string();
        assert!(text.contains("HOLDS"));
        assert!(text.contains("Unwritten Contract"));
        assert!(report.all_hold());
    }
}
