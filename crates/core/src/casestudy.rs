//! Cloud-software case study: a leveled LSM-tree storage engine.
//!
//! The paper's future work (§V) names RocksDB as the first case study for
//! exploiting the unwritten contract. This module models the I/O behaviour
//! of a leveled LSM engine — memtable flushes plus leveled compactions —
//! and its contract-aware alternative, an in-place update table, and runs
//! both against any device:
//!
//! * [`run_lsm`] — classic log-structured ingestion: every flushed byte is
//!   re-read and re-written by compaction roughly `fanout/2 + 1` times per
//!   level it descends, all as *sequential* I/O,
//! * [`run_inplace`] — Implication 3 applied: updates go to their home
//!   location as *random* writes, no compaction at all.
//!
//! On the local SSD the LSM design wins (random writes provoke GC); on an
//! elastic SSD the in-place design can win twice over — random writes are
//! faster there (Observation 3) *and* the compaction volume disappears.

use std::fmt;
use uc_blockdev::{BlockDevice, IoError};
use uc_sim::{SimDuration, SimTime};
use uc_workload::{run_job, AccessPattern, JobSpec};

/// Shape of the modeled LSM engine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LsmConfig {
    /// Bytes buffered before a memtable flush.
    pub memtable_bytes: u64,
    /// Size ratio between adjacent levels.
    pub fanout: u64,
    /// Number of on-disk levels.
    pub levels: usize,
    /// I/O size used by flush and compaction (large sequential segments).
    pub segment_io: u32,
    /// I/O size used by in-place updates.
    pub update_io: u32,
    /// Total application bytes to ingest.
    pub ingest_bytes: u64,
}

impl LsmConfig {
    /// A small RocksDB-flavoured configuration scaled to simulation-sized
    /// devices: 8 MiB memtables, fanout 8, 3 levels, 512 KiB segments,
    /// 16 KiB updates, 256 MiB of ingest.
    pub fn scaled_default() -> Self {
        LsmConfig {
            memtable_bytes: 8 << 20,
            fanout: 8,
            levels: 3,
            segment_io: 512 << 10,
            update_io: 16 << 10,
            ingest_bytes: 256 << 20,
        }
    }

    /// Replaces the ingest volume.
    pub fn with_ingest_bytes(mut self, bytes: u64) -> Self {
        self.ingest_bytes = bytes.max(self.memtable_bytes);
        self
    }
}

/// What an engine run did to the device.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EngineOutcome {
    /// Application bytes ingested.
    pub ingest_bytes: u64,
    /// Bytes the engine wrote to the device (flushes + compactions, or
    /// in-place updates).
    pub device_bytes_written: u64,
    /// Bytes the engine read back for compaction.
    pub device_bytes_read: u64,
    /// Wall-clock (virtual) time of the run.
    pub elapsed: SimDuration,
}

impl EngineOutcome {
    /// Application-visible ingest rate in GB/s.
    pub fn ingest_gbps(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.ingest_bytes as f64 / 1e9 / secs
        }
    }

    /// Engine-level write amplification (device writes per app byte).
    pub fn write_amplification(&self) -> f64 {
        if self.ingest_bytes == 0 {
            0.0
        } else {
            self.device_bytes_written as f64 / self.ingest_bytes as f64
        }
    }
}

impl fmt::Display for EngineOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ingest {:.2} GB/s, engine WA {:.2}, read-back {} MiB, {:.3}s",
            self.ingest_gbps(),
            self.write_amplification(),
            self.device_bytes_read >> 20,
            self.elapsed.as_secs_f64()
        )
    }
}

/// Runs the leveled-LSM ingestion model on `dev`, starting at `start`.
///
/// The device address space is split into per-level regions sized by the
/// fanout; every flush seq-writes one memtable into level 0, and whenever
/// level `i` exceeds its budget, a compaction seq-reads the spilled data
/// plus the overlapping `~fanout/2` share of level `i+1` and seq-writes the
/// merge result into level `i+1` — the textbook leveled-compaction cost
/// model, executed as real device jobs.
///
/// # Errors
///
/// Propagates device validation errors (e.g. the configured regions do not
/// fit the device).
pub fn run_lsm<D: BlockDevice + ?Sized>(
    dev: &mut D,
    cfg: &LsmConfig,
    start: SimTime,
) -> Result<EngineOutcome, IoError> {
    let capacity = dev.info().capacity();
    // Region plan: level i gets memtable * fanout^(i+1) bytes, clamped so
    // the sum fits the device.
    let mut region_size: Vec<u64> = (0..cfg.levels)
        .map(|i| {
            cfg.memtable_bytes
                .saturating_mul(cfg.fanout.saturating_pow(i as u32 + 1))
        })
        .collect();
    let total: u64 = region_size.iter().sum();
    if total > capacity {
        let scale = capacity as f64 / total as f64;
        for r in &mut region_size {
            *r =
                ((*r as f64 * scale) as u64 / cfg.segment_io as u64).max(1) * cfg.segment_io as u64;
        }
    }
    let mut region_start = Vec::with_capacity(cfg.levels);
    let mut cursor = 0u64;
    for r in &region_size {
        region_start.push(cursor);
        cursor += r;
    }

    let mut now = start;
    let mut written = 0u64;
    let mut read_back = 0u64;
    let mut level_fill = vec![0u64; cfg.levels];
    let mut flushed = 0u64;
    let mut job_seq = 0u64;

    let run_io = |dev: &mut D,
                  pattern: AccessPattern,
                  bytes: u64,
                  region: usize,
                  at: SimTime,
                  seq: u64|
     -> Result<SimTime, IoError> {
        let span_start = region_start[region];
        let span_end = span_start + region_size[region];
        let spec = JobSpec::new(pattern, cfg.segment_io, 8)
            .with_byte_limit(bytes.max(cfg.segment_io as u64))
            .with_span(span_start, span_end)
            .with_seed(0x15A + seq)
            .with_start(at);
        Ok(run_job(dev, &spec)?.finished_at)
    };

    while flushed < cfg.ingest_bytes {
        // Flush one memtable into L0.
        let batch = cfg.memtable_bytes.min(cfg.ingest_bytes - flushed);
        now = run_io(dev, AccessPattern::SeqWrite, batch, 0, now, job_seq)?;
        job_seq += 1;
        flushed += batch;
        written += batch;
        level_fill[0] += batch;

        // Cascade compactions down the levels.
        for level in 0..cfg.levels - 1 {
            if level_fill[level] <= region_size[level] {
                break;
            }
            let spill = level_fill[level] - region_size[level] / 2;
            // Read the spilled run plus its overlap in the next level.
            let overlap = (spill * cfg.fanout / 2).min(level_fill[level + 1]);
            now = run_io(
                dev,
                AccessPattern::SeqRead,
                spill + overlap,
                level,
                now,
                job_seq,
            )?;
            job_seq += 1;
            read_back += spill + overlap;
            // Write the merged result into the next level.
            let merged = spill + overlap;
            now = run_io(
                dev,
                AccessPattern::SeqWrite,
                merged,
                level + 1,
                now,
                job_seq,
            )?;
            job_seq += 1;
            written += merged;
            level_fill[level] -= spill;
            level_fill[level + 1] += merged;
            // The deepest level discards overflow (tombstones/overwrites).
            let last = cfg.levels - 1;
            level_fill[last] = level_fill[last].min(region_size[last]);
        }
    }

    Ok(EngineOutcome {
        ingest_bytes: cfg.ingest_bytes,
        device_bytes_written: written,
        device_bytes_read: read_back,
        elapsed: now.saturating_since(start),
    })
}

/// Runs the contract-aware alternative: in-place random updates, no
/// compaction (Implication 3).
///
/// # Errors
///
/// Propagates device validation errors.
pub fn run_inplace<D: BlockDevice + ?Sized>(
    dev: &mut D,
    cfg: &LsmConfig,
    start: SimTime,
) -> Result<EngineOutcome, IoError> {
    let spec = JobSpec::new(AccessPattern::RandWrite, cfg.update_io, 8)
        .with_byte_limit(cfg.ingest_bytes)
        .with_seed(0x1A7)
        .with_start(start);
    let report = run_job(dev, &spec)?;
    Ok(EngineOutcome {
        ingest_bytes: cfg.ingest_bytes,
        device_bytes_written: report.bytes,
        device_bytes_read: 0,
        elapsed: report.elapsed(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::devices::{DeviceKind, DeviceRoster};

    fn cfg() -> LsmConfig {
        LsmConfig::scaled_default().with_ingest_bytes(48 << 20)
    }

    #[test]
    fn lsm_amplifies_writes_inplace_does_not() {
        let roster = DeviceRoster::with_capacities(128 << 20, 128 << 20);
        let mut dev = roster.build(DeviceKind::LocalSsd);
        let lsm = run_lsm(dev.as_mut(), &cfg(), SimTime::ZERO).unwrap();
        assert!(
            lsm.write_amplification() > 1.5,
            "leveled compaction must amplify: {}",
            lsm.write_amplification()
        );
        assert!(lsm.device_bytes_read > 0, "compaction reads data back");

        let mut dev = roster.build(DeviceKind::LocalSsd);
        let inplace = run_inplace(dev.as_mut(), &cfg(), SimTime::ZERO).unwrap();
        assert_eq!(inplace.write_amplification(), 1.0);
        assert_eq!(inplace.device_bytes_read, 0);
    }

    #[test]
    fn contract_flips_the_design_choice_on_essd2() {
        let roster = DeviceRoster::with_capacities(128 << 20, 128 << 20);
        // ESSD-2: in-place random updates beat the compaction pipeline.
        let mut dev = roster.build(DeviceKind::Essd2);
        let lsm = run_lsm(dev.as_mut(), &cfg(), SimTime::ZERO).unwrap();
        let mut dev = roster.build(DeviceKind::Essd2);
        let inplace = run_inplace(dev.as_mut(), &cfg(), SimTime::ZERO).unwrap();
        assert!(
            inplace.ingest_gbps() > lsm.ingest_gbps(),
            "ESSD-2: in-place ({:.3}) should beat LSM ({:.3})",
            inplace.ingest_gbps(),
            lsm.ingest_gbps()
        );
    }

    #[test]
    fn outcome_accounting_is_consistent() {
        let roster = DeviceRoster::with_capacities(128 << 20, 128 << 20);
        let mut dev = roster.build(DeviceKind::LocalSsd);
        let out = run_lsm(dev.as_mut(), &cfg(), SimTime::ZERO).unwrap();
        assert_eq!(out.ingest_bytes, 48 << 20);
        assert!(out.device_bytes_written >= out.ingest_bytes);
        assert!(out.elapsed > SimDuration::ZERO);
        assert!(!out.to_string().is_empty());
    }

    #[test]
    fn regions_scale_down_to_small_devices() {
        // A config whose nominal regions exceed the device must still run.
        let roster = DeviceRoster::with_capacities(128 << 20, 128 << 20);
        let big = LsmConfig {
            memtable_bytes: 16 << 20,
            fanout: 10,
            levels: 3,
            ..LsmConfig::scaled_default()
        }
        .with_ingest_bytes(64 << 20);
        let mut dev = roster.build(DeviceKind::LocalSsd);
        let out = run_lsm(dev.as_mut(), &big, SimTime::ZERO).unwrap();
        assert!(out.ingest_gbps() > 0.0);
    }
}
