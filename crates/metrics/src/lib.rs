//! Measurement primitives for the Unwritten Contract framework.
//!
//! The paper's experiments report average latency, P99.9 latency, and
//! throughput over time. This crate provides the collectors those numbers
//! come from:
//!
//! * [`LatencyHistogram`] — an HDR-style log-bucketed histogram with ~1.5 %
//!   relative error, exact count/sum/min/max, and percentile queries,
//! * [`ThroughputTracker`] — windowed byte accounting producing a
//!   throughput-versus-time series (Figure 3 of the paper),
//! * [`Series`] — a simple `(x, y)` series with summary helpers,
//! * [`SummaryStats`] — mean / standard deviation / coefficient of
//!   variation over a slice of floats (used by the Observation 4 checker).
//!
//! # Example
//!
//! ```
//! use uc_metrics::LatencyHistogram;
//! use uc_sim::SimDuration;
//!
//! let mut hist = LatencyHistogram::new();
//! for us in 1..=1000u64 {
//!     hist.record(SimDuration::from_micros(us));
//! }
//! assert_eq!(hist.count(), 1000);
//! let p50 = hist.percentile(50.0).as_micros_f64();
//! assert!((p50 - 500.0).abs() / 500.0 < 0.05);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod hist;
mod series;
mod stats;
mod throughput;

pub use hist::LatencyHistogram;
pub use series::Series;
pub use stats::SummaryStats;
pub use throughput::ThroughputTracker;
