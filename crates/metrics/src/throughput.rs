//! Windowed throughput tracking.

use crate::Series;
use uc_sim::{SimDuration, SimTime};

/// Accumulates completed bytes into fixed-width time windows.
///
/// This is the collector behind the paper's Figure 3 (runtime throughput of
/// a sustained random-write workload): every completed I/O deposits its byte
/// count into the window containing its completion time, and
/// [`ThroughputTracker::series`] converts the windows into a
/// gigabytes-per-second time series.
///
/// # Example
///
/// ```
/// use uc_metrics::ThroughputTracker;
/// use uc_sim::{SimDuration, SimTime};
///
/// let mut t = ThroughputTracker::new(SimDuration::from_secs(1));
/// t.record(SimTime::from_nanos(500_000_000), 1 << 30); // 1 GiB in window 0
/// let series = t.series();
/// assert_eq!(series.len(), 1);
/// assert!((series.points()[0].1 - 1.073).abs() < 0.01); // ~1.07 GB/s
/// ```
#[derive(Debug, Clone)]
pub struct ThroughputTracker {
    window: SimDuration,
    windows: Vec<u64>,
    total_bytes: u64,
    last_time: SimTime,
}

impl ThroughputTracker {
    /// A tracker with the given window width.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn new(window: SimDuration) -> Self {
        assert!(!window.is_zero(), "throughput window must be non-zero");
        ThroughputTracker {
            window,
            windows: Vec::new(),
            total_bytes: 0,
            last_time: SimTime::ZERO,
        }
    }

    /// The window width.
    pub fn window(&self) -> SimDuration {
        self.window
    }

    /// Records `bytes` completed at instant `at`.
    pub fn record(&mut self, at: SimTime, bytes: u64) {
        let idx = (at.as_nanos() / self.window.as_nanos()) as usize;
        if idx >= self.windows.len() {
            self.windows.resize(idx + 1, 0);
        }
        self.windows[idx] += bytes;
        self.total_bytes += bytes;
        self.last_time = self.last_time.max(at);
    }

    /// Total bytes recorded.
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// The latest completion instant seen.
    pub fn last_time(&self) -> SimTime {
        self.last_time
    }

    /// Overall average throughput in GB/s (decimal gigabytes), or zero if
    /// nothing has been recorded.
    pub fn average_gbps(&self) -> f64 {
        let secs = self.last_time.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.total_bytes as f64 / 1e9 / secs
        }
    }

    /// The per-window throughput series: `(window start in seconds, GB/s)`.
    pub fn series(&self) -> Series {
        let w_secs = self.window.as_secs_f64();
        let points = self
            .windows
            .iter()
            .enumerate()
            .map(|(i, &bytes)| (i as f64 * w_secs, bytes as f64 / 1e9 / w_secs))
            .collect();
        Series::from_points("throughput (GB/s)", points)
    }

    /// Cumulative bytes written by the end of each window.
    pub fn cumulative_series(&self) -> Series {
        let w_secs = self.window.as_secs_f64();
        let mut cum = 0u64;
        let points = self
            .windows
            .iter()
            .enumerate()
            .map(|(i, &bytes)| {
                cum += bytes;
                ((i + 1) as f64 * w_secs, cum as f64)
            })
            .collect();
        Series::from_points("cumulative bytes", points)
    }

    /// Discards all recorded data, keeping the window width.
    pub fn clear(&mut self) {
        self.windows.clear();
        self.total_bytes = 0;
        self.last_time = SimTime::ZERO;
    }
}

impl uc_persist::Persist for ThroughputTracker {
    fn encode(&self, w: &mut uc_persist::Encoder) {
        self.window.encode(w);
        self.windows.encode(w);
        w.put_u64(self.total_bytes);
        self.last_time.encode(w);
    }

    fn decode(r: &mut uc_persist::Decoder<'_>) -> Result<Self, uc_persist::DecodeError> {
        let window = SimDuration::decode(r)?;
        if window.is_zero() {
            return Err(uc_persist::DecodeError::InvalidValue {
                what: "ThroughputTracker.window",
            });
        }
        Ok(ThroughputTracker {
            window,
            windows: Vec::<u64>::decode(r)?,
            total_bytes: r.get_u64()?,
            last_time: SimTime::decode(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uc_persist::Persist;

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_window_rejected() {
        let _ = ThroughputTracker::new(SimDuration::ZERO);
    }

    #[test]
    fn bytes_land_in_correct_windows() {
        let mut t = ThroughputTracker::new(SimDuration::from_secs(1));
        t.record(SimTime::from_nanos(100), 10);
        t.record(SimTime::ZERO + SimDuration::from_millis(2500), 20);
        let s = t.series();
        assert_eq!(s.len(), 3);
        let pts = s.points();
        assert!((pts[0].1 - 10.0 / 1e9).abs() < 1e-15);
        assert_eq!(pts[1].1, 0.0);
        assert!((pts[2].1 - 20.0 / 1e9).abs() < 1e-15);
    }

    #[test]
    fn totals_and_average() {
        let mut t = ThroughputTracker::new(SimDuration::from_secs(1));
        t.record(SimTime::ZERO + SimDuration::from_secs(2), 4_000_000_000);
        assert_eq!(t.total_bytes(), 4_000_000_000);
        assert!((t.average_gbps() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn cumulative_is_nondecreasing() {
        let mut t = ThroughputTracker::new(SimDuration::from_millis(100));
        for i in 0..50 {
            t.record(SimTime::from_nanos(i * 37_000_000), 5);
        }
        let cum = t.cumulative_series();
        let pts = cum.points();
        for w in pts.windows(2) {
            assert!(w[1].1 >= w[0].1);
        }
        assert_eq!(pts.last().map(|p| p.1), Some(250.0));
    }

    #[test]
    fn persist_round_trip_is_lossless() {
        let mut t = ThroughputTracker::new(SimDuration::from_millis(10));
        for i in 0..100u64 {
            t.record(SimTime::from_nanos(i * 7_000_000), 1000 + i);
        }
        let mut w = uc_persist::Encoder::new();
        t.encode(&mut w);
        let bytes = w.into_bytes();
        let mut r = uc_persist::Decoder::new(&bytes);
        let back = ThroughputTracker::decode(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(back.window(), t.window());
        assert_eq!(back.total_bytes(), t.total_bytes());
        assert_eq!(back.last_time(), t.last_time());
        assert_eq!(back.series(), t.series());
    }

    #[test]
    fn persist_rejects_zero_window() {
        let mut w = uc_persist::Encoder::new();
        SimDuration::ZERO.encode(&mut w);
        Vec::<u64>::new().encode(&mut w);
        w.put_u64(0);
        SimTime::ZERO.encode(&mut w);
        let bytes = w.into_bytes();
        assert!(matches!(
            ThroughputTracker::decode(&mut uc_persist::Decoder::new(&bytes)),
            Err(uc_persist::DecodeError::InvalidValue {
                what: "ThroughputTracker.window"
            })
        ));
    }

    #[test]
    fn clear_resets() {
        let mut t = ThroughputTracker::new(SimDuration::from_secs(1));
        t.record(SimTime::from_nanos(5), 5);
        t.clear();
        assert_eq!(t.total_bytes(), 0);
        assert_eq!(t.series().len(), 0);
    }
}
