//! A labelled `(x, y)` series.

use std::fmt;

/// An ordered series of `(x, y)` points with a label.
///
/// Experiments return `Series` values for anything the paper plots as a
/// line: throughput over time (Figure 3), throughput versus I/O size
/// (Figure 4), throughput versus write ratio (Figure 5).
///
/// # Example
///
/// ```
/// use uc_metrics::Series;
///
/// let mut s = Series::new("total GB/s");
/// s.push(0.0, 3.0);
/// s.push(50.0, 3.02);
/// assert_eq!(s.len(), 2);
/// assert!((s.mean_y() - 3.01).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Series {
    label: String,
    points: Vec<(f64, f64)>,
}

impl Series {
    /// An empty series with the given label.
    pub fn new(label: impl Into<String>) -> Self {
        Series {
            label: label.into(),
            points: Vec::new(),
        }
    }

    /// A series built from existing points.
    pub fn from_points(label: impl Into<String>, points: Vec<(f64, f64)>) -> Self {
        Series {
            label: label.into(),
            points,
        }
    }

    /// The series label.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Appends a point.
    pub fn push(&mut self, x: f64, y: f64) {
        self.points.push((x, y));
    }

    /// All points in insertion order.
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// `true` if the series has no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The y values alone.
    pub fn ys(&self) -> Vec<f64> {
        self.points.iter().map(|p| p.1).collect()
    }

    /// Mean of the y values, or zero if empty.
    pub fn mean_y(&self) -> f64 {
        if self.points.is_empty() {
            0.0
        } else {
            self.points.iter().map(|p| p.1).sum::<f64>() / self.points.len() as f64
        }
    }

    /// Maximum y value, or zero if empty.
    pub fn max_y(&self) -> f64 {
        self.points.iter().map(|p| p.1).fold(0.0, f64::max)
    }

    /// Minimum y value, or zero if empty.
    pub fn min_y(&self) -> f64 {
        if self.points.is_empty() {
            0.0
        } else {
            self.points
                .iter()
                .map(|p| p.1)
                .fold(f64::INFINITY, f64::min)
        }
    }

    /// The x of the first point where y drops below `threshold`, scanning
    /// left to right from the first point where y was at or above it.
    ///
    /// Used to locate throughput-collapse knees in Figure 3: "when did the
    /// device first fall below X GB/s after having reached it?".
    pub fn first_drop_below(&self, threshold: f64) -> Option<f64> {
        let mut reached = false;
        for &(x, y) in &self.points {
            if y >= threshold {
                reached = true;
            } else if reached {
                return Some(x);
            }
        }
        None
    }

    /// A centred moving average of the y values over a window of `k`
    /// points (`k` is clamped to be odd and at least 1); x values are
    /// preserved.
    ///
    /// Used to de-noise windowed throughput series before knee detection.
    pub fn moving_average(&self, k: usize) -> Series {
        let k = k.max(1) | 1; // odd
        let half = k / 2;
        let n = self.points.len();
        let points = (0..n)
            .map(|i| {
                let lo = i.saturating_sub(half);
                let hi = (i + half + 1).min(n);
                let mean = self.points[lo..hi].iter().map(|p| p.1).sum::<f64>() / (hi - lo) as f64;
                (self.points[i].0, mean)
            })
            .collect();
        Series::from_points(format!("{} (ma{k})", self.label), points)
    }

    /// Renders the series as `x<TAB>y` lines (one per point), suitable for
    /// pasting into plotting tools.
    pub fn to_tsv(&self) -> String {
        let mut out = String::new();
        for &(x, y) in &self.points {
            out.push_str(&format!("{x}\t{y}\n"));
        }
        out
    }
}

impl fmt::Display for Series {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{} pts, mean {:.3}, max {:.3}]",
            self.label,
            self.len(),
            self.mean_y(),
            self.max_y()
        )
    }
}

impl Extend<(f64, f64)> for Series {
    fn extend<I: IntoIterator<Item = (f64, f64)>>(&mut self, iter: I) {
        self.points.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_statistics() {
        let s = Series::from_points("t", vec![(0.0, 1.0), (1.0, 3.0), (2.0, 2.0)]);
        assert_eq!(s.mean_y(), 2.0);
        assert_eq!(s.max_y(), 3.0);
        assert_eq!(s.min_y(), 1.0);
    }

    #[test]
    fn empty_series_is_safe() {
        let s = Series::new("empty");
        assert!(s.is_empty());
        assert_eq!(s.mean_y(), 0.0);
        assert_eq!(s.max_y(), 0.0);
        assert_eq!(s.min_y(), 0.0);
        assert_eq!(s.first_drop_below(1.0), None);
    }

    #[test]
    fn first_drop_below_requires_prior_reach() {
        // Never reaches 5.0, so never "drops" below it.
        let low = Series::from_points("low", vec![(0.0, 1.0), (1.0, 0.5)]);
        assert_eq!(low.first_drop_below(5.0), None);

        // Reaches 5.0 at x=1, drops at x=3.
        let s = Series::from_points("knee", vec![(0.0, 1.0), (1.0, 6.0), (2.0, 7.0), (3.0, 2.0)]);
        assert_eq!(s.first_drop_below(5.0), Some(3.0));
    }

    #[test]
    fn tsv_rendering() {
        let s = Series::from_points("t", vec![(1.0, 2.0)]);
        assert_eq!(s.to_tsv(), "1\t2\n");
    }

    #[test]
    fn extend_appends() {
        let mut s = Series::new("t");
        s.extend(vec![(0.0, 1.0), (1.0, 2.0)]);
        assert_eq!(s.len(), 2);
    }
}
