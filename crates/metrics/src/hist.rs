//! HDR-style log-bucketed latency histogram.

use std::fmt;
use uc_sim::SimDuration;

/// Number of sub-buckets per power-of-two group (64 → ~1.5 % max error).
const SUB: u64 = 64;
const SUB_BITS: u32 = 6;
/// Enough groups to cover the full `u64` nanosecond range.
const GROUPS: usize = 60;

/// A latency histogram with logarithmic bucketing.
///
/// Values are recorded in nanoseconds. Buckets are organized HDR-histogram
/// style: group 0 holds exact counts for `[0, 64)` ns; each later group `g`
/// covers `[64·2^(g-1), 64·2^g)` ns with 64 sub-buckets, bounding relative
/// quantization error by `1/64` (~1.5 %). Count, sum, minimum and maximum
/// are tracked exactly, so [`LatencyHistogram::mean`] has no quantization
/// error at all.
///
/// # Example
///
/// ```
/// use uc_metrics::LatencyHistogram;
/// use uc_sim::SimDuration;
///
/// let mut h = LatencyHistogram::new();
/// h.record(SimDuration::from_micros(100));
/// h.record(SimDuration::from_micros(300));
/// assert_eq!(h.count(), 2);
/// assert_eq!(h.mean(), SimDuration::from_micros(200));
/// assert!(h.max() >= SimDuration::from_micros(300));
/// ```
#[derive(Clone)]
pub struct LatencyHistogram {
    buckets: Vec<u64>,
    count: u64,
    sum_ns: u128,
    min_ns: u64,
    max_ns: u64,
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            buckets: vec![0; SUB as usize * GROUPS],
            count: 0,
            sum_ns: 0,
            min_ns: u64::MAX,
            max_ns: 0,
        }
    }

    /// Records one latency sample.
    pub fn record(&mut self, value: SimDuration) {
        self.record_n(value, 1);
    }

    /// Records `n` identical latency samples.
    ///
    /// All accumulators saturate instead of wrapping: a histogram that has
    /// absorbed astronomically many samples pins `count`/`sum` at their
    /// maxima rather than silently restarting from zero, which would
    /// corrupt every percentile downstream.
    pub fn record_n(&mut self, value: SimDuration, n: u64) {
        if n == 0 {
            return;
        }
        let v = value.as_nanos();
        let idx = Self::index_for(v);
        self.buckets[idx] = self.buckets[idx].saturating_add(n);
        self.count = self.count.saturating_add(n);
        self.sum_ns = self.sum_ns.saturating_add(v as u128 * n as u128);
        self.min_ns = self.min_ns.min(v);
        self.max_ns = self.max_ns.max(v);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// `true` if no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Exact sum of every recorded value, in nanoseconds.
    ///
    /// `u128`: a `u64` would overflow after ~584 sample-years of summed
    /// latency, which TB-scale endurance runs can reach.
    pub fn sum_nanos(&self) -> u128 {
        self.sum_ns
    }

    /// Exact arithmetic mean, or zero if empty.
    pub fn mean(&self) -> SimDuration {
        if self.count == 0 {
            return SimDuration::ZERO;
        }
        SimDuration::from_nanos((self.sum_ns / self.count as u128) as u64)
    }

    /// Exact minimum recorded value, or zero if empty.
    pub fn min(&self) -> SimDuration {
        if self.count == 0 {
            SimDuration::ZERO
        } else {
            SimDuration::from_nanos(self.min_ns)
        }
    }

    /// Exact maximum recorded value, or zero if empty.
    pub fn max(&self) -> SimDuration {
        SimDuration::from_nanos(self.max_ns)
    }

    /// The value at percentile `p` (0–100), within bucket quantization.
    ///
    /// Returns zero for an empty histogram. `p` is clamped to `[0, 100]`.
    /// The returned value is the representative (midpoint) of the bucket
    /// containing the `ceil(p/100 · count)`-th smallest sample, clamped to
    /// the exact observed min/max so percentile queries never escape the
    /// recorded range.
    pub fn percentile(&self, p: f64) -> SimDuration {
        if self.count == 0 {
            return SimDuration::ZERO;
        }
        let p = p.clamp(0.0, 100.0);
        let mut target = ((p / 100.0) * self.count as f64).ceil() as u64;
        target = target.clamp(1, self.count);
        let mut cumulative = 0u64;
        for (idx, &c) in self.buckets.iter().enumerate() {
            cumulative += c;
            if cumulative >= target {
                let mid = Self::bucket_midpoint(idx).clamp(self.min_ns, self.max_ns);
                return SimDuration::from_nanos(mid);
            }
        }
        SimDuration::from_nanos(self.max_ns)
    }

    /// Convenience accessor for the paper's two headline metrics.
    ///
    /// Returns `(average, p99.9)`.
    pub fn headline(&self) -> (SimDuration, SimDuration) {
        (self.mean(), self.percentile(99.9))
    }

    /// Merges all samples of `other` into `self`.
    ///
    /// Used to aggregate per-lane histograms into pool-level percentiles;
    /// saturates like [`LatencyHistogram::record_n`] so merging two
    /// near-full histograms cannot wrap.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (b, o) in self.buckets.iter_mut().zip(&other.buckets) {
            *b = b.saturating_add(*o);
        }
        self.count = self.count.saturating_add(other.count);
        self.sum_ns = self.sum_ns.saturating_add(other.sum_ns);
        self.min_ns = self.min_ns.min(other.min_ns);
        self.max_ns = self.max_ns.max(other.max_ns);
    }

    /// Discards all samples.
    pub fn clear(&mut self) {
        self.buckets.fill(0);
        self.count = 0;
        self.sum_ns = 0;
        self.min_ns = u64::MAX;
        self.max_ns = 0;
    }

    fn index_for(v: u64) -> usize {
        if v < SUB {
            v as usize
        } else {
            let exp = 63 - v.leading_zeros(); // exp >= SUB_BITS
            let group = ((exp - SUB_BITS + 1) as usize).min(GROUPS - 1);
            let sub = ((v >> (group - 1)) - SUB).min(SUB - 1);
            group * SUB as usize + sub as usize
        }
    }

    fn bucket_midpoint(idx: usize) -> u64 {
        let group = idx / SUB as usize;
        let sub = (idx % SUB as usize) as u64;
        if group == 0 {
            sub
        } else {
            let width = 1u64 << (group - 1);
            (SUB + sub) * width + width / 2
        }
    }
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram::new()
    }
}

impl uc_persist::Persist for LatencyHistogram {
    fn encode(&self, w: &mut uc_persist::Encoder) {
        self.buckets.encode(w);
        w.put_u64(self.count);
        // `sum_ns` is a u128; split into high/low words for the wire.
        w.put_u64((self.sum_ns >> 64) as u64);
        w.put_u64(self.sum_ns as u64);
        w.put_u64(self.min_ns);
        w.put_u64(self.max_ns);
    }

    fn decode(r: &mut uc_persist::Decoder<'_>) -> Result<Self, uc_persist::DecodeError> {
        let buckets = Vec::<u64>::decode(r)?;
        if buckets.len() != SUB as usize * GROUPS {
            return Err(uc_persist::DecodeError::InvalidValue {
                what: "LatencyHistogram.buckets",
            });
        }
        let count = r.get_u64()?;
        let sum_hi = r.get_u64()?;
        let sum_lo = r.get_u64()?;
        Ok(LatencyHistogram {
            buckets,
            count,
            sum_ns: ((sum_hi as u128) << 64) | sum_lo as u128,
            min_ns: r.get_u64()?,
            max_ns: r.get_u64()?,
        })
    }
}

impl fmt::Debug for LatencyHistogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LatencyHistogram")
            .field("count", &self.count)
            .field("mean", &self.mean())
            .field("min", &self.min())
            .field("max", &self.max())
            .field("p50", &self.percentile(50.0))
            .field("p99.9", &self.percentile(99.9))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uc_persist::Persist;

    #[test]
    fn empty_histogram_is_zeroed() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert!(h.is_empty());
        assert_eq!(h.mean(), SimDuration::ZERO);
        assert_eq!(h.percentile(99.0), SimDuration::ZERO);
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = LatencyHistogram::new();
        for v in 0..SUB {
            h.record(SimDuration::from_nanos(v));
        }
        assert_eq!(h.min(), SimDuration::ZERO);
        assert_eq!(h.max(), SimDuration::from_nanos(SUB - 1));
        assert_eq!(h.percentile(100.0), SimDuration::from_nanos(SUB - 1));
    }

    #[test]
    fn quantization_error_is_bounded() {
        let mut h = LatencyHistogram::new();
        let value = 123_456_789u64;
        h.record(SimDuration::from_nanos(value));
        let p = h.percentile(50.0).as_nanos() as f64;
        let rel = (p - value as f64).abs() / value as f64;
        assert!(rel <= 1.0 / 64.0 + 1e-9, "relative error {rel}");
    }

    #[test]
    fn mean_is_exact() {
        let mut h = LatencyHistogram::new();
        h.record(SimDuration::from_nanos(1));
        h.record(SimDuration::from_nanos(1_000_003));
        assert_eq!(h.mean().as_nanos(), 500_002);
    }

    #[test]
    fn percentiles_are_monotone() {
        let mut h = LatencyHistogram::new();
        let mut seed = 12345u64;
        for _ in 0..10_000 {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
            h.record(SimDuration::from_nanos(seed % 10_000_000));
        }
        let mut last = SimDuration::ZERO;
        for p in [0.0, 10.0, 50.0, 90.0, 99.0, 99.9, 100.0] {
            let v = h.percentile(p);
            assert!(v >= last, "percentile({p}) regressed");
            last = v;
        }
    }

    #[test]
    fn percentile_respects_observed_bounds() {
        let mut h = LatencyHistogram::new();
        h.record(SimDuration::from_micros(700));
        assert_eq!(h.percentile(0.0), h.percentile(100.0));
        assert!(h.percentile(50.0) >= h.min());
        assert!(h.percentile(50.0) <= h.max());
    }

    #[test]
    fn merge_combines_counts_and_extremes() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        a.record(SimDuration::from_micros(1));
        b.record(SimDuration::from_micros(1000));
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.min(), SimDuration::from_micros(1));
        assert_eq!(a.max(), SimDuration::from_micros(1000));
    }

    #[test]
    fn record_n_matches_repeated_record() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        for _ in 0..5 {
            a.record(SimDuration::from_micros(42));
        }
        b.record_n(SimDuration::from_micros(42), 5);
        assert_eq!(a.count(), b.count());
        assert_eq!(a.mean(), b.mean());
        assert_eq!(a.percentile(99.0), b.percentile(99.0));
    }

    #[test]
    fn clear_resets_everything() {
        let mut h = LatencyHistogram::new();
        h.record(SimDuration::from_micros(9));
        h.clear();
        assert!(h.is_empty());
        assert_eq!(h.max(), SimDuration::ZERO);
    }

    #[test]
    fn headline_matches_components() {
        let mut h = LatencyHistogram::new();
        for us in 1..=100 {
            h.record(SimDuration::from_micros(us));
        }
        let (avg, p999) = h.headline();
        assert_eq!(avg, h.mean());
        assert_eq!(p999, h.percentile(99.9));
    }

    #[test]
    fn persist_round_trip_is_lossless() {
        let mut h = LatencyHistogram::new();
        let mut seed = 99u64;
        for _ in 0..5000 {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
            h.record(SimDuration::from_nanos(seed % 50_000_000));
        }
        let mut w = uc_persist::Encoder::new();
        h.encode(&mut w);
        let bytes = w.into_bytes();
        let mut r = uc_persist::Decoder::new(&bytes);
        let back = LatencyHistogram::decode(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(back.count(), h.count());
        assert_eq!(back.mean(), h.mean());
        assert_eq!(back.min(), h.min());
        assert_eq!(back.max(), h.max());
        for p in [0.0, 50.0, 99.0, 99.9, 100.0] {
            assert_eq!(back.percentile(p), h.percentile(p));
        }
    }

    #[test]
    fn persist_rejects_resized_bucket_table() {
        let mut w = uc_persist::Encoder::new();
        vec![0u64; 3].encode(&mut w); // wrong bucket count
        w.put_u64(0);
        w.put_u64(0);
        w.put_u64(0);
        w.put_u64(u64::MAX);
        w.put_u64(0);
        let bytes = w.into_bytes();
        assert!(matches!(
            LatencyHistogram::decode(&mut uc_persist::Decoder::new(&bytes)),
            Err(uc_persist::DecodeError::InvalidValue {
                what: "LatencyHistogram.buckets"
            })
        ));
    }

    #[test]
    fn record_n_saturates_count_and_sum() {
        let mut h = LatencyHistogram::new();
        h.record_n(SimDuration::from_nanos(1), u64::MAX);
        h.record_n(SimDuration::from_nanos(1), u64::MAX);
        assert_eq!(h.count(), u64::MAX, "count must pin, not wrap");
        // Percentiles stay answerable on a saturated histogram.
        assert_eq!(h.percentile(99.9), SimDuration::from_nanos(1));
        assert_eq!(h.max(), SimDuration::from_nanos(1));
    }

    #[test]
    fn sum_saturates_at_u128_max() {
        let mut h = LatencyHistogram::new();
        // Each call adds (2^64-1)^2 ≈ 2^128 - 2^65; two of them overflow
        // u128 and must clamp instead of wrapping to a tiny sum.
        h.record_n(SimDuration::from_nanos(u64::MAX), u64::MAX);
        h.record_n(SimDuration::from_nanos(u64::MAX), u64::MAX);
        assert_eq!(h.sum_nanos(), u128::MAX);
        // Mean degrades gracefully (clamped sum / saturated count).
        assert!(h.mean() >= SimDuration::from_nanos(1));
    }

    #[test]
    fn merge_saturates_instead_of_wrapping() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        a.record_n(SimDuration::from_nanos(7), u64::MAX);
        b.record_n(SimDuration::from_nanos(7), u64::MAX);
        b.record(SimDuration::from_nanos(1_000_000));
        a.merge(&b);
        assert_eq!(a.count(), u64::MAX);
        assert_eq!(a.max(), SimDuration::from_nanos(1_000_000));
        assert_eq!(a.min(), SimDuration::from_nanos(7));
        // The saturated bucket cannot shrink percentiles below min.
        assert!(a.percentile(50.0) >= a.min());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = LatencyHistogram::new();
        a.record(SimDuration::from_micros(5));
        let before_count = a.count();
        let before_p99 = a.percentile(99.0);
        a.merge(&LatencyHistogram::new());
        assert_eq!(a.count(), before_count);
        assert_eq!(a.percentile(99.0), before_p99);
        assert_eq!(a.min(), SimDuration::from_micros(5));

        let mut empty = LatencyHistogram::new();
        empty.merge(&a);
        assert_eq!(empty.count(), before_count);
        assert_eq!(empty.min(), SimDuration::from_micros(5));
    }

    #[test]
    fn huge_values_do_not_panic() {
        let mut h = LatencyHistogram::new();
        h.record(SimDuration::from_nanos(u64::MAX));
        h.record(SimDuration::from_secs(86_400));
        assert_eq!(h.count(), 2);
        assert!(h.percentile(100.0) > SimDuration::from_secs(1));
    }
}
