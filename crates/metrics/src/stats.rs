//! Summary statistics over float samples.

use std::fmt;

/// Mean, spread and extremes of a sample of floats.
///
/// The Observation 4 checker uses the [coefficient of variation] to decide
/// whether a device's maximum bandwidth is "deterministic" across read/write
/// mixes (ESSD: CV ≈ 0; local SSD: CV substantial).
///
/// [coefficient of variation]: SummaryStats::cv
///
/// # Example
///
/// ```
/// use uc_metrics::SummaryStats;
///
/// let s = SummaryStats::from_samples(&[2.9, 3.0, 3.1]);
/// assert!((s.mean() - 3.0).abs() < 1e-12);
/// assert!(s.cv() < 0.05);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SummaryStats {
    count: usize,
    mean: f64,
    std_dev: f64,
    min: f64,
    max: f64,
}

impl SummaryStats {
    /// Computes statistics over `samples`.
    ///
    /// Returns an all-zero summary for an empty slice. Non-finite samples
    /// are ignored.
    pub fn from_samples(samples: &[f64]) -> Self {
        let finite: Vec<f64> = samples.iter().copied().filter(|v| v.is_finite()).collect();
        if finite.is_empty() {
            return SummaryStats {
                count: 0,
                mean: 0.0,
                std_dev: 0.0,
                min: 0.0,
                max: 0.0,
            };
        }
        let n = finite.len() as f64;
        let mean = finite.iter().sum::<f64>() / n;
        let var = finite.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n;
        SummaryStats {
            count: finite.len(),
            mean,
            std_dev: var.sqrt(),
            min: finite.iter().copied().fold(f64::INFINITY, f64::min),
            max: finite.iter().copied().fold(f64::NEG_INFINITY, f64::max),
        }
    }

    /// Number of finite samples.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Arithmetic mean.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.std_dev
    }

    /// Smallest sample.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest sample.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Coefficient of variation (`std_dev / mean`), or zero if the mean is
    /// zero.
    pub fn cv(&self) -> f64 {
        if self.mean.abs() < f64::EPSILON {
            0.0
        } else {
            self.std_dev / self.mean.abs()
        }
    }

    /// Peak-to-trough spread relative to the mean (`(max - min) / mean`),
    /// or zero if the mean is zero.
    ///
    /// This is the quantity the paper implicitly reports for the local SSD
    /// in Figure 5 ("varying between 2.5 GB/s and 4.3 GB/s").
    pub fn relative_spread(&self) -> f64 {
        if self.mean.abs() < f64::EPSILON {
            0.0
        } else {
            (self.max - self.min) / self.mean.abs()
        }
    }
}

impl fmt::Display for SummaryStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.4} sd={:.4} min={:.4} max={:.4} cv={:.4}",
            self.count,
            self.mean,
            self.std_dev,
            self.min,
            self.max,
            self.cv()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_input_is_zeroed() {
        let s = SummaryStats::from_samples(&[]);
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.cv(), 0.0);
        assert_eq!(s.relative_spread(), 0.0);
    }

    #[test]
    fn single_sample() {
        let s = SummaryStats::from_samples(&[5.0]);
        assert_eq!(s.mean(), 5.0);
        assert_eq!(s.std_dev(), 0.0);
        assert_eq!(s.min(), 5.0);
        assert_eq!(s.max(), 5.0);
    }

    #[test]
    fn known_statistics() {
        let s = SummaryStats::from_samples(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(s.mean(), 5.0);
        assert_eq!(s.std_dev(), 2.0);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
        assert!((s.cv() - 0.4).abs() < 1e-12);
        assert!((s.relative_spread() - 1.4).abs() < 1e-12);
    }

    #[test]
    fn non_finite_samples_ignored() {
        let s = SummaryStats::from_samples(&[1.0, f64::NAN, 3.0, f64::INFINITY]);
        assert_eq!(s.count(), 2);
        assert_eq!(s.mean(), 2.0);
    }

    #[test]
    fn display_is_nonempty() {
        let s = SummaryStats::from_samples(&[1.0, 2.0]);
        assert!(!s.to_string().is_empty());
    }
}
