//! Flash array geometry.

use std::error::Error;
use std::fmt;

/// The physical organization of a flash array.
///
/// The hierarchy follows §II-A of the paper: channels connect groups of
/// dies; dies contain planes; planes contain blocks; blocks contain pages.
/// Dies are the unit of operation parallelism; pages the unit of storage.
///
/// Blocks are addressed die-locally throughout the workspace: block `b` of
/// die `d`. Superblock grouping (one block from every die) is done by the
/// FTL on top of this geometry.
///
/// # Example
///
/// ```
/// use uc_flash::FlashGeometry;
///
/// // 8 channels x 4 dies, 2 planes x 64 blocks x 256 pages x 4 KiB.
/// let g = FlashGeometry::new(8, 4, 2, 64, 256, 4096)?;
/// assert_eq!(g.total_dies(), 32);
/// assert_eq!(g.blocks_per_die(), 128);
/// assert_eq!(g.raw_capacity(), 32 * 128 * 256 * 4096);
/// # Ok::<(), uc_flash::GeometryError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FlashGeometry {
    channels: u32,
    dies_per_channel: u32,
    planes_per_die: u32,
    blocks_per_plane: u32,
    pages_per_block: u32,
    page_size: u32,
}

/// Errors constructing a [`FlashGeometry`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GeometryError {
    /// A dimension was zero.
    ZeroDimension(&'static str),
}

impl fmt::Display for GeometryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GeometryError::ZeroDimension(dim) => {
                write!(f, "flash geometry dimension `{dim}` must be positive")
            }
        }
    }
}

impl Error for GeometryError {}

impl FlashGeometry {
    /// Creates a geometry from its six dimensions.
    ///
    /// # Errors
    ///
    /// Returns [`GeometryError::ZeroDimension`] if any dimension is zero.
    pub fn new(
        channels: u32,
        dies_per_channel: u32,
        planes_per_die: u32,
        blocks_per_plane: u32,
        pages_per_block: u32,
        page_size: u32,
    ) -> Result<Self, GeometryError> {
        for (value, name) in [
            (channels, "channels"),
            (dies_per_channel, "dies_per_channel"),
            (planes_per_die, "planes_per_die"),
            (blocks_per_plane, "blocks_per_plane"),
            (pages_per_block, "pages_per_block"),
            (page_size, "page_size"),
        ] {
            if value == 0 {
                return Err(GeometryError::ZeroDimension(name));
            }
        }
        Ok(FlashGeometry {
            channels,
            dies_per_channel,
            planes_per_die,
            blocks_per_plane,
            pages_per_block,
            page_size,
        })
    }

    /// Number of channels.
    pub fn channels(&self) -> u32 {
        self.channels
    }

    /// Dies attached to each channel.
    pub fn dies_per_channel(&self) -> u32 {
        self.dies_per_channel
    }

    /// Planes in each die.
    pub fn planes_per_die(&self) -> u32 {
        self.planes_per_die
    }

    /// Blocks in each plane.
    pub fn blocks_per_plane(&self) -> u32 {
        self.blocks_per_plane
    }

    /// Pages in each block.
    pub fn pages_per_block(&self) -> u32 {
        self.pages_per_block
    }

    /// Page size in bytes.
    pub fn page_size(&self) -> u32 {
        self.page_size
    }

    /// Total dies in the array.
    pub fn total_dies(&self) -> u32 {
        self.channels * self.dies_per_channel
    }

    /// Blocks per die (across all planes).
    pub fn blocks_per_die(&self) -> u32 {
        self.planes_per_die * self.blocks_per_plane
    }

    /// Total blocks in the array.
    pub fn total_blocks(&self) -> u64 {
        self.total_dies() as u64 * self.blocks_per_die() as u64
    }

    /// Pages per die.
    pub fn pages_per_die(&self) -> u64 {
        self.blocks_per_die() as u64 * self.pages_per_block as u64
    }

    /// Total pages in the array.
    pub fn total_pages(&self) -> u64 {
        self.total_dies() as u64 * self.pages_per_die()
    }

    /// Bytes per block.
    pub fn block_bytes(&self) -> u64 {
        self.pages_per_block as u64 * self.page_size as u64
    }

    /// Raw capacity in bytes (before over-provisioning is subtracted).
    pub fn raw_capacity(&self) -> u64 {
        self.total_pages() * self.page_size as u64
    }

    /// The channel a die hangs off.
    ///
    /// Dies are striped across channels (`die % channels`) so consecutive
    /// die indices exercise different channels, matching how superblock
    /// writes fan out in real firmware.
    pub fn channel_of_die(&self, die: u32) -> u32 {
        die % self.channels
    }

    /// Picks a geometry whose raw capacity is at least `capacity` bytes,
    /// scaling the number of blocks per plane of this template geometry.
    ///
    /// This is how profiles build scaled-down devices (see DESIGN.md) while
    /// keeping channel/die parallelism realistic.
    pub fn scaled_to_capacity(&self, capacity: u64) -> FlashGeometry {
        let per_block_total =
            self.total_dies() as u64 * self.planes_per_die as u64 * self.block_bytes();
        let blocks_per_plane = capacity.div_ceil(per_block_total).max(1) as u32;
        FlashGeometry {
            blocks_per_plane,
            ..*self
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn g() -> FlashGeometry {
        FlashGeometry::new(8, 4, 2, 64, 256, 4096).unwrap()
    }

    #[test]
    fn derived_quantities() {
        let g = g();
        assert_eq!(g.total_dies(), 32);
        assert_eq!(g.blocks_per_die(), 128);
        assert_eq!(g.total_blocks(), 4096);
        assert_eq!(g.pages_per_die(), 128 * 256);
        assert_eq!(g.total_pages(), 32 * 128 * 256);
        assert_eq!(g.block_bytes(), 1 << 20);
        assert_eq!(g.raw_capacity(), 32u64 * 128 * 256 * 4096);
    }

    #[test]
    fn zero_dimensions_rejected() {
        assert!(FlashGeometry::new(0, 4, 2, 64, 256, 4096).is_err());
        assert!(FlashGeometry::new(8, 4, 2, 64, 0, 4096).is_err());
        let err = FlashGeometry::new(8, 4, 2, 64, 256, 0).unwrap_err();
        assert_eq!(err, GeometryError::ZeroDimension("page_size"));
        assert!(!err.to_string().is_empty());
    }

    #[test]
    fn dies_stripe_across_channels() {
        let g = g();
        assert_eq!(g.channel_of_die(0), 0);
        assert_eq!(g.channel_of_die(7), 7);
        assert_eq!(g.channel_of_die(8), 0);
        assert_eq!(g.channel_of_die(31), 7);
    }

    #[test]
    fn scaling_reaches_requested_capacity() {
        let g = g();
        let want = 8u64 << 30;
        let scaled = g.scaled_to_capacity(want);
        assert!(scaled.raw_capacity() >= want);
        assert_eq!(scaled.total_dies(), g.total_dies());
        assert_eq!(scaled.page_size(), g.page_size());
        // Within one block-row of the target.
        let step =
            scaled.total_dies() as u64 * scaled.planes_per_die() as u64 * scaled.block_bytes();
        assert!(scaled.raw_capacity() - want < step);
    }

    #[test]
    fn scaling_never_produces_zero_blocks() {
        let g = g();
        let tiny = g.scaled_to_capacity(1);
        assert!(tiny.blocks_per_plane() >= 1);
    }
}
