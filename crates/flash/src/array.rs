//! Flash array operation scheduling.

use crate::{FlashGeometry, FlashTiming};
use uc_sim::{ParallelResource, ParallelResourceSnapshot, Resource, ResourceSnapshot, SimTime};

/// Counters of operations issued to a [`FlashArray`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FlashOpStats {
    /// Page reads issued.
    pub reads: u64,
    /// Page programs issued.
    pub programs: u64,
    /// Block erases issued.
    pub erases: u64,
}

impl FlashOpStats {
    /// Total operations of all kinds.
    pub fn total(&self) -> u64 {
        self.reads + self.programs + self.erases
    }
}

/// Schedules NAND operations onto die and channel timelines.
///
/// Each die is a serial resource (one NAND operation at a time); each
/// channel bus is a serial resource shared by that channel's dies. A page
/// read occupies the die for the sense time and then the channel for the
/// data transfer; a program transfers over the channel first and then
/// occupies the die; an erase occupies only the die.
///
/// Per-plane pipelining and cache-mode transfers are folded into the
/// timing parameters (see DESIGN.md §6).
///
/// # Example
///
/// ```
/// use uc_flash::{FlashArray, FlashGeometry, FlashTiming};
/// use uc_sim::SimTime;
///
/// let g = FlashGeometry::new(2, 1, 1, 4, 16, 4096)?;
/// let mut a = FlashArray::new(g, FlashTiming::mlc());
/// // Two reads on different dies proceed in parallel...
/// let f0 = a.read_page(SimTime::ZERO, 0);
/// let f1 = a.read_page(SimTime::ZERO, 1);
/// assert_eq!(f0, f1);
/// // ...while two on the same die serialize.
/// let f2 = a.read_page(SimTime::ZERO, 0);
/// assert!(f2 > f0);
/// # Ok::<(), uc_flash::GeometryError>(())
/// ```
#[derive(Debug, Clone)]
pub struct FlashArray {
    geometry: FlashGeometry,
    timing: FlashTiming,
    dies: Vec<Resource>,
    channels: Vec<Resource>,
    stats: FlashOpStats,
}

/// The complete serializable state of a [`FlashArray`]: geometry, timing
/// and every die/channel timeline plus the operation counters.
///
/// Captured by [`FlashArray::snapshot`]; [`FlashArray::restore`] rebuilds
/// an array that schedules every future operation exactly as the original
/// would have.
#[derive(Debug, Clone, PartialEq)]
pub struct FlashArraySnapshot {
    /// The array's geometry.
    pub geometry: FlashGeometry,
    /// The array's timing parameters.
    pub timing: FlashTiming,
    /// Per-die busy-until timelines.
    pub dies: Vec<ResourceSnapshot>,
    /// Per-channel busy-until timelines.
    pub channels: Vec<ResourceSnapshot>,
    /// Operation counters.
    pub stats: FlashOpStats,
}

/// The complete serializable state of a [`DiePool`].
#[derive(Debug, Clone, PartialEq)]
pub struct DiePoolSnapshot {
    /// The k-server die station.
    pub pool: ParallelResourceSnapshot,
    /// NAND timing of the pool's dies.
    pub timing: FlashTiming,
    /// Flash page size in bytes.
    pub page_size: u32,
}

impl FlashArray {
    /// Creates an idle array with the given geometry and timing.
    pub fn new(geometry: FlashGeometry, timing: FlashTiming) -> Self {
        FlashArray {
            geometry,
            timing,
            dies: vec![Resource::new(); geometry.total_dies() as usize],
            channels: vec![Resource::new(); geometry.channels() as usize],
            stats: FlashOpStats::default(),
        }
    }

    /// The array's geometry.
    pub fn geometry(&self) -> &FlashGeometry {
        &self.geometry
    }

    /// The array's timing parameters.
    pub fn timing(&self) -> &FlashTiming {
        &self.timing
    }

    /// Operation counters.
    pub fn stats(&self) -> FlashOpStats {
        self.stats
    }

    /// Reads one page on `die`, returning the completion instant.
    ///
    /// # Panics
    ///
    /// Panics if `die` is out of range.
    pub fn read_page(&mut self, now: SimTime, die: u32) -> SimTime {
        self.stats.reads += 1;
        let ch = self.geometry.channel_of_die(die) as usize;
        let (_, sensed) = self.dies[die as usize].acquire(now, self.timing.read_page);
        let xfer = self.timing.bus_time(self.geometry.page_size());
        let (_, done) = self.channels[ch].acquire(sensed, xfer);
        done
    }

    /// Programs one page on `die`, returning the completion instant.
    ///
    /// # Panics
    ///
    /// Panics if `die` is out of range.
    pub fn program_page(&mut self, now: SimTime, die: u32) -> SimTime {
        self.stats.programs += 1;
        let ch = self.geometry.channel_of_die(die) as usize;
        let xfer = self.timing.bus_time(self.geometry.page_size());
        let (_, transferred) = self.channels[ch].acquire(now, xfer);
        let (_, done) = self.dies[die as usize].acquire(transferred, self.timing.program_page);
        done
    }

    /// Erases one block on `die`, returning the completion instant.
    ///
    /// # Panics
    ///
    /// Panics if `die` is out of range.
    pub fn erase_block(&mut self, now: SimTime, die: u32) -> SimTime {
        self.stats.erases += 1;
        let (_, done) = self.dies[die as usize].acquire(now, self.timing.erase_block);
        done
    }

    /// The earliest instant at which `die` could start a new operation.
    ///
    /// # Panics
    ///
    /// Panics if `die` is out of range.
    pub fn die_free_at(&self, die: u32) -> SimTime {
        self.dies[die as usize].free_at()
    }

    /// The die with the earliest availability, for parallelism-seeking
    /// allocation. Ties break toward lower die indices.
    pub fn earliest_free_die(&self) -> u32 {
        let mut best = 0u32;
        let mut best_t = SimTime::MAX;
        for (i, d) in self.dies.iter().enumerate() {
            if d.free_at() < best_t {
                best_t = d.free_at();
                best = i as u32;
            }
        }
        best
    }

    /// Aggregate program bandwidth in bytes/second when all dies stream
    /// programs (ignoring channel contention).
    pub fn peak_program_bandwidth(&self) -> f64 {
        let per_die = self.geometry.page_size() as f64 / self.timing.program_page.as_secs_f64();
        per_die * self.geometry.total_dies() as f64
    }

    /// Aggregate read bandwidth in bytes/second when all dies stream reads
    /// (ignoring channel contention).
    pub fn peak_read_bandwidth(&self) -> f64 {
        let per_die = self.geometry.page_size() as f64 / self.timing.read_page.as_secs_f64();
        per_die * self.geometry.total_dies() as f64
    }

    /// Clears all timelines and statistics.
    pub fn reset(&mut self) {
        for d in &mut self.dies {
            d.reset();
        }
        for c in &mut self.channels {
            c.reset();
        }
        self.stats = FlashOpStats::default();
    }

    /// Captures the array's complete state.
    pub fn snapshot(&self) -> FlashArraySnapshot {
        FlashArraySnapshot {
            geometry: self.geometry,
            timing: self.timing,
            dies: self.dies.iter().map(Resource::snapshot).collect(),
            channels: self.channels.iter().map(Resource::snapshot).collect(),
            stats: self.stats,
        }
    }

    /// Rebuilds an array that continues exactly where `snapshot` was
    /// taken.
    ///
    /// # Panics
    ///
    /// Panics if the snapshot's die/channel counts disagree with its
    /// geometry (a corrupted snapshot).
    pub fn restore(snapshot: FlashArraySnapshot) -> Self {
        assert_eq!(
            snapshot.dies.len(),
            snapshot.geometry.total_dies() as usize,
            "snapshot die count disagrees with geometry"
        );
        assert_eq!(
            snapshot.channels.len(),
            snapshot.geometry.channels() as usize,
            "snapshot channel count disagrees with geometry"
        );
        FlashArray {
            geometry: snapshot.geometry,
            timing: snapshot.timing,
            dies: snapshot.dies.into_iter().map(Resource::restore).collect(),
            channels: snapshot
                .channels
                .into_iter()
                .map(Resource::restore)
                .collect(),
            stats: snapshot.stats,
        }
    }
}

/// A convenience wrapper: a pool of dies treated as an anonymous k-server
/// station, for models that do not track per-die placement (the cluster's
/// backend nodes use this).
#[derive(Debug, Clone)]
pub struct DiePool {
    pool: ParallelResource,
    timing: FlashTiming,
    page_size: u32,
}

impl DiePool {
    /// A pool of `dies` dies with the given timing and page size.
    ///
    /// # Panics
    ///
    /// Panics if `dies == 0` or `page_size == 0`.
    pub fn new(dies: usize, timing: FlashTiming, page_size: u32) -> Self {
        assert!(page_size > 0, "page size must be positive");
        DiePool {
            pool: ParallelResource::new(dies),
            timing,
            page_size,
        }
    }

    /// Schedules a read of `bytes` (rounded up to whole pages) on the pool.
    pub fn read(&mut self, now: SimTime, bytes: u32) -> SimTime {
        let pages = bytes.div_ceil(self.page_size).max(1);
        let mut done = now;
        for _ in 0..pages {
            let (_, f) = self.pool.acquire(now, self.timing.read_page);
            done = done.max(f);
        }
        done
    }

    /// Schedules a program of `bytes` (rounded up to whole pages) on the pool.
    pub fn program(&mut self, now: SimTime, bytes: u32) -> SimTime {
        let pages = bytes.div_ceil(self.page_size).max(1);
        let mut done = now;
        for _ in 0..pages {
            let (_, f) = self.pool.acquire(now, self.timing.program_page);
            done = done.max(f);
        }
        done
    }

    /// Captures the pool's complete state.
    pub fn snapshot(&self) -> DiePoolSnapshot {
        DiePoolSnapshot {
            pool: self.pool.snapshot(),
            timing: self.timing,
            page_size: self.page_size,
        }
    }

    /// Rebuilds a pool that continues exactly where `snapshot` was taken.
    ///
    /// # Panics
    ///
    /// Panics if the snapshot holds no servers or a zero page size.
    pub fn restore(snapshot: DiePoolSnapshot) -> Self {
        assert!(snapshot.page_size > 0, "page size must be positive");
        DiePool {
            pool: ParallelResource::restore(snapshot.pool),
            timing: snapshot.timing,
            page_size: snapshot.page_size,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uc_sim::SimDuration;

    fn array() -> FlashArray {
        let g = FlashGeometry::new(2, 2, 1, 8, 16, 4096).unwrap();
        FlashArray::new(g, FlashTiming::mlc())
    }

    #[test]
    fn read_takes_sense_plus_transfer() {
        let mut a = array();
        let done = a.read_page(SimTime::ZERO, 0);
        let expected =
            SimTime::ZERO + FlashTiming::mlc().read_page + FlashTiming::mlc().bus_time(4096);
        assert_eq!(done, expected);
    }

    #[test]
    fn program_takes_transfer_plus_program() {
        let mut a = array();
        let done = a.program_page(SimTime::ZERO, 0);
        let expected =
            SimTime::ZERO + FlashTiming::mlc().bus_time(4096) + FlashTiming::mlc().program_page;
        assert_eq!(done, expected);
    }

    #[test]
    fn dies_are_parallel_same_die_serializes() {
        let mut a = array();
        let f0 = a.read_page(SimTime::ZERO, 0);
        let f1 = a.read_page(SimTime::ZERO, 1);
        let f2 = a.read_page(SimTime::ZERO, 0);
        assert_eq!(f0, f1);
        assert!(f2 > f0);
    }

    #[test]
    fn channel_bus_is_shared_within_channel() {
        // Geometry: 1 channel, 2 dies; sense in parallel but transfers
        // serialize on the single channel.
        let g = FlashGeometry::new(1, 2, 1, 8, 16, 4096).unwrap();
        let mut a = FlashArray::new(g, FlashTiming::mlc());
        let f0 = a.read_page(SimTime::ZERO, 0);
        let f1 = a.read_page(SimTime::ZERO, 1);
        let xfer = FlashTiming::mlc().bus_time(4096);
        assert_eq!(f1, f0 + xfer, "second transfer queues on the bus");
    }

    #[test]
    fn erase_occupies_die_only() {
        let mut a = array();
        let f = a.erase_block(SimTime::ZERO, 3);
        assert_eq!(f, SimTime::ZERO + FlashTiming::mlc().erase_block);
        // Channel untouched: a read on the other die in the same channel
        // is not delayed by the erase transfer (there is none).
        let r = a.read_page(SimTime::ZERO, 1);
        assert_eq!(
            r,
            SimTime::ZERO + FlashTiming::mlc().read_page + FlashTiming::mlc().bus_time(4096)
        );
    }

    #[test]
    fn stats_count_operations() {
        let mut a = array();
        a.read_page(SimTime::ZERO, 0);
        a.program_page(SimTime::ZERO, 1);
        a.program_page(SimTime::ZERO, 2);
        a.erase_block(SimTime::ZERO, 3);
        let s = a.stats();
        assert_eq!(s.reads, 1);
        assert_eq!(s.programs, 2);
        assert_eq!(s.erases, 1);
        assert_eq!(s.total(), 4);
    }

    #[test]
    fn earliest_free_die_prefers_idle() {
        let mut a = array();
        a.read_page(SimTime::ZERO, 0);
        assert_ne!(a.earliest_free_die(), 0);
        assert!(a.die_free_at(0) > SimTime::ZERO);
    }

    #[test]
    fn bandwidth_estimates() {
        let a = array();
        // 4 dies x 4096 B / 600 us.
        let bw = a.peak_program_bandwidth();
        assert!((bw - 4.0 * 4096.0 / 600e-6).abs() < 1.0);
        assert!(a.peak_read_bandwidth() > bw);
    }

    #[test]
    fn reset_clears_everything() {
        let mut a = array();
        a.read_page(SimTime::ZERO, 0);
        a.reset();
        assert_eq!(a.stats().total(), 0);
        assert_eq!(a.die_free_at(0), SimTime::ZERO);
    }

    #[test]
    fn snapshot_restore_resumes_scheduling() {
        let mut a = array();
        a.read_page(SimTime::ZERO, 0);
        a.program_page(SimTime::ZERO, 1);
        let snap = a.snapshot();
        let mut b = FlashArray::restore(snap.clone());
        assert_eq!(b.snapshot(), snap, "round trip is lossless");
        assert_eq!(b.stats(), a.stats());
        for die in 0..4 {
            assert_eq!(b.die_free_at(die), a.die_free_at(die));
        }
        // Future operations schedule identically.
        assert_eq!(a.read_page(SimTime::ZERO, 0), b.read_page(SimTime::ZERO, 0));
        assert_eq!(
            a.erase_block(SimTime::ZERO, 2),
            b.erase_block(SimTime::ZERO, 2)
        );

        let mut p = DiePool::new(3, FlashTiming::mlc(), 4096);
        p.read(SimTime::ZERO, 2 * 4096);
        let mut q = DiePool::restore(p.snapshot());
        assert_eq!(
            p.program(SimTime::ZERO, 4 * 4096),
            q.program(SimTime::ZERO, 4 * 4096)
        );
    }

    #[test]
    #[should_panic(expected = "disagrees with geometry")]
    fn corrupted_snapshot_rejected() {
        let mut snap = array().snapshot();
        snap.dies.pop();
        let _ = FlashArray::restore(snap);
    }

    #[test]
    fn die_pool_parallelism() {
        let mut p = DiePool::new(4, FlashTiming::mlc(), 4096);
        let one = p.read(SimTime::ZERO, 4096);
        let par = p.read(SimTime::ZERO, 3 * 4096);
        assert_eq!(one, par, "reads fan out across pool servers");
        let queued = p.read(SimTime::ZERO, 4096);
        assert!(queued > one, "fifth page queues behind the first four");
        let t = SimTime::ZERO + SimDuration::from_secs(1);
        assert!(p.program(t, 1) > t);
    }
}
