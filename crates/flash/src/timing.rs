//! Flash operation timing parameters.

use uc_sim::SimDuration;

/// Latencies of the three NAND operations plus channel-bus transfer cost.
///
/// Presets are provided for typical SLC/MLC/TLC parts; profiles calibrate
/// the values so a full device model lands on its datasheet bandwidth (see
/// `uc-ssd`'s Samsung 970 Pro profile).
///
/// # Example
///
/// ```
/// use uc_flash::FlashTiming;
///
/// let t = FlashTiming::mlc();
/// assert!(t.program_page > t.read_page);
/// assert!(t.erase_block > t.program_page);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlashTiming {
    /// Time for a die to sense one page into its page register.
    pub read_page: SimDuration,
    /// Time for a die to program one page from its page register.
    pub program_page: SimDuration,
    /// Time for a die to erase one block.
    pub erase_block: SimDuration,
    /// Channel-bus transfer time per byte, in nanoseconds.
    ///
    /// Applied to page transfers between the controller and a die; the bus
    /// is shared by all dies on a channel.
    pub bus_ns_per_byte: f64,
}

impl FlashTiming {
    /// Single-level-cell timing: fast reads and programs.
    pub fn slc() -> Self {
        FlashTiming {
            read_page: SimDuration::from_micros(25),
            program_page: SimDuration::from_micros(200),
            erase_block: SimDuration::from_millis(2),
            bus_ns_per_byte: 1.25, // 800 MB/s per channel
        }
    }

    /// Multi-level-cell timing (two bits per cell).
    pub fn mlc() -> Self {
        FlashTiming {
            read_page: SimDuration::from_micros(50),
            program_page: SimDuration::from_micros(600),
            erase_block: SimDuration::from_millis(3),
            bus_ns_per_byte: 1.25,
        }
    }

    /// Triple-level-cell timing (three bits per cell).
    pub fn tlc() -> Self {
        FlashTiming {
            read_page: SimDuration::from_micros(78),
            program_page: SimDuration::from_micros(900),
            erase_block: SimDuration::from_millis(5),
            bus_ns_per_byte: 1.25,
        }
    }

    /// The bus time to move `bytes` across a channel.
    pub fn bus_time(&self, bytes: u32) -> SimDuration {
        SimDuration::from_secs_f64(bytes as f64 * self.bus_ns_per_byte / 1e9)
    }
}

impl Default for FlashTiming {
    /// MLC timing, the paper's reference device class.
    fn default() -> Self {
        FlashTiming::mlc()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_ordered_by_cell_density() {
        let slc = FlashTiming::slc();
        let mlc = FlashTiming::mlc();
        let tlc = FlashTiming::tlc();
        assert!(slc.read_page < mlc.read_page && mlc.read_page < tlc.read_page);
        assert!(slc.program_page < mlc.program_page && mlc.program_page < tlc.program_page);
    }

    #[test]
    fn bus_time_scales_linearly() {
        let t = FlashTiming::mlc();
        let one = t.bus_time(4096);
        let two = t.bus_time(8192);
        assert_eq!(two.as_nanos(), one.as_nanos() * 2);
        // 4 KiB at 1.25 ns/B = 5.12 us.
        assert_eq!(one, SimDuration::from_nanos(5120));
    }

    #[test]
    fn default_is_mlc() {
        assert_eq!(FlashTiming::default(), FlashTiming::mlc());
    }
}
