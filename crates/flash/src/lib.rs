//! NAND flash device model.
//!
//! This crate models the physical layer of a flash SSD as described in
//! §II-A of the paper: a multi-level hierarchy of channels, dies, planes,
//! blocks and pages, where the die is the minimum unit of parallel
//! operations and the page the minimum unit of data storage.
//!
//! The model is a *timing* model: [`FlashArray`] schedules page reads, page
//! programs and block erases onto per-die and per-channel resource
//! timelines and answers when each operation completes. Which pages hold
//! valid data is the flash translation layer's business (`uc-ftl`).
//!
//! # Example
//!
//! ```
//! use uc_flash::{FlashArray, FlashGeometry, FlashTiming};
//! use uc_sim::SimTime;
//!
//! let geometry = FlashGeometry::new(8, 4, 2, 64, 256, 4096)?;
//! let mut array = FlashArray::new(geometry, FlashTiming::mlc());
//! let done = array.read_page(SimTime::ZERO, 0);
//! assert!(done > SimTime::ZERO);
//! # Ok::<(), uc_flash::GeometryError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod array;
mod geometry;
mod persist;
mod timing;

pub use array::{DiePool, DiePoolSnapshot, FlashArray, FlashArraySnapshot, FlashOpStats};
pub use geometry::{FlashGeometry, GeometryError};
pub use timing::FlashTiming;
