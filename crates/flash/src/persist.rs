//! [`Persist`] codecs for the flash layer's snapshot types.
//!
//! Geometry is validated through [`FlashGeometry::new`] on decode, so a
//! corrupted dimension comes back as a typed error instead of a
//! zero-sized array that panics downstream.

use crate::{DiePoolSnapshot, FlashArraySnapshot, FlashGeometry, FlashOpStats, FlashTiming};
use uc_persist::{DecodeError, Decoder, Encoder, Persist};
use uc_sim::{ParallelResourceSnapshot, ResourceSnapshot, SimDuration};

impl Persist for FlashGeometry {
    fn encode(&self, w: &mut Encoder) {
        w.put_u32(self.channels());
        w.put_u32(self.dies_per_channel());
        w.put_u32(self.planes_per_die());
        w.put_u32(self.blocks_per_plane());
        w.put_u32(self.pages_per_block());
        w.put_u32(self.page_size());
    }

    fn decode(r: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        FlashGeometry::new(
            r.get_u32()?,
            r.get_u32()?,
            r.get_u32()?,
            r.get_u32()?,
            r.get_u32()?,
            r.get_u32()?,
        )
        .map_err(|_| DecodeError::InvalidValue {
            what: "FlashGeometry",
        })
    }
}

impl Persist for FlashTiming {
    fn encode(&self, w: &mut Encoder) {
        self.read_page.encode(w);
        self.program_page.encode(w);
        self.erase_block.encode(w);
        w.put_f64(self.bus_ns_per_byte);
    }

    fn decode(r: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(FlashTiming {
            read_page: SimDuration::decode(r)?,
            program_page: SimDuration::decode(r)?,
            erase_block: SimDuration::decode(r)?,
            bus_ns_per_byte: r.get_f64()?,
        })
    }
}

impl Persist for FlashOpStats {
    fn encode(&self, w: &mut Encoder) {
        w.put_u64(self.reads);
        w.put_u64(self.programs);
        w.put_u64(self.erases);
    }

    fn decode(r: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(FlashOpStats {
            reads: r.get_u64()?,
            programs: r.get_u64()?,
            erases: r.get_u64()?,
        })
    }
}

impl Persist for FlashArraySnapshot {
    fn encode(&self, w: &mut Encoder) {
        self.geometry.encode(w);
        self.timing.encode(w);
        self.dies.encode(w);
        self.channels.encode(w);
        self.stats.encode(w);
    }

    fn decode(r: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        let snapshot = FlashArraySnapshot {
            geometry: FlashGeometry::decode(r)?,
            timing: FlashTiming::decode(r)?,
            dies: Vec::<ResourceSnapshot>::decode(r)?,
            channels: Vec::<ResourceSnapshot>::decode(r)?,
            stats: FlashOpStats::decode(r)?,
        };
        // `FlashArray::restore` indexes dies/channels by the geometry's
        // counts; mismatched lengths must fail here, not panic there.
        if snapshot.dies.len() != snapshot.geometry.total_dies() as usize {
            return Err(DecodeError::InvalidValue {
                what: "FlashArraySnapshot.dies",
            });
        }
        if snapshot.channels.len() != snapshot.geometry.channels() as usize {
            return Err(DecodeError::InvalidValue {
                what: "FlashArraySnapshot.channels",
            });
        }
        Ok(snapshot)
    }
}

impl Persist for DiePoolSnapshot {
    fn encode(&self, w: &mut Encoder) {
        self.pool.encode(w);
        self.timing.encode(w);
        w.put_u32(self.page_size);
    }

    fn decode(r: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(DiePoolSnapshot {
            pool: ParallelResourceSnapshot::decode(r)?,
            timing: FlashTiming::decode(r)?,
            page_size: r.get_u32()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DiePool, FlashArray};
    use uc_sim::SimTime;

    fn round_trip<T: Persist + PartialEq + std::fmt::Debug>(value: T) {
        let mut w = Encoder::new();
        value.encode(&mut w);
        let bytes = w.into_bytes();
        let mut r = Decoder::new(&bytes);
        let back = T::decode(&mut r).expect("decodes");
        r.finish().expect("fully consumed");
        assert_eq!(back, value);
    }

    #[test]
    fn geometry_timing_stats_round_trip() {
        let g = FlashGeometry::new(4, 2, 2, 16, 64, 4096).unwrap();
        round_trip(g);
        round_trip(FlashTiming::tlc());
        round_trip(FlashOpStats {
            reads: 1,
            programs: 2,
            erases: 3,
        });
    }

    #[test]
    fn zero_dimension_geometry_rejected() {
        let mut w = Encoder::new();
        for v in [0u32, 2, 2, 16, 64, 4096] {
            w.put_u32(v);
        }
        let bytes = w.into_bytes();
        assert_eq!(
            FlashGeometry::decode(&mut Decoder::new(&bytes)),
            Err(DecodeError::InvalidValue {
                what: "FlashGeometry"
            })
        );
    }

    #[test]
    fn busy_array_snapshot_round_trips() {
        let g = FlashGeometry::new(2, 2, 1, 8, 16, 4096).unwrap();
        let mut array = FlashArray::new(g, FlashTiming::mlc());
        for die in 0..4 {
            array.read_page(SimTime::ZERO, die);
            array.program_page(SimTime::ZERO, die);
        }
        round_trip(array.snapshot());
    }

    #[test]
    fn mismatched_die_count_rejected() {
        let g = FlashGeometry::new(2, 2, 1, 8, 16, 4096).unwrap();
        let mut snapshot = FlashArray::new(g, FlashTiming::mlc()).snapshot();
        snapshot.dies.pop();
        let mut w = Encoder::new();
        snapshot.encode(&mut w);
        let bytes = w.into_bytes();
        assert_eq!(
            FlashArraySnapshot::decode(&mut Decoder::new(&bytes)),
            Err(DecodeError::InvalidValue {
                what: "FlashArraySnapshot.dies"
            })
        );
    }

    #[test]
    fn die_pool_snapshot_round_trips() {
        let mut pool = DiePool::new(4, FlashTiming::slc(), 4096);
        pool.read(SimTime::ZERO, 8192);
        pool.program(SimTime::ZERO, 4096);
        round_trip(pool.snapshot());
    }
}
