//! Datacenter network and host software-stack model.
//!
//! The paper attributes the elastic SSD's high small-I/O latency to "network
//! latency and software processing overhead within the cloud storage"
//! (§III-B). This crate models that path:
//!
//! * [`HostStack`] — the per-I/O cost of the virtualization/storage stack on
//!   the compute node (virtio/vhost queues, protocol encoding), modelled as
//!   a small worker pool with a per-I/O service distribution,
//! * [`NetPath`] — the VM-to-storage-cluster fabric: a pool of parallel
//!   connections, each serializing payload bytes at a per-stream bandwidth,
//!   plus a propagation/switching delay with configurable jitter and heavy
//!   tail (the P99.9-versus-average separation of Figure 2).
//!
//! # Example
//!
//! ```
//! use uc_net::{NetConfig, NetPath};
//! use uc_sim::{SimRng, SimTime};
//!
//! let mut path = NetPath::new(NetConfig::intra_dc());
//! let mut rng = SimRng::new(7);
//! let arrival = path.send(SimTime::ZERO, 4096, &mut rng);
//! assert!(arrival > SimTime::ZERO);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod persist;

use uc_sim::{
    LatencyDist, ParallelResource, ParallelResourceSnapshot, SimDuration, SimRng, SimTime,
};

/// Parameters of a [`NetPath`].
///
/// # Example
///
/// ```
/// use uc_net::NetConfig;
/// use uc_sim::{LatencyDist, SimDuration};
///
/// let cfg = NetConfig::intra_dc()
///     .with_stream_bandwidth(1.0e9)
///     .with_connections(8);
/// assert_eq!(cfg.connections, 8);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct NetConfig {
    /// One-way propagation + switching delay distribution.
    pub one_way: LatencyDist,
    /// Per-connection stream bandwidth in bytes/second.
    pub stream_bytes_per_sec: f64,
    /// Parallel connections available in each direction.
    pub connections: usize,
}

impl NetConfig {
    /// A typical intra-datacenter path: ~50 µs one-way median with
    /// log-normal jitter and a rare multi-millisecond tail, 1 GB/s per
    /// stream, 16 connections.
    pub fn intra_dc() -> Self {
        NetConfig {
            one_way: LatencyDist::lognormal(SimDuration::from_micros(50), 0.25).with_tail(
                LatencyDist::bounded_pareto(
                    SimDuration::from_micros(500),
                    1.2,
                    SimDuration::from_millis(5),
                ),
                0.001,
            ),
            stream_bytes_per_sec: 1.0e9,
            connections: 16,
        }
    }

    /// Replaces the one-way delay distribution.
    pub fn with_one_way(mut self, dist: LatencyDist) -> Self {
        self.one_way = dist;
        self
    }

    /// Replaces the per-stream bandwidth.
    ///
    /// # Panics
    ///
    /// Panics if `bytes_per_sec` is not positive and finite.
    pub fn with_stream_bandwidth(mut self, bytes_per_sec: f64) -> Self {
        assert!(
            bytes_per_sec > 0.0 && bytes_per_sec.is_finite(),
            "stream bandwidth must be positive"
        );
        self.stream_bytes_per_sec = bytes_per_sec;
        self
    }

    /// Replaces the connection count (minimum 1).
    pub fn with_connections(mut self, connections: usize) -> Self {
        self.connections = connections.max(1);
        self
    }
}

/// One direction of a VM-to-cluster network path.
///
/// Transfers pick the earliest-free connection, serialize their bytes on it
/// at the per-stream bandwidth, then experience the one-way delay sample.
/// Aggregate bandwidth is therefore `connections × stream_bandwidth`, while
/// a single large transfer is bounded by one stream — exactly the behaviour
/// that makes a lone sequential stream unable to saturate an elastic SSD's
/// budget (Observation 3).
#[derive(Debug, Clone)]
pub struct NetPath {
    config: NetConfig,
    lanes: ParallelResource,
    bytes_sent: u64,
    transfers: u64,
}

impl NetPath {
    /// An idle path with the given configuration.
    pub fn new(config: NetConfig) -> Self {
        NetPath {
            lanes: ParallelResource::new(config.connections),
            config,
            bytes_sent: 0,
            transfers: 0,
        }
    }

    /// The path configuration.
    pub fn config(&self) -> &NetConfig {
        &self.config
    }

    /// Total payload bytes transferred.
    pub fn bytes_sent(&self) -> u64 {
        self.bytes_sent
    }

    /// Total transfers performed.
    pub fn transfers(&self) -> u64 {
        self.transfers
    }

    /// Transfers `bytes` starting no earlier than `now`; returns the
    /// arrival instant at the far end.
    pub fn send(&mut self, now: SimTime, bytes: u64, rng: &mut SimRng) -> SimTime {
        let xfer = SimDuration::from_secs_f64(bytes as f64 / self.config.stream_bytes_per_sec);
        let (_, pushed) = self.lanes.acquire(now, xfer);
        self.bytes_sent += bytes;
        self.transfers += 1;
        pushed + self.config.one_way.sample(rng)
    }

    /// Captures the path's complete state.
    pub fn snapshot(&self) -> NetPathSnapshot {
        NetPathSnapshot {
            config: self.config.clone(),
            lanes: self.lanes.snapshot(),
            bytes_sent: self.bytes_sent,
            transfers: self.transfers,
        }
    }

    /// Rebuilds a path that continues exactly where `snapshot` was taken.
    pub fn restore(snapshot: NetPathSnapshot) -> Self {
        #[cfg(feature = "strict-invariants")]
        let expected = snapshot.clone();
        let restored = NetPath {
            lanes: ParallelResource::restore(snapshot.lanes),
            config: snapshot.config,
            bytes_sent: snapshot.bytes_sent,
            transfers: snapshot.transfers,
        };
        // Contract hook (deep): thaw(freeze(p)) is observationally exact.
        #[cfg(feature = "strict-invariants")]
        uc_invariant::deep_enforce(|| {
            if restored.snapshot() != expected {
                return Err(uc_invariant::Violation::new(
                    "uc-net/NetPath",
                    "thaw-freeze-exact",
                    "re-freezing the restored path does not reproduce its snapshot",
                ));
            }
            Ok(())
        });
        restored
    }
}

/// The complete serializable state of a [`NetPath`].
#[derive(Debug, Clone, PartialEq)]
pub struct NetPathSnapshot {
    /// The path configuration.
    pub config: NetConfig,
    /// Per-connection busy-until timelines.
    pub lanes: ParallelResourceSnapshot,
    /// Total payload bytes transferred.
    pub bytes_sent: u64,
    /// Total transfers performed.
    pub transfers: u64,
}

/// The complete serializable state of a [`HostStack`].
#[derive(Debug, Clone, PartialEq)]
pub struct HostStackSnapshot {
    /// The per-I/O service-time distribution.
    pub per_io: LatencyDist,
    /// Worker-pool busy-until timelines.
    pub workers: ParallelResourceSnapshot,
    /// I/Os processed so far.
    pub ios: u64,
}

/// The host-side storage software stack (virtio/vhost, protocol encoding).
///
/// A small worker pool with a per-I/O service-time distribution: enough
/// parallelism that moderate queue depths do not serialize (matching the
/// paper's flat ESSD latency versus queue depth), but a real per-I/O cost
/// that larger-scale deployments amortize.
#[derive(Debug, Clone)]
pub struct HostStack {
    per_io: LatencyDist,
    workers: ParallelResource,
    ios: u64,
}

impl HostStack {
    /// A stack with `workers` parallel contexts and the given per-I/O cost.
    ///
    /// # Panics
    ///
    /// Panics if `workers == 0`.
    pub fn new(workers: usize, per_io: LatencyDist) -> Self {
        HostStack {
            per_io,
            workers: ParallelResource::new(workers),
            ios: 0,
        }
    }

    /// Processes one I/O submission; returns when the stack hands it to the
    /// network.
    pub fn process(&mut self, now: SimTime, rng: &mut SimRng) -> SimTime {
        let cost = self.per_io.sample(rng);
        self.ios += 1;
        self.workers.acquire(now, cost).1
    }

    /// I/Os processed so far.
    pub fn ios(&self) -> u64 {
        self.ios
    }

    /// Captures the stack's complete state.
    pub fn snapshot(&self) -> HostStackSnapshot {
        HostStackSnapshot {
            per_io: self.per_io.clone(),
            workers: self.workers.snapshot(),
            ios: self.ios,
        }
    }

    /// Rebuilds a stack that continues exactly where `snapshot` was taken.
    pub fn restore(snapshot: HostStackSnapshot) -> Self {
        #[cfg(feature = "strict-invariants")]
        let expected = snapshot.clone();
        let restored = HostStack {
            per_io: snapshot.per_io,
            workers: ParallelResource::restore(snapshot.workers),
            ios: snapshot.ios,
        };
        // Contract hook (deep): thaw(freeze(s)) is observationally exact.
        #[cfg(feature = "strict-invariants")]
        uc_invariant::deep_enforce(|| {
            if restored.snapshot() != expected {
                return Err(uc_invariant::Violation::new(
                    "uc-net/HostStack",
                    "thaw-freeze-exact",
                    "re-freezing the restored stack does not reproduce its snapshot",
                ));
            }
            Ok(())
        });
        restored
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixed_config(one_way_us: u64) -> NetConfig {
        NetConfig::intra_dc()
            .with_one_way(LatencyDist::constant(SimDuration::from_micros(one_way_us)))
            .with_stream_bandwidth(1.0e9)
            .with_connections(2)
    }

    #[test]
    fn send_costs_transfer_plus_delay() {
        let mut path = NetPath::new(fixed_config(100));
        let mut rng = SimRng::new(1);
        let arrival = path.send(SimTime::ZERO, 1_000_000, &mut rng);
        // 1 MB at 1 GB/s = 1 ms, plus 100 us one-way.
        let expect = SimTime::ZERO + SimDuration::from_millis(1) + SimDuration::from_micros(100);
        assert_eq!(arrival, expect);
    }

    #[test]
    fn connections_parallelize_up_to_pool_size() {
        let mut path = NetPath::new(fixed_config(0));
        let mut rng = SimRng::new(1);
        let a = path.send(SimTime::ZERO, 1_000_000, &mut rng);
        let b = path.send(SimTime::ZERO, 1_000_000, &mut rng);
        let c = path.send(SimTime::ZERO, 1_000_000, &mut rng);
        assert_eq!(a, b, "two lanes run in parallel");
        assert!(c > a, "third transfer queues");
    }

    #[test]
    fn single_stream_is_bandwidth_bound() {
        let mut path = NetPath::new(fixed_config(0).with_connections(16));
        let mut rng = SimRng::new(1);
        // One big transfer cannot use more than one lane.
        let arrival = path.send(SimTime::ZERO, 16_000_000, &mut rng);
        assert_eq!(arrival, SimTime::ZERO + SimDuration::from_millis(16));
    }

    #[test]
    fn stats_accumulate() {
        let mut path = NetPath::new(fixed_config(1));
        let mut rng = SimRng::new(1);
        path.send(SimTime::ZERO, 10, &mut rng);
        path.send(SimTime::ZERO, 20, &mut rng);
        assert_eq!(path.bytes_sent(), 30);
        assert_eq!(path.transfers(), 2);
    }

    #[test]
    fn jittered_delay_varies() {
        let mut path = NetPath::new(NetConfig::intra_dc().with_connections(1));
        let mut rng = SimRng::new(3);
        let mut arrivals = Vec::new();
        let mut now = SimTime::ZERO;
        for _ in 0..32 {
            let a = path.send(now, 0, &mut rng);
            arrivals.push((a - now).as_nanos());
            now = a;
        }
        let first = arrivals[0];
        assert!(
            arrivals.iter().any(|&d| d != first),
            "lognormal jitter should vary"
        );
    }

    #[test]
    fn host_stack_parallelism() {
        let mut stack = HostStack::new(2, LatencyDist::constant(SimDuration::from_micros(10)));
        let mut rng = SimRng::new(1);
        let a = stack.process(SimTime::ZERO, &mut rng);
        let b = stack.process(SimTime::ZERO, &mut rng);
        let c = stack.process(SimTime::ZERO, &mut rng);
        assert_eq!(a, b);
        assert_eq!(c, a + SimDuration::from_micros(10));
        assert_eq!(stack.ios(), 3);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_bandwidth_rejected() {
        let _ = NetConfig::intra_dc().with_stream_bandwidth(0.0);
    }

    #[test]
    fn snapshot_restore_resumes_path_and_stack() {
        let mut rng = SimRng::new(9);
        let mut path = NetPath::new(NetConfig::intra_dc().with_connections(2));
        path.send(SimTime::ZERO, 1_000_000, &mut rng);
        let snap = path.snapshot();
        let mut resumed = NetPath::restore(snap.clone());
        assert_eq!(resumed.snapshot(), snap, "round trip is lossless");
        let mut rng2 = rng.clone();
        assert_eq!(
            path.send(SimTime::ZERO, 500_000, &mut rng),
            resumed.send(SimTime::ZERO, 500_000, &mut rng2)
        );
        assert_eq!(path.bytes_sent(), resumed.bytes_sent());

        let mut stack = HostStack::new(2, LatencyDist::constant(SimDuration::from_micros(10)));
        stack.process(SimTime::ZERO, &mut rng);
        let mut resumed = HostStack::restore(stack.snapshot());
        let mut rng2 = rng.clone();
        assert_eq!(
            stack.process(SimTime::ZERO, &mut rng),
            resumed.process(SimTime::ZERO, &mut rng2)
        );
        assert_eq!(stack.ios(), resumed.ios());
    }
}
