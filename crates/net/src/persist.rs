//! [`Persist`] codecs for the network-layer snapshot types.

use crate::{HostStackSnapshot, NetConfig, NetPathSnapshot};
use uc_persist::{DecodeError, Decoder, Encoder, Persist};
use uc_sim::{LatencyDist, ParallelResourceSnapshot};

impl Persist for NetConfig {
    fn encode(&self, w: &mut Encoder) {
        self.one_way.encode(w);
        w.put_f64(self.stream_bytes_per_sec);
        self.connections.encode(w);
    }

    fn decode(r: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        let config = NetConfig {
            one_way: LatencyDist::decode(r)?,
            stream_bytes_per_sec: r.get_f64()?,
            connections: usize::decode(r)?,
        };
        if !(config.stream_bytes_per_sec > 0.0 && config.stream_bytes_per_sec.is_finite()) {
            return Err(DecodeError::InvalidValue {
                what: "NetConfig.stream_bytes_per_sec",
            });
        }
        if config.connections == 0 {
            return Err(DecodeError::InvalidValue {
                what: "NetConfig.connections",
            });
        }
        Ok(config)
    }
}

impl Persist for NetPathSnapshot {
    fn encode(&self, w: &mut Encoder) {
        self.config.encode(w);
        self.lanes.encode(w);
        w.put_u64(self.bytes_sent);
        w.put_u64(self.transfers);
    }

    fn decode(r: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(NetPathSnapshot {
            config: NetConfig::decode(r)?,
            lanes: ParallelResourceSnapshot::decode(r)?,
            bytes_sent: r.get_u64()?,
            transfers: r.get_u64()?,
        })
    }
}

impl Persist for HostStackSnapshot {
    fn encode(&self, w: &mut Encoder) {
        self.per_io.encode(w);
        self.workers.encode(w);
        w.put_u64(self.ios);
    }

    fn decode(r: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(HostStackSnapshot {
            per_io: LatencyDist::decode(r)?,
            workers: ParallelResourceSnapshot::decode(r)?,
            ios: r.get_u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{HostStack, NetPath};
    use uc_sim::{SimDuration, SimRng, SimTime};

    fn round_trip<T: Persist + PartialEq + std::fmt::Debug>(value: T) {
        let mut w = Encoder::new();
        value.encode(&mut w);
        let bytes = w.into_bytes();
        let mut r = Decoder::new(&bytes);
        let back = T::decode(&mut r).expect("decodes");
        r.finish().expect("fully consumed");
        assert_eq!(back, value);
    }

    #[test]
    fn busy_path_and_stack_round_trip() {
        let mut rng = SimRng::new(5);
        let mut path = NetPath::new(NetConfig::intra_dc().with_connections(4));
        for _ in 0..8 {
            path.send(SimTime::ZERO, 500_000, &mut rng);
        }
        round_trip(path.snapshot());

        let mut stack = HostStack::new(2, LatencyDist::constant(SimDuration::from_micros(10)));
        stack.process(SimTime::ZERO, &mut rng);
        round_trip(stack.snapshot());
    }

    #[test]
    fn invalid_config_values_are_typed() {
        let mut snapshot = NetPath::new(NetConfig::intra_dc()).snapshot();
        snapshot.config.stream_bytes_per_sec = -1.0;
        let mut w = Encoder::new();
        snapshot.encode(&mut w);
        let bytes = w.into_bytes();
        assert_eq!(
            NetPathSnapshot::decode(&mut Decoder::new(&bytes)),
            Err(DecodeError::InvalidValue {
                what: "NetConfig.stream_bytes_per_sec"
            })
        );
    }
}
