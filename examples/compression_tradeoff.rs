//! Implication 5: re-evaluate I/O-reduction techniques on elastic SSDs.
//!
//! On a local SSD, inline compression often *hurts*: the codec is slower
//! than the device. On an elastic SSD — whose effective rate is a paid
//! budget behind a network — the same codec both speeds the workload up
//! and shrinks the budget you must buy. This example measures it end to
//! end: the same logical write volume, compressed versus raw, on both
//! device classes, charging the codec's CPU time explicitly.
//!
//! Run with: `cargo run --release --example compression_tradeoff`

use unwritten_contract::core::implications::advise_io_reduction;
use unwritten_contract::prelude::*;

/// Logical bytes the application persists.
const VOLUME: u64 = 1 << 30;
/// Codec throughput (zstd-class) and ratio (output/input).
const CODEC_BYTES_PER_SEC: f64 = 1.5e9;
const RATIO: f64 = 0.5;
const IO: u32 = 256 << 10;

fn main() -> Result<(), IoError> {
    println!(
        "persisting {} MiB; codec: {:.1} GB/s at {:.0}% output ratio\n",
        VOLUME >> 20,
        CODEC_BYTES_PER_SEC / 1e9,
        RATIO * 100.0
    );
    println!(
        "{:<28} {:>12} {:>14} {:>10}",
        "device", "raw (s)", "compressed (s)", "verdict"
    );

    let ssd_rate = run_device("SSD (Samsung 970 Pro)", || {
        Ssd::new(SsdConfig::samsung_970_pro(2 << 30))
    })?;
    let essd_rate = run_device("ESSD-2 (Alibaba PL3)", || {
        Essd::new(EssdConfig::alibaba_pl3(4 << 30))
    })?;

    // The analytic advisor reaches the same verdicts from the measured
    // effective device rates.
    println!("\nanalytic advisor (on measured effective rates):");
    println!(
        "  SSD    — {}",
        advise_io_reduction(ssd_rate, CODEC_BYTES_PER_SEC, RATIO)
    );
    println!(
        "  ESSD-2 — {}",
        advise_io_reduction(essd_rate, CODEC_BYTES_PER_SEC, RATIO)
    );
    println!(
        "\nImplication 5: the codec that slows a local SSD down pays for \
         itself on the\nelastic SSD — and cuts the throughput budget (and \
         bill) by the same ratio."
    );
    Ok(())
}

/// Runs both variants on fresh devices; returns the raw effective rate in
/// bytes/second.
fn run_device<D, F>(label: &str, fresh: F) -> Result<f64, IoError>
where
    D: BlockDevice,
    F: Fn() -> D,
{
    // Raw: write the full volume.
    let mut dev = fresh();
    let raw = JobSpec::new(AccessPattern::SeqWrite, IO, 8)
        .with_byte_limit(VOLUME)
        .with_seed(31);
    let raw_secs = run_job(&mut dev, &raw)?.elapsed().as_secs_f64();

    // Compressed: write RATIO x the bytes, pay the codec on the CPU.
    let mut dev = fresh();
    let compressed = JobSpec::new(AccessPattern::SeqWrite, IO, 8)
        .with_byte_limit((VOLUME as f64 * RATIO) as u64)
        .with_seed(32);
    let device_secs = run_job(&mut dev, &compressed)?.elapsed().as_secs_f64();
    let cpu_secs = VOLUME as f64 / CODEC_BYTES_PER_SEC;
    // The codec pipelines with device writes; the slower stage dominates.
    let compressed_secs = device_secs.max(cpu_secs);

    println!(
        "{:<28} {:>12.3} {:>14.3} {:>10}",
        label,
        raw_secs,
        compressed_secs,
        if compressed_secs < raw_secs {
            "compress"
        } else {
            "raw"
        }
    );
    Ok(VOLUME as f64 / raw_secs)
}
