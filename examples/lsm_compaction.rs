//! Implication 3 case study: an LSM-tree-like ingest pipeline on a local
//! SSD versus an elastic SSD.
//!
//! Log-structured engines (RocksDB and friends) turn random updates into
//! sequential writes — memtable flushes and compactions — precisely because
//! random writes are "considered harmful" on local flash. The paper's
//! Observation 3 says elastic SSDs invert that trade-off: random writes are
//! *faster* than sequential ones. This example models the two write
//! strategies of a storage engine and measures ingest throughput on each
//! device:
//!
//! * **log-structured**: updates buffered and written as large sequential
//!   segments (plus compaction re-writes, modeled with a write
//!   amplification factor),
//! * **in-place**: updates written randomly at their home location, no
//!   compaction rewrites at all.
//!
//! Run with: `cargo run --release --example lsm_compaction`

use unwritten_contract::prelude::*;

/// Bytes an application update writes.
const UPDATE_BYTES: u64 = 512 << 20;
/// LSM compaction write amplification (levels rewriting data).
const LSM_WA: f64 = 3.0;
/// Segment size the log-structured engine writes.
const SEGMENT: u32 = 256 << 10;
/// Page-sized in-place updates.
const IN_PLACE_IO: u32 = 16 << 10;

fn main() -> Result<(), IoError> {
    println!(
        "ingesting {} MiB of updates; log-structured writes {}x of that \
         sequentially, in-place writes it randomly\n",
        UPDATE_BYTES >> 20,
        LSM_WA
    );
    println!(
        "{:<28} {:>16} {:>16} {:>9}",
        "device", "log-structured", "in-place random", "winner"
    );

    run_device("SSD (Samsung 970 Pro)", || {
        Ssd::new(SsdConfig::samsung_970_pro(2 << 30))
    })?;
    run_device("ESSD-1 (AWS io2)", || {
        Essd::new(EssdConfig::aws_io2(4 << 30))
    })?;
    run_device("ESSD-2 (Alibaba PL3)", || {
        Essd::new(EssdConfig::alibaba_pl3(4 << 30))
    })?;

    println!(
        "\nImplication 3: on the ESSDs the in-place (random) strategy matches \
         or beats\nlog-structuring, because backend striping parallelizes \
         random writes while\nsequential segments pin one chunk replica set \
         at a time — and the engine\nadditionally saves the {LSM_WA}x \
         compaction rewrite volume."
    );
    Ok(())
}

fn run_device<D, F>(label: &str, fresh: F) -> Result<(), IoError>
where
    D: BlockDevice,
    F: Fn() -> D,
{
    // Standard practice: precondition each device with a full sequential
    // fill so the FTL is in its steady state (this is what makes in-place
    // random writes face GC on the local SSD).
    use unwritten_contract::workload::precondition;

    // Log-structured: sequential segments, LSM_WA x the update volume.
    let mut dev = fresh();
    let t0 = precondition(&mut dev)?;
    let log_spec = JobSpec::new(AccessPattern::SeqWrite, SEGMENT, 8)
        .with_byte_limit((UPDATE_BYTES as f64 * LSM_WA) as u64)
        .with_seed(11)
        .with_start(t0);
    let log_report = run_job(&mut dev, &log_spec)?;
    // Ingest rate = application bytes / time spent writing WA x bytes.
    let log_ingest = UPDATE_BYTES as f64 / 1e9 / log_report.elapsed().as_secs_f64();

    // In-place: random small writes, exactly the update volume.
    let mut dev = fresh();
    let t0 = precondition(&mut dev)?;
    let inplace_spec = JobSpec::new(AccessPattern::RandWrite, IN_PLACE_IO, 8)
        .with_byte_limit(UPDATE_BYTES)
        .with_seed(12)
        .with_start(t0);
    let inplace_report = run_job(&mut dev, &inplace_spec)?;
    let inplace_ingest = UPDATE_BYTES as f64 / 1e9 / inplace_report.elapsed().as_secs_f64();

    println!(
        "{:<28} {:>11.2} GB/s {:>11.2} GB/s {:>9}",
        label,
        log_ingest,
        inplace_ingest,
        if inplace_ingest > log_ingest {
            "in-place"
        } else {
            "log"
        }
    );
    Ok(())
}
