//! Quickstart: build the paper's devices, run one FIO-style job on each,
//! and see Observation 1 (the small-I/O latency gap) first-hand — then
//! submit one queue-pair batch directly to watch the same mechanism at
//! the `IoBatch`/`Completion` level.
//!
//! Run with: `cargo run --release --example quickstart`

use unwritten_contract::prelude::*;

fn main() -> Result<(), IoError> {
    // The paper's devices at simulation scale (1 GiB SSD, 2 GiB ESSDs —
    // the 1 TB : 2 TB ratio of Table I at 1/1024 scale).
    let mut ssd = Ssd::new(SsdConfig::samsung_970_pro(1 << 30));
    let mut essd1 = Essd::new(EssdConfig::aws_io2(2 << 30));
    let mut essd2 = Essd::new(EssdConfig::alibaba_pl3(2 << 30));

    println!("devices:");
    for info in [ssd.info(), essd1.info(), essd2.info()] {
        println!(
            "  {:<28} {:>6} MiB capacity, {} B blocks",
            info.name(),
            info.capacity() >> 20,
            info.logical_block()
        );
    }

    // The paper's smallest-scale workload: 4 KiB random writes at QD 1.
    let small = JobSpec::new(AccessPattern::RandWrite, 4096, 1).with_io_limit(5_000);
    // And a well-scaled one: 256 KiB at QD 16 (volume kept below the
    // scaled capacities so device GC does not interfere, as in Figure 2).
    let large = JobSpec::new(AccessPattern::RandWrite, 256 << 10, 16).with_io_limit(2_000);

    println!("\n4 KiB random writes at QD1 (not scaled up):");
    let ssd_small = run_job(&mut ssd, &small)?;
    let essd1_small = run_job(&mut essd1, &small)?;
    let essd2_small = run_job(&mut essd2, &small)?;
    print_row("SSD", &ssd_small, None);
    print_row("ESSD-1", &essd1_small, Some(&ssd_small));
    print_row("ESSD-2", &essd2_small, Some(&ssd_small));

    // Fresh devices for the second experiment, continuing each device's
    // clock would also work (see JobSpec::with_start); fresh state keeps
    // the two cells independent like the paper's grid.
    let mut ssd = Ssd::new(SsdConfig::samsung_970_pro(1 << 30));
    let mut essd1 = Essd::new(EssdConfig::aws_io2(2 << 30));
    let mut essd2 = Essd::new(EssdConfig::alibaba_pl3(2 << 30));
    println!("\n256 KiB random writes at QD16 (scaled up — Implication 1):");
    let ssd_large = run_job(&mut ssd, &large)?;
    let essd1_large = run_job(&mut essd1, &large)?;
    let essd2_large = run_job(&mut essd2, &large)?;
    print_row("SSD", &ssd_large, None);
    print_row("ESSD-1", &essd1_large, Some(&ssd_large));
    print_row("ESSD-2", &essd2_large, Some(&ssd_large));

    println!(
        "\nObservation 1: scaling I/O size and queue depth up collapses the\n\
         cloud latency penalty from tens-of-x to single digits."
    );

    // The queue-pair view of the same mechanism: ring one doorbell with a
    // QD16 burst of 4 KiB writes and read the per-slot completions. On
    // the SSD the serialized firmware pipeline spreads the completions
    // out; the ESSD absorbs the whole burst at roughly QD1 latency.
    let batch: IoBatch = (0..16u64)
        .map(|i| IoRequest::write(i * 4096, 4096, SimTime::ZERO))
        .collect();
    let roster = DeviceRoster::scaled_default();
    println!("\none 16-deep 4 KiB write batch, per-slot completion latency:");
    for kind in [DeviceKind::LocalSsd, DeviceKind::Essd1] {
        let mut dev = roster.build(kind);
        let completions = dev.submit_batch(&batch)?;
        let fastest = completions.iter().map(|c| c.latency()).min().unwrap();
        let slowest = completions.iter().map(|c| c.latency()).max().unwrap();
        println!(
            "  {:<8} fastest slot {:>7.1} us   slowest slot {:>7.1} us",
            kind,
            fastest.as_micros_f64(),
            slowest.as_micros_f64()
        );
    }
    Ok(())
}

fn print_row(name: &str, report: &JobReport, baseline: Option<&JobReport>) {
    let (avg, p999) = report.headline_latency();
    let gap = baseline
        .map(|b| {
            format!(
                " ({:.1}x the SSD)",
                avg.as_micros_f64() / b.latency.mean().as_micros_f64()
            )
        })
        .unwrap_or_default();
    println!(
        "  {:<8} avg {:>9.1} us   p99.9 {:>9.1} us   {:>7.2} GB/s{}",
        name,
        avg.as_micros_f64(),
        p999.as_micros_f64(),
        report.throughput_gbps(),
        gap
    );
}
