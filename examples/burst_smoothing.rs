//! Implication 4: smooth bursty I/O below the throughput budget.
//!
//! The ESSD's maximum bandwidth is a *paid budget* (Observation 4), so a
//! workload that bursts must either buy the peak or queue. This example
//! runs the same bursty write demand against an elastic SSD twice —
//! unsmoothed (all requests at the burst instant) and smoothed (spread
//! across the burst interval) — and then uses the planner to compute the
//! cheapest budget that still meets a latency deadline.
//!
//! Run with: `cargo run --release --example burst_smoothing`

use unwritten_contract::core::implications::plan_smoothing;
use unwritten_contract::prelude::*;
use unwritten_contract::workload::{replay, Shaper, Trace};

/// One burst every second…
const BURST_PERIOD: SimDuration = SimDuration::from_secs(1);
/// …of 200 x 256 KiB writes (~50 MB per burst, ~0.05 GB/s average).
const BURST_IOS: u64 = 200;
const IO_SIZE: u32 = 256 << 10;
const BURSTS: u64 = 10;

fn main() -> Result<(), IoError> {
    let spec = JobSpec::new(AccessPattern::RandWrite, IO_SIZE, 1).with_seed(21);

    // Unsmoothed: every burst lands at once.
    let mut dev = Essd::new(EssdConfig::alibaba_pl3(2 << 30));
    let bursty: Vec<SimTime> = (0..BURSTS)
        .flat_map(|b| {
            let at = SimTime::ZERO + BURST_PERIOD * b;
            std::iter::repeat_n(at, BURST_IOS as usize)
        })
        .collect();
    let bursty_report = run_open_loop(&mut dev, &spec, bursty)?;

    // Smoothed: the same demand spread evenly inside each period.
    let mut dev = Essd::new(EssdConfig::alibaba_pl3(2 << 30));
    let gap = SimDuration::from_nanos(BURST_PERIOD.as_nanos() / BURST_IOS);
    let smooth: Vec<SimTime> = (0..BURSTS)
        .flat_map(|b| {
            let start = SimTime::ZERO + BURST_PERIOD * b;
            (0..BURST_IOS).map(move |i| start + gap * i)
        })
        .collect();
    let smooth_report = run_open_loop(&mut dev, &spec, smooth)?;

    // Or let the Shaper do the smoothing mechanically: replay the same
    // bursty trace through a paced device adapter.
    let trace = Trace::bursty_writes(BURSTS, BURST_IOS, BURST_PERIOD, IO_SIZE, 1 << 30, 21);
    let shaped_rate = 0.09e9; // the planner's answer, see below
    let mut shaped_dev = Shaper::new(
        Essd::new(EssdConfig::alibaba_pl3(2 << 30)),
        shaped_rate,
        4 << 20,
    );
    let shaped_report = replay(&mut shaped_dev, &trace)?;

    println!("ESSD-2, {BURSTS} bursts of {BURST_IOS} x 256 KiB writes:");
    // bursty   = bursts hit the device as-is;
    // smoothed = the application spreads submissions inside each period;
    // shaper   = a pacing layer drains each burst at the planner's minimum
    //            budget, trading bounded delay (the 500 ms deadline) for a
    //            5.8x smaller purchased rate.
    for (label, r) in [
        ("bursty", &bursty_report),
        ("smoothed", &smooth_report),
        ("shaper", &shaped_report),
    ] {
        let (avg, p999) = r.headline_latency();
        println!(
            "  {:<9} avg {:>9.1} us   p99.9 {:>10.1} us   max {:>10.1} us",
            label,
            avg.as_micros_f64(),
            p999.as_micros_f64(),
            r.latency.max().as_micros_f64()
        );
    }

    // The planner: what budget must we buy with / without smoothing? The
    // demand trace uses 100 ms windows so the burst's instantaneous peak
    // is visible to the planner.
    let sub_windows = 10u64;
    let demand: Vec<u64> = (0..BURSTS * sub_windows)
        .map(|w| {
            if w % sub_windows == 0 {
                BURST_IOS * IO_SIZE as u64
            } else {
                0
            }
        })
        .collect();
    let plan = plan_smoothing(
        &demand,
        SimDuration::from_nanos(BURST_PERIOD.as_nanos() / sub_windows),
        SimDuration::from_millis(500),
    );
    println!("\nbudget planning for a 500 ms queueing deadline:");
    println!("  {plan}");
    println!(
        "\nImplication 4: smoothing the same demand over the timeline meets \
         the deadline\nwith a fraction of the throughput budget — budget is \
         money on an elastic SSD.\nThe shaper row shows the planner's \
         minimum-budget operating point: every burst\nis absorbed within \
         the 500 ms deadline while paying for ~0.09 GB/s instead of\nthe \
         0.52 GB/s peak."
    );
    Ok(())
}
