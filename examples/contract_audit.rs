//! Audit a device roster against the full unwritten contract and print the
//! implication advisories the paper derives from it.
//!
//! Run with: `cargo run --release --example contract_audit`
//! (add `--full` for paper-scale cell sizes; the default uses the quick
//! grids and finishes in a few seconds).
//!
//! The audit fans measurement cells out on the shared experiment
//! [`Executor`] — one worker per core by default; set `UC_THREADS=1` to
//! force the sequential path (the report is byte-identical either way).

use unwritten_contract::core::contract::{check_all, ContractInputs};
use unwritten_contract::core::devices::DeviceKind;
use unwritten_contract::core::experiments::{
    fig2, fig3, fig4, fig5, Fig2Config, Fig3Config, Fig4Config, Fig5Config,
};
use unwritten_contract::core::implications::{
    advise_gc_mitigation, advise_io_reduction, advise_scale_up, advise_write_pattern,
};
use unwritten_contract::prelude::*;

fn main() -> Result<(), IoError> {
    let full = std::env::args().any(|a| a == "--full");
    let roster = DeviceRoster::scaled_default();
    let (f2, f3, f4, f5) = if full {
        (
            Fig2Config::paper(),
            Fig3Config::paper(),
            Fig4Config::paper(),
            Fig5Config::paper(),
        )
    } else {
        (
            Fig2Config::quick(),
            Fig3Config::quick(),
            Fig4Config::quick(),
            Fig5Config::quick(),
        )
    };

    let exec = Executor::from_env();
    eprintln!(
        "running the four experiments on {} executor thread(s)…",
        exec.threads()
    );
    let fig2_ssd = fig2::run_with(&roster, DeviceKind::LocalSsd, &f2, &exec)?;
    let fig2_essds = vec![
        fig2::run_with(&roster, DeviceKind::Essd1, &f2, &exec)?,
        fig2::run_with(&roster, DeviceKind::Essd2, &f2, &exec)?,
    ];
    // fig3 is one continuous run per device; fan the devices out instead.
    let fig3: Vec<_> = exec
        .run(
            DeviceKind::ALL
                .iter()
                .map(|&k| {
                    let roster = &roster;
                    let f3 = &f3;
                    move || fig3::run(roster, k, f3)
                })
                .collect(),
        )
        .into_iter()
        .collect::<Result<_, _>>()?;
    let fig4: Vec<_> = DeviceKind::ALL
        .iter()
        .map(|&k| fig4::run_with(&roster, k, &f4, &exec))
        .collect::<Result<_, _>>()?;
    let fig5_ssd = fig5::run_with(&roster, DeviceKind::LocalSsd, &f5, &exec)?;
    let fig5_essds = vec![
        fig5::run_with(&roster, DeviceKind::Essd1, &f5, &exec)?,
        fig5::run_with(&roster, DeviceKind::Essd2, &f5, &exec)?,
    ];

    let inputs = ContractInputs {
        fig2_ssd,
        fig2_essds,
        fig3,
        fig4,
        fig5_ssd,
        fig5_essds,
    };
    let report = check_all(&inputs);
    println!("{report}");

    println!("--- Implication advisories ---");
    // #1: how far must I scale I/Os to get within 5x of local latency?
    for essd in &inputs.fig2_essds {
        let advice = advise_scale_up(essd, &inputs.fig2_ssd, 0, 5.0);
        println!("Implication 1 (random writes) — {advice}");
    }
    // #2: is host-side GC mitigation still worth it?
    for r in &inputs.fig3 {
        println!("Implication 2 — {}", advise_gc_mitigation(r));
    }
    // #3: random or sequential writes?
    for r in &inputs.fig4 {
        println!("Implication 3 — {}", advise_write_pattern(r));
    }
    // #5: does a 2:1 compressor at 1.5 GB/s pay off per device?
    for (label, rate) in [
        ("SSD (2.7 GB/s)", 2.7e9),
        ("ESSD-2 budget (1.1 GB/s)", 1.1e9),
    ] {
        let advice = advise_io_reduction(rate, 1.5e9, 0.5);
        println!("Implication 5 on {label} — {advice}");
    }
    Ok(())
}
