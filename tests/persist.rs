//! Facade-level tests of the on-disk checkpoint format: a table-driven
//! corruption sweep over every record codec, and round-trip property
//! tests on raw device checkpoints.
//!
//! The contract under test is the persistence layer's half of the
//! crash-resume story: *any* corrupted, truncated or
//! version-mismatched checkpoint file decodes to a **typed error** —
//! never a panic, never silently-wrong state — and every intact record
//! round-trips losslessly.

use proptest::prelude::*;
use std::path::PathBuf;
use unwritten_contract::blockdev::{CheckpointDevice, DeviceCheckpoint};
use unwritten_contract::core::devices::{payload_codecs, DeviceKind, DeviceRoster};
use unwritten_contract::core::experiments::fig3::{self, Fig3Config};
use unwritten_contract::core::experiments::{Fig3Checkpoint, SegmentedRun};
use unwritten_contract::essd::{Essd, EssdCheckpoint, EssdConfig};
use unwritten_contract::persist::{DecodeError, Decoder, Encoder, Persist};
use unwritten_contract::prelude::*;
use unwritten_contract::ssd::SsdCheckpoint;

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("uc-facade-persist-tests")
        .join(format!("{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

/// A busy SSD checkpoint (write-buffer, prefetcher and FTL state all
/// populated).
fn busy_ssd() -> Ssd {
    let mut ssd = Ssd::new(SsdConfig::samsung_970_pro(256 << 20));
    let mut now = SimTime::ZERO;
    let mut state = 5u64;
    for _ in 0..64 {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
        let off = (state % 2048) * 4096;
        let req = if state.is_multiple_of(3) {
            unwritten_contract::blockdev::IoRequest::read(off, 4096, now)
        } else {
            unwritten_contract::blockdev::IoRequest::write(off, 8192, now)
        };
        now = ssd.submit(&req).unwrap();
    }
    ssd
}

/// A busy ESSD checkpoint (network lanes, cluster nodes, token buckets).
fn busy_essd() -> Essd {
    let mut essd = Essd::new(EssdConfig::aws_io2(128 << 20));
    let mut now = SimTime::ZERO;
    for i in 0..32u64 {
        let off = (i % 100) * (1 << 20);
        now = essd
            .submit(&unwritten_contract::blockdev::IoRequest::write(
                off,
                1 << 20,
                now,
            ))
            .unwrap();
    }
    essd
}

/// A mid-run fig3 segment checkpoint.
fn fig3_checkpoint() -> Fig3Checkpoint {
    let roster = DeviceRoster::with_capacities(128 << 20, 128 << 20);
    let mut run = SegmentedRun::start(&roster, DeviceKind::Essd2, &Fig3Config::quick(), 4).unwrap();
    run.advance().unwrap();
    run.checkpoint()
}

/// A non-trivial `uc.trace.v1` trace.
fn sample_trace() -> unwritten_contract::workload::Trace {
    unwritten_contract::workload::Trace::bursty_writes(
        4,
        9,
        SimDuration::from_millis(1),
        8192,
        8 << 20,
        0x7ACE,
    )
}

/// A mid-run trace-phase checkpoint (device + paused replay driver).
fn trace_run_checkpoint() -> unwritten_contract::core::experiments::TraceRunCheckpoint {
    use unwritten_contract::core::experiments::trace::{TraceRun, TraceRunConfig};
    let roster = DeviceRoster::with_capacities(128 << 20, 128 << 20);
    let trace = sample_trace();
    let mut run = TraceRun::start(
        &roster,
        DeviceKind::Essd1,
        &trace,
        &TraceRunConfig::open_loop(3),
    )
    .unwrap();
    run.advance(&trace).unwrap();
    run.checkpoint()
}

/// A populated `uc.obs.v1` telemetry record: counters, gauges and
/// histograms in the snapshot, plus a flight tail that has wrapped.
fn obs_report() -> unwritten_contract::obs::ObsReport {
    use unwritten_contract::obs::{FlightRecorder, MetricsRegistry, ObsReport};
    let mut reg = MetricsRegistry::new();
    let ios = reg.counter("ftl.host_pages_written");
    let depth = reg.gauge("essd.lane0.queue_depth");
    let lat = reg.hist("fleet.tenant_latency_ns");
    reg.add(ios, 4096);
    reg.set(depth, -3);
    for i in 1..=100u64 {
        reg.record(lat, SimDuration::from_micros(i));
    }
    let mut flight = FlightRecorder::new(4);
    for i in 0..6u64 {
        flight.record(
            SimTime::from_nanos(i * 100),
            format!("epoch-barrier e={i}"),
            i,
            i * 2,
        );
    }
    ObsReport::capture(&reg, &flight)
}

/// How a checkpoint file decodes: through the device-checkpoint reader,
/// the fig3 reader, the trace-run reader, the binary-trace decoder, or
/// the `uc.obs.v1` telemetry reader.
enum Reader {
    Device,
    Fig3,
    TraceRun,
    Trace,
    Obs,
}

impl Reader {
    fn load(&self, path: &std::path::Path) -> Result<(), DecodeError> {
        match self {
            Reader::Device => DeviceCheckpoint::load_from(path, &payload_codecs()).map(|_| ()),
            Reader::Fig3 => Fig3Checkpoint::load_from(path).map(|_| ()),
            Reader::Obs => unwritten_contract::obs::ObsReport::load_from(path).map(|_| ()),
            Reader::TraceRun => {
                unwritten_contract::core::experiments::TraceRunCheckpoint::load_from(path)
                    .map(|_| ())
            }
            // The in-memory decoder checks the envelope CRC before any
            // entry, so every byte-level mutation lands on the same
            // typed error the other record codecs report. (The
            // streaming `TraceReader` is corruption-swept in its own
            // unit tests.)
            Reader::Trace => {
                let bytes = std::fs::read(path).map_err(|e| DecodeError::Io {
                    path: path.display().to_string(),
                    message: e.to_string(),
                })?;
                unwritten_contract::trace::decode_trace(&bytes)
                    .map(|_| ())
                    .map_err(|e| match e {
                        unwritten_contract::trace::TraceFileError::Decode(e) => e,
                        unwritten_contract::trace::TraceFileError::Invalid(_) => {
                            DecodeError::InvalidValue {
                                what: "trace entries",
                            }
                        }
                    })
            }
        }
    }
}

/// The corruption table of the CI acceptance criterion: every mutation
/// of every snapshot codec's record file must decode to the matching
/// typed error — no panics, no silent acceptance.
#[test]
fn corruption_table_over_every_record_codec() {
    let dir = temp_dir("corruption-table");

    let ssd_path = dir.join("ssd.ckpt");
    CheckpointDevice::checkpoint(&busy_ssd())
        .save_to(&ssd_path)
        .unwrap();
    let essd_path = dir.join("essd.ckpt");
    CheckpointDevice::checkpoint(&busy_essd())
        .save_to(&essd_path)
        .unwrap();
    let fig3_path = dir.join("fig3.ckpt");
    fig3_checkpoint().save_to(&fig3_path).unwrap();
    let trace_run_path = dir.join("trace-run.ckpt");
    trace_run_checkpoint().save_to(&trace_run_path).unwrap();
    let trace_path = dir.join("t.trace");
    unwritten_contract::trace::save_trace(&trace_path, &sample_trace()).unwrap();
    let obs_path = dir.join("telemetry.obs");
    obs_report().save_to(&obs_path).unwrap();

    let files: [(&str, PathBuf, Reader); 6] = [
        ("ssd", ssd_path, Reader::Device),
        ("essd", essd_path, Reader::Device),
        ("fig3", fig3_path, Reader::Fig3),
        ("trace-run", trace_run_path, Reader::TraceRun),
        ("trace", trace_path, Reader::Trace),
        ("obs", obs_path, Reader::Obs),
    ];

    for (codec, path, reader) in &files {
        let good = std::fs::read(path).unwrap();
        // Intact file decodes cleanly.
        reader
            .load(path)
            .unwrap_or_else(|e| panic!("{codec}: intact file must load: {e}"));

        type Mutation = (
            &'static str,
            Box<dyn Fn(&[u8]) -> Vec<u8>>,
            fn(&DecodeError) -> bool,
        );
        let mutations: Vec<Mutation> = vec![
            (
                "truncated to half",
                Box::new(|b: &[u8]| b[..b.len() / 2].to_vec()),
                |e| matches!(e, DecodeError::Truncated { .. }),
            ),
            (
                "truncated to 4 bytes",
                Box::new(|b: &[u8]| b[..4].to_vec()),
                |e| matches!(e, DecodeError::BadMagic),
            ),
            (
                "last byte cut",
                Box::new(|b: &[u8]| b[..b.len() - 1].to_vec()),
                |e| matches!(e, DecodeError::Truncated { .. }),
            ),
            (
                "truncated mid-record",
                Box::new(|b: &[u8]| {
                    // Cut inside the payload proper (not at an arbitrary
                    // byte count): 8 magic + 2 version + (8 + kind tag) +
                    // 8-byte payload length, then half the payload.
                    let kind_len = u64::from_le_bytes(b[10..18].try_into().unwrap()) as usize;
                    let payload_start = 26 + kind_len;
                    let payload_len =
                        u64::from_le_bytes(b[18 + kind_len..payload_start].try_into().unwrap())
                            as usize;
                    b[..payload_start + payload_len / 2].to_vec()
                }),
                |e| matches!(e, DecodeError::Truncated { .. }),
            ),
            (
                "flipped bit in the payload length field",
                Box::new(|b: &[u8]| {
                    let kind_len = u64::from_le_bytes(b[10..18].try_into().unwrap()) as usize;
                    let mut v = b.to_vec();
                    // MSB of the little-endian u64 payload length: the
                    // decoder now wants ~2^63 bytes it does not have.
                    v[25 + kind_len] ^= 0x80;
                    v
                }),
                |e| matches!(e, DecodeError::Truncated { .. }),
            ),
            (
                "flipped bit in the kind length field",
                Box::new(|b: &[u8]| {
                    let mut v = b.to_vec();
                    // MSB of the kind-tag length at bytes 10..18.
                    v[17] ^= 0x80;
                    v
                }),
                |e| matches!(e, DecodeError::Truncated { .. }),
            ),
            (
                "flipped payload bit",
                Box::new(|b: &[u8]| {
                    let mut v = b.to_vec();
                    let mid = v.len() / 2;
                    v[mid] ^= 0x20;
                    v
                }),
                |e| matches!(e, DecodeError::ChecksumMismatch { .. }),
            ),
            (
                "flipped checksum byte",
                Box::new(|b: &[u8]| {
                    let mut v = b.to_vec();
                    let last = v.len() - 1;
                    v[last] ^= 0x01;
                    v
                }),
                |e| matches!(e, DecodeError::ChecksumMismatch { .. }),
            ),
            (
                "wrong magic",
                Box::new(|b: &[u8]| {
                    let mut v = b.to_vec();
                    v[..8].copy_from_slice(b"NOTACKPT");
                    v
                }),
                |e| matches!(e, DecodeError::BadMagic),
            ),
            (
                "future format version",
                Box::new(|b: &[u8]| {
                    let mut v = b.to_vec();
                    // The version is the u16 right after the 8-byte magic.
                    v[8] = 0xFF;
                    v[9] = 0xFF;
                    v
                }),
                |e| matches!(e, DecodeError::UnsupportedVersion { found: 0xFFFF, .. }),
            ),
            (
                "trailing junk",
                Box::new(|b: &[u8]| {
                    let mut v = b.to_vec();
                    v.extend_from_slice(b"junk");
                    v
                }),
                |e| matches!(e, DecodeError::TrailingBytes { count: 4 }),
            ),
            ("empty file", Box::new(|_: &[u8]| Vec::new()), |e| {
                matches!(e, DecodeError::BadMagic)
            }),
        ];

        for (mutation, mutate, expected) in &mutations {
            std::fs::write(path, mutate(&good)).unwrap();
            let err = reader
                .load(path)
                .expect_err(&format!("{codec}: {mutation} must fail to decode"));
            assert!(
                expected(&err),
                "{codec}: {mutation} decoded to unexpected error {err:?}"
            );
        }

        // Restore the intact bytes; the file must load again (the sweep
        // itself must not be destructive).
        std::fs::write(path, &good).unwrap();
        reader.load(path).unwrap();
    }

    let _ = std::fs::remove_dir_all(&dir);
}

/// One sample frame per `uc.wire.v2` kind, with every field populated
/// (session token, lane and seq in the shared header included).
fn sample_wire_frames() -> Vec<unwritten_contract::serve::Frame> {
    use unwritten_contract::blockdev::{Completion, IoKind, IoRequest, SessionStats};
    use unwritten_contract::serve::{
        Body, BusyReason, ErrCode, Frame, FrameHeader, LaneAck, LaneTarget, WireStats, WIRE_VERSION,
    };
    let control = |seq: u64| FrameHeader {
        session: 7,
        lane: 0,
        seq,
    };
    let data = FrameHeader {
        session: 7,
        lane: 1,
        seq: 3,
    };
    vec![
        Frame::new(
            FrameHeader::connection(),
            Body::Open {
                version: WIRE_VERSION,
            },
        ),
        Frame::new(FrameHeader::connection(), Body::OpenOk { token: 7 }),
        Frame::new(
            control(0),
            Body::Resume {
                acks: vec![LaneAck { lane: 1, seq: 2 }],
            },
        ),
        Frame::new(
            control(0),
            Body::ResumeOk {
                lanes: 2,
                replay: vec![LaneAck { lane: 1, seq: 3 }],
            },
        ),
        Frame::new(
            control(1),
            Body::Attach {
                target: LaneTarget::Tenant(5),
            },
        ),
        Frame::new(
            control(1),
            Body::AttachOk {
                lane: 1,
                name: "ESSD-1".to_string(),
                capacity: 2 << 30,
                logical_block: 512,
            },
        ),
        Frame::new(
            data,
            Body::Submit {
                reqs: vec![
                    IoRequest::write(0, 4096, SimTime::from_nanos(10)),
                    IoRequest::read(8192, 4096, SimTime::from_nanos(20)),
                ],
            },
        ),
        Frame::new(
            data,
            Body::Completions {
                completions: vec![Completion {
                    index: 0,
                    kind: IoKind::Write,
                    len: 4096,
                    submitted: SimTime::from_nanos(10),
                    completes: SimTime::from_nanos(110),
                }],
            },
        ),
        Frame::new(data, Body::PushOk { accepted: 512 }),
        Frame::new(
            data,
            Body::Busy {
                reason: BusyReason::RingFull,
            },
        ),
        Frame::new(data, Body::Stats),
        Frame::new(
            data,
            Body::StatsOk {
                stats: WireStats {
                    stats: SessionStats {
                        ios: 9,
                        bytes: 9 << 12,
                        clamped: 1,
                        last_submit: SimTime::from_nanos(20),
                    },
                    queue_head: SimTime::from_nanos(120),
                },
            },
        ),
        Frame::new(control(2), Body::Metrics),
        Frame::new(
            control(2),
            Body::MetricsOk {
                // A populated live-telemetry pull: counter, (negative)
                // gauge and histogram rows all cross the wire.
                snapshot: obs_report().snapshot,
            },
        ),
        Frame::new(data, Body::Flush { epoch: 1 }),
        Frame::new(data, Body::FlushOk { epoch: 1 }),
        Frame::new(data, Body::LaneMoved { to_device: 1 }),
        Frame::new(control(2), Body::Close),
        Frame::new(control(2), Body::CloseOk),
        Frame::new(
            control(2),
            Body::Err {
                code: ErrCode::Io,
                io: Some(unwritten_contract::blockdev::IoError::ZeroLength),
                message: "zero-length request".to_string(),
            },
        ),
    ]
}

/// The corruption table extended to the served frontend: every
/// `uc.wire.v2` frame kind, corrupted any way a hostile or failing peer
/// can produce, decodes to a **typed** error — truncation mid-frame,
/// flipped payload bits, wrong magic, future envelope versions and
/// foreign kind tags all close the connection typed; none panic the
/// server.
#[test]
fn corruption_table_over_every_wire_frame_kind() {
    use unwritten_contract::serve::{Frame, ALL_KINDS};

    let frames = sample_wire_frames();
    // The sample set covers the whole protocol, by construction.
    let mut kinds: Vec<&str> = frames.iter().map(|f| f.kind()).collect();
    kinds.sort_unstable();
    let mut all = ALL_KINDS.to_vec();
    all.sort_unstable();
    assert_eq!(kinds, all, "sample frames must cover every wire kind");

    for frame in &frames {
        let good = frame.encode();
        let kind = frame.kind();

        // Intact frame round-trips off a stream, then clean EOF.
        let mut stream = std::io::Cursor::new(good.clone());
        let back = Frame::read_from(&mut stream).unwrap().unwrap();
        assert_eq!(&back, frame, "{kind}: intact frame must round-trip");
        assert_eq!(
            Frame::read_from(&mut stream).unwrap(),
            None,
            "{kind}: a frame boundary is a clean EOF"
        );

        // Every strict prefix is a typed mid-frame truncation.
        for cut in 1..good.len() {
            let mut stream = std::io::Cursor::new(good[..cut].to_vec());
            let err = Frame::read_from(&mut stream)
                .expect_err(&format!("{kind}: truncation at byte {cut} must fail"));
            assert!(
                matches!(err, DecodeError::Truncated { .. }),
                "{kind}: truncation at byte {cut} decoded to unexpected error {err:?}"
            );
        }

        // A flipped payload bit is a checksum mismatch. Flip inside the
        // kind/payload proper (not a length field, whose corruption the
        // truncation sweep above already covers as `Truncated`): the
        // kind tag starts right after 8 magic + 2 version + 8 kind-len.
        let mut flipped = good.clone();
        flipped[18] ^= 0x20;
        let mut stream = std::io::Cursor::new(flipped);
        assert!(
            matches!(
                Frame::read_from(&mut stream),
                Err(DecodeError::ChecksumMismatch { .. })
            ),
            "{kind}: flipped payload bit must be a checksum mismatch"
        );

        // Foreign bytes where the envelope should start.
        let mut alien = good.clone();
        alien[..8].copy_from_slice(b"NOTAWIRE");
        let mut stream = std::io::Cursor::new(alien);
        assert!(
            matches!(Frame::read_from(&mut stream), Err(DecodeError::BadMagic)),
            "{kind}: wrong magic must fail typed"
        );

        // A future envelope version bails before trusting any length.
        let mut future = good.clone();
        future[8] = 0xFF;
        future[9] = 0xFF;
        let mut stream = std::io::Cursor::new(future);
        assert!(
            matches!(
                Frame::read_from(&mut stream),
                Err(DecodeError::UnsupportedVersion { found: 0xFFFF, .. })
            ),
            "{kind}: future version must fail typed"
        );
    }

    // A valid envelope whose kind tag names no wire frame is typed too.
    let foreign = unwritten_contract::persist::encode_record("uc.wire.nope.v1", b"?");
    let mut stream = std::io::Cursor::new(foreign);
    assert!(matches!(
        Frame::read_from(&mut stream),
        Err(DecodeError::UnknownKind { .. })
    ));

    // Cross-version: a genuine `uc.wire.v1` frame is a typed
    // `UnknownKind` to the v2 decoder (the hook version negotiation
    // hangs off), while the retained v1 codec still reads it.
    use unwritten_contract::serve::FrameV1;
    let v1 = FrameV1::OpenSession { device: 2 }.encode();
    let mut stream = std::io::Cursor::new(v1.clone());
    assert!(matches!(
        Frame::read_from(&mut stream),
        Err(DecodeError::UnknownKind { .. })
    ));
    let mut stream = std::io::Cursor::new(v1);
    assert_eq!(
        FrameV1::read_from(&mut stream).unwrap().unwrap(),
        FrameV1::OpenSession { device: 2 }
    );
}

/// A record whose kind tag no reader knows dispatches to
/// `UnknownKind` — for both the device reader and the fig3 reader.
#[test]
fn unknown_record_kinds_are_typed() {
    let dir = temp_dir("unknown-kind");
    let path = dir.join("mystery.ckpt");
    unwritten_contract::persist::write_record_file(&path, "uc.mystery.v9", b"???").unwrap();
    assert!(matches!(
        DeviceCheckpoint::load_from(&path, &payload_codecs()),
        Err(DecodeError::UnknownKind { .. })
    ));
    assert!(matches!(
        Fig3Checkpoint::load_from(&path),
        Err(DecodeError::UnknownKind { .. })
    ));
    assert!(matches!(
        unwritten_contract::core::experiments::TraceRunCheckpoint::load_from(&path),
        Err(DecodeError::UnknownKind { .. })
    ));
    assert!(matches!(
        unwritten_contract::trace::load_trace(&path),
        Err(unwritten_contract::trace::TraceFileError::Decode(
            DecodeError::UnknownKind { .. }
        ))
    ));
    assert!(matches!(
        unwritten_contract::obs::ObsReport::load_from(&path),
        Err(DecodeError::UnknownKind { .. })
    ));

    // A device record whose *payload* tag is foreign also fails typed:
    // write a fig3 record and read it as a device checkpoint.
    let fig3_path = dir.join("fig3.ckpt");
    fig3_checkpoint().save_to(&fig3_path).unwrap();
    assert!(matches!(
        DeviceCheckpoint::load_from(&fig3_path, &payload_codecs()),
        Err(DecodeError::UnknownKind { .. })
    ));
    let _ = std::fs::remove_dir_all(&dir);
}

/// A loaded device checkpoint restores onto a roster-built device and
/// the restored device is indistinguishable from the original.
#[test]
fn loaded_device_checkpoint_restores_exactly() {
    let dir = temp_dir("device-restore");
    let roster = DeviceRoster::with_capacities(128 << 20, 128 << 20);
    for kind in DeviceKind::ALL {
        let mut original = roster.build_checkpointable(kind, 42);
        let mut now = SimTime::ZERO;
        for i in 0..24u64 {
            let req = unwritten_contract::blockdev::IoRequest::write((i % 8) * 65536, 65536, now);
            now = original.submit(&req).unwrap();
        }
        let path = dir.join(format!("{}.ckpt", kind.slug()));
        original.checkpoint().save_to(&path).unwrap();

        let loaded = DeviceCheckpoint::load_from(&path, &payload_codecs()).unwrap();
        let mut restored = roster.build_checkpointable(kind, 42);
        restored.restore_from(loaded).unwrap();
        let req = unwritten_contract::blockdev::IoRequest::read(0, 65536, now);
        assert_eq!(restored.submit(&req), original.submit(&req), "{kind}");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    // `decode(encode(x)) == x` on raw SSD checkpoints, across random
    // traffic mixes (exercises buffer occupancy, prefetch state, FTL
    // mappings and RNG positions).
    #[test]
    fn ssd_checkpoint_encode_decode_round_trips(
        seed in 0u64..1_000_000,
        writes in 8usize..120,
    ) {
        let mut ssd = Ssd::with_seed(SsdConfig::samsung_970_pro(256 << 20), seed);
        let mut now = SimTime::ZERO;
        let mut state = seed | 1;
        for _ in 0..writes {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let off = (state % 2048) * 4096;
            let req = if state % 4 == 0 {
                unwritten_contract::blockdev::IoRequest::read(off, 4096, now)
            } else {
                unwritten_contract::blockdev::IoRequest::write(off, 8192, now)
            };
            now = ssd.submit(&req).unwrap();
        }
        let checkpoint = ssd.snapshot();
        let mut w = Encoder::new();
        checkpoint.encode(&mut w);
        let bytes = w.into_bytes();
        let mut r = Decoder::new(&bytes);
        let back = SsdCheckpoint::decode(&mut r).unwrap();
        r.finish().unwrap();
        prop_assert_eq!(back, checkpoint);
    }

    // `decode(encode(x)) == x` on raw ESSD checkpoints, across random
    // traffic (exercises cluster lanes, token-bucket levels and the
    // jitter RNG mid-stream).
    #[test]
    fn essd_checkpoint_encode_decode_round_trips(
        seed in 0u64..1_000_000,
        ios in 4usize..48,
    ) {
        let mut essd = Essd::new(EssdConfig::alibaba_pl3(128 << 20).with_seed(seed));
        let mut now = SimTime::ZERO;
        let mut state = seed | 1;
        for _ in 0..ios {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let off = (state % 100) * (1 << 20);
            let req = if state % 3 == 0 {
                unwritten_contract::blockdev::IoRequest::read(off, 65536, now)
            } else {
                unwritten_contract::blockdev::IoRequest::write(off, 65536, now)
            };
            now = essd.submit(&req).unwrap();
        }
        let checkpoint = essd.snapshot();
        let mut w = Encoder::new();
        checkpoint.encode(&mut w);
        let bytes = w.into_bytes();
        let mut r = Decoder::new(&bytes);
        let back = EssdCheckpoint::decode(&mut r).unwrap();
        r.finish().unwrap();
        prop_assert_eq!(back, checkpoint);
    }

    // Byte-level fuzz of the record envelope: random garbage never
    // panics the decoder — it always returns a typed error (or, with
    // astronomically small probability, a valid empty record).
    #[test]
    fn record_decoder_never_panics_on_garbage(
        bytes in proptest::collection::vec(0u8..255, 0..200),
    ) {
        let _ = unwritten_contract::persist::decode_record(&bytes);
    }

    // Random traces survive text → binary → text round trips
    // byte-identically: the `uc.trace.v1` codec neither reorders,
    // rewrites nor loses entries the text format can express.
    #[test]
    fn trace_text_binary_text_round_trips_byte_identically(
        raw in proptest::collection::vec(
            (0u64..1u64 << 40, any::<bool>(), 0u64..1u64 << 40, 1u32..1u32 << 24),
            0..100,
        ),
    ) {
        use unwritten_contract::blockdev::IoKind;
        use unwritten_contract::trace::{decode_trace, encode_trace};
        use unwritten_contract::workload::{Trace, TraceEntry};
        let entries: Vec<TraceEntry> = raw
            .into_iter()
            .map(|(at, write, offset, len)| TraceEntry {
                at: SimTime::from_nanos(at),
                kind: if write { IoKind::Write } else { IoKind::Read },
                offset,
                len,
            })
            .collect();
        let trace = Trace::from_entries(entries);
        let text = trace.to_text();
        let back = decode_trace(&encode_trace(&trace)).expect("binary round trip");
        prop_assert_eq!(&back, &trace);
        prop_assert_eq!(back.to_text(), text);
        // …and the text side re-parses to the same trace, closing the
        // text → binary → text → parse loop.
        prop_assert_eq!(text.parse::<Trace>().expect("text round trip"), trace);
    }
}

/// Resume equivalence through the *file system*: a fig3 run driven
/// through on-disk checkpoints at every boundary matches the in-memory
/// run byte for byte.
#[test]
fn fig3_resumed_through_disk_matches_memory() {
    let roster = DeviceRoster::with_capacities(128 << 20, 128 << 20);
    let cfg = Fig3Config::quick();
    let dir = temp_dir("disk-vs-memory");
    let kind = DeviceKind::LocalSsd;

    let baseline = fig3::run(&roster, kind, &cfg).unwrap();

    let mut state = SegmentedRun::start(&roster, kind, &cfg, 3).unwrap();
    let mut hops = 0;
    loop {
        state.advance().unwrap();
        if state.is_finished() {
            break;
        }
        // Freeze → disk → thaw at every boundary.
        let path = dir.join(format!("hop{hops}.ckpt"));
        state.checkpoint().save_to(&path).unwrap();
        let thawed = Fig3Checkpoint::load_from(&path).unwrap();
        state = SegmentedRun::resume(&roster, thawed).unwrap();
        hops += 1;
    }
    assert!(hops > 0, "the run must actually hop through disk");
    let through_disk = state.into_result();
    assert_eq!(through_disk.time_series, baseline.time_series);
    assert_eq!(through_disk.volume_series, baseline.volume_series);
    let _ = std::fs::remove_dir_all(&dir);
}
