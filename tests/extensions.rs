//! Integration tests for the extension features: shaping, traces, hotspot
//! workloads, preconditioning and the LSM case study.

use unwritten_contract::core::casestudy::{run_inplace, run_lsm, LsmConfig};
use unwritten_contract::prelude::*;
use unwritten_contract::workload::{precondition, replay, Shaper, Trace};

#[test]
fn shaper_keeps_an_essd_under_a_smaller_budget() {
    // Shape a bursty workload to 100 MB/s in front of ESSD-2: the device
    // itself never sees more than the shaped rate.
    let inner = Essd::new(EssdConfig::alibaba_pl3(512 << 20));
    let mut shaped = Shaper::new(inner, 100.0e6, 4 << 20);
    let trace = Trace::bursty_writes(5, 100, SimDuration::from_secs(1), 256 << 10, 256 << 20, 3);
    let report = replay(&mut shaped, &trace).unwrap();
    assert_eq!(report.ios, 500);
    // Each 25.6 MB burst drains at 100 MB/s: worst-case latency ~0.22 s.
    let max = report.latency.max().as_secs_f64();
    assert!(
        (0.15..0.4).contains(&max),
        "shaped burst tail should be ~0.25 s, got {max}"
    );
    // Aggregate rate respects the shaping rate, not the device budget.
    let span = report.finished_at.as_secs_f64();
    let rate = report.bytes as f64 / span;
    assert!(rate < 130.0e6, "shaped rate {rate} B/s exceeds 100 MB/s");
}

#[test]
fn trace_demand_profile_feeds_the_planner() {
    use unwritten_contract::core::implications::plan_smoothing;
    let window = SimDuration::from_millis(100);
    let trace = Trace::bursty_writes(10, 200, SimDuration::from_secs(1), 256 << 10, 1 << 30, 21);
    let demand = trace.demand_profile(window);
    let plan = plan_smoothing(&demand, window, SimDuration::from_millis(500));
    assert!(
        plan.saving_fraction > 0.5,
        "bursty trace should smooth well: {plan}"
    );
}

#[test]
fn hotspot_writes_on_preconditioned_ssd_gc_less_than_uniform() {
    // A 90/10 hotspot rewrites the same blocks over and over: greedy GC
    // finds nearly-empty victims, so write amplification stays below the
    // uniform-random case. (Classic skew benefit.)
    let wa_of = |pattern: AccessPattern| {
        let mut dev = Ssd::new(SsdConfig::samsung_970_pro(192 << 20));
        let t0 = precondition(&mut dev).unwrap();
        let spec = JobSpec::new(pattern, 16 << 10, 8)
            .with_byte_limit(192 << 20)
            .with_seed(5)
            .with_start(t0);
        run_job(&mut dev, &spec).unwrap();
        dev.ftl_stats().write_amplification()
    };
    let uniform = wa_of(AccessPattern::RandWrite);
    let hotspot = wa_of(AccessPattern::Hotspot {
        hot_fraction: 0.05,
        hot_probability: 0.95,
        write_ratio: 1.0,
    });
    assert!(uniform > 1.2, "uniform overwrite on full device must GC");
    assert!(
        hotspot < uniform,
        "skewed overwrites should amplify less: hotspot {hotspot} vs uniform {uniform}"
    );
}

#[test]
fn lsm_case_study_matches_implication3_per_device() {
    let cfg = LsmConfig::scaled_default().with_ingest_bytes(64 << 20);
    // The SSD legs ingest enough to overwrite most of the device, so the
    // in-place strategy meets sustained GC (its steady-state regime).
    let cfg_ssd = LsmConfig::scaled_default().with_ingest_bytes(384 << 20);

    // Local SSD (preconditioned): in-place random updates face device GC —
    // the pressure that motivated log-structuring in the first place. (Who
    // wins outright depends on the engine's compaction WA versus the
    // device's GC WA; the robust fact is the GC penalty itself.)
    let mut dev = Ssd::new(SsdConfig::samsung_970_pro(512 << 20));
    let t0 = precondition(&mut dev).unwrap();
    let ssd_lsm = run_lsm(&mut dev, &cfg_ssd, t0).unwrap();
    assert!(ssd_lsm.write_amplification() > 1.5, "compaction amplifies");
    let mut dev = Ssd::new(SsdConfig::samsung_970_pro(512 << 20));
    let t0 = precondition(&mut dev).unwrap();
    let ssd_inplace = run_inplace(&mut dev, &cfg_ssd, t0).unwrap();
    let ssd_gc_wa = dev.ftl_stats().write_amplification();
    assert!(
        ssd_gc_wa > 1.3,
        "in-place updates on a full SSD must provoke GC (device WA {ssd_gc_wa})"
    );
    assert!(
        ssd_inplace.ingest_gbps() < 2.0,
        "GC must price in-place writes well below the clean-device 2.7 GB/s, got {:.3}",
        ssd_inplace.ingest_gbps()
    );

    // ESSD-2: in-place wins (Observation 3 + zero compaction volume).
    let mut dev = Essd::new(EssdConfig::alibaba_pl3(512 << 20));
    let essd_lsm = run_lsm(&mut dev, &cfg, SimTime::ZERO).unwrap();
    let mut dev = Essd::new(EssdConfig::alibaba_pl3(512 << 20));
    let essd_inplace = run_inplace(&mut dev, &cfg, SimTime::ZERO).unwrap();
    assert!(
        essd_inplace.ingest_gbps() > essd_lsm.ingest_gbps(),
        "ESSD-2: in-place {:.3} should beat LSM {:.3}",
        essd_inplace.ingest_gbps(),
        essd_lsm.ingest_gbps()
    );
}

#[test]
fn trace_round_trips_through_text() {
    let trace = Trace::bursty_writes(3, 7, SimDuration::from_millis(5), 4096, 1 << 20, 11);
    let text = trace.to_text();
    let parsed: Trace = text.parse().unwrap();
    assert_eq!(parsed, trace);
}

#[test]
fn shaped_device_still_validates_requests() {
    let mut shaped = Shaper::new(Essd::new(EssdConfig::aws_io2(256 << 20)), 1e9, 1 << 20);
    assert!(shaped
        .submit(&IoRequest::read(7, 4096, SimTime::ZERO))
        .is_err());
    assert!(shaped
        .submit(&IoRequest::read(0, 4096, SimTime::ZERO))
        .is_ok());
}
