//! Property tests for the checkpoint/restore seam: freezing a device (and
//! the segmented fig3 runner) mid-run must be undetectable in every output.
//!
//! These are the workspace-level guarantees behind the segmented Figure 3
//! endurance run: `checkpoint → restore → continue` equals
//! `run-straight-through` on both device classes under randomized
//! workloads, and slicing the endurance timeline into any number of
//! segments leaves the figure byte-identical.

use proptest::prelude::*;
use unwritten_contract::core::experiments::fig3::{self, Fig3Config};
use unwritten_contract::essd::{Essd, EssdConfig};
use unwritten_contract::prelude::*;
use unwritten_contract::ssd::{Ssd, SsdConfig};

/// Drives a QD1 closed loop of `(selector, slot)` ops: the selector picks
/// direction and size, the slot an aligned offset. Returns every
/// completion instant plus the final clock.
fn drive<D: BlockDevice>(
    dev: &mut D,
    ops: &[(u8, u64)],
    start: SimTime,
) -> (Vec<SimTime>, SimTime) {
    let capacity = dev.info().capacity();
    let mut now = start;
    let mut completions = Vec::with_capacity(ops.len());
    for &(sel, slot) in ops {
        let len: u32 = match sel / 2 {
            0 => 4096,
            1 => 65536,
            _ => 262_144,
        };
        let offset = (slot % (capacity / len as u64)) * len as u64;
        let req = if sel % 2 == 0 {
            IoRequest::write(offset, len, now)
        } else {
            IoRequest::read(offset, len, now)
        };
        now = dev.submit(&req).expect("aligned in-range request");
        completions.push(now);
    }
    (completions, now)
}

/// The shared checkpoint property: run `ops` straight through on one
/// device; run the prefix on another, freeze it, thaw onto a third, run
/// the suffix there. Completion instants and the final frozen state must
/// be identical.
fn checkpoint_cut_is_undetectable<D, F, S>(build: F, snapshot: S, ops: &[(u8, u64)], cut: usize)
where
    D: BlockDevice + CheckpointDevice,
    F: Fn() -> D,
    S: Fn(&D) -> String,
{
    let cut = cut.min(ops.len());
    let mut straight = build();
    let (all, _) = drive(&mut straight, ops, SimTime::ZERO);

    let mut prefix = build();
    let (head, t_cut) = drive(&mut prefix, &ops[..cut], SimTime::ZERO);
    assert_eq!(&all[..cut], &head[..], "prefix must already agree");
    let frozen = prefix.checkpoint();

    let mut resumed = build();
    resumed.restore_from(frozen).expect("same-device restore");
    let (tail, _) = drive(&mut resumed, &ops[cut..], t_cut);
    assert_eq!(&all[cut..], &tail[..], "continuation must be identical");
    assert_eq!(
        snapshot(&straight),
        snapshot(&resumed),
        "final device states must be indistinguishable"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn ssd_checkpoint_restore_continue_equals_straight(
        ops in proptest::collection::vec((0u8..6, 0u64..1_000_000), 1..160),
        cut in 0usize..160,
    ) {
        checkpoint_cut_is_undetectable(
            || Ssd::new(SsdConfig::samsung_970_pro(128 << 20)),
            |d: &Ssd| format!("{:?}", d.snapshot()),
            &ops,
            cut,
        );
    }

    #[test]
    fn essd_checkpoint_restore_continue_equals_straight(
        ops in proptest::collection::vec((0u8..6, 0u64..1_000_000), 1..160),
        cut in 0usize..160,
    ) {
        checkpoint_cut_is_undetectable(
            || Essd::new(EssdConfig::alibaba_pl3(128 << 20)),
            |d: &Essd| format!("{:?}", d.snapshot()),
            &ops,
            cut,
        );
    }
}

/// The unsliced fig3 baseline, computed once per device kind.
fn unsliced_baseline(kind: DeviceKind) -> &'static fig3::Fig3Result {
    use std::sync::OnceLock;
    static CELLS: [OnceLock<fig3::Fig3Result>; 3] =
        [OnceLock::new(), OnceLock::new(), OnceLock::new()];
    let index = DeviceKind::ALL.iter().position(|&k| k == kind).unwrap();
    CELLS[index].get_or_init(|| {
        let roster = DeviceRoster::with_capacities(128 << 20, 128 << 20);
        fig3::run(&roster, kind, &Fig3Config::quick()).expect("fig3 baseline")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    // Acceptance property: segmented fig3 output is byte-identical to the
    // unsliced run for every `DeviceKind`, at any segment count.
    #[test]
    fn segmented_fig3_matches_unsliced_at_any_slicing(
        segments in 2usize..7,
        kind_index in 0usize..3,
    ) {
        let kind = DeviceKind::ALL[kind_index];
        let roster = DeviceRoster::with_capacities(128 << 20, 128 << 20);
        let sliced = fig3::run_segmented(&roster, kind, &Fig3Config::quick(), segments)
            .expect("segmented fig3");
        let baseline = unsliced_baseline(kind);
        prop_assert_eq!(&sliced.time_series, &baseline.time_series);
        prop_assert_eq!(&sliced.volume_series, &baseline.volume_series);
        prop_assert_eq!(sliced.capacity, baseline.capacity);
    }
}

/// A fig3 run split across *threads* through the pipelined runner agrees
/// with the per-kind baselines (integration-level sanity on top of the
/// uc-core unit tests).
#[test]
fn pipelined_fig3_agrees_with_baselines() {
    let roster = DeviceRoster::with_capacities(128 << 20, 128 << 20);
    let results = fig3::run_pipelined(
        &roster,
        &DeviceKind::ALL,
        &Fig3Config::quick(),
        3,
        &Executor::with_threads(3),
    )
    .expect("pipelined fig3");
    for (i, &kind) in DeviceKind::ALL.iter().enumerate() {
        let baseline = unsliced_baseline(kind);
        assert_eq!(results[i].time_series, baseline.time_series, "{kind}");
        assert_eq!(results[i].volume_series, baseline.volume_series, "{kind}");
    }
}
