//! Fleet property suites: the multi-tenant seams driven with random
//! fleet definitions and audited against their contracts.
//!
//! Two observational equivalences are pinned:
//!
//! * **suffix equivalence** — freezing the whole fleet at *any* epoch
//!   boundary (simulation snapshot + every device's checkpoint), thawing
//!   onto a fresh pool, and replaying the tail produces a final state
//!   byte-identical to an uninterrupted run — with and without
//!   checkpoint-seam migrations in the suffix;
//! * **work conservation** — rebalancing migrates *where* a tenant's
//!   work runs, never *how much* of it completes: per-tenant I/O and
//!   byte totals are identical with rebalancing on and off.
//!
//! The fault-injection test at the bottom proves the conservation
//! contract has teeth: a seeded migration bug that drops the migrant
//! (behind the test-only `fault-injection` feature) is caught by the
//! `every-tenant-placed` invariant at the next boundary audit.

use proptest::prelude::*;
use unwritten_contract::essd::{Essd, EssdConfig};
use unwritten_contract::fleet::{
    FleetConfig, FleetDevice, FleetSim, FleetSnapshot, RebalancePolicy,
};
use unwritten_contract::persist::{Encoder, Persist};
use unwritten_contract::sim::SimDuration;

/// A pool of small eSSDs, uniquely named (the checkpoint seam validates
/// names on thaw) and deterministically seeded.
fn pool(devices: usize, seed: u64) -> Vec<FleetDevice> {
    (0..devices)
        .map(|i| {
            let config = EssdConfig::alibaba_pl3(64 << 20)
                .with_name(format!("fleet-essd-{i}"))
                .with_seed(seed ^ i as u64);
            Box::new(Essd::new(config)) as FleetDevice
        })
        .collect()
}

/// A small fleet sized for per-case property runs.
fn config(tenants: usize, devices: usize, seed: u64, rebalance: bool) -> FleetConfig {
    let mut config = FleetConfig::new(tenants, devices)
        .with_duration(SimDuration::from_millis(10))
        .with_seed(seed);
    if rebalance {
        config = config.with_rebalance(RebalancePolicy::default());
    }
    config
}

/// The snapshot's canonical wire form — byte equality here is the
/// strongest state-equality check the fleet offers (placement, cursors,
/// floors, budgets, full latency histograms, migration log, queue heads).
fn encoded(snapshot: &FleetSnapshot) -> Vec<u8> {
    let mut w = Encoder::new();
    snapshot.encode(&mut w);
    w.into_bytes()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    // Freeze at any epoch boundary, thaw onto a fresh pool, replay the
    // tail: the final state is byte-identical to an uninterrupted run.
    // `rebalance` folds checkpoint-seam migrations into both the prefix
    // and the suffix.
    #[test]
    fn fleet_resume_at_any_boundary_is_suffix_equivalent(
        tenants in 4usize..14,
        seed in 0u64..1_000,
        cut in 1usize..4,
        rebalance in 0u8..2,
    ) {
        let devices = 2;
        let cfg = config(tenants, devices, seed, rebalance == 1);

        let mut whole = FleetSim::new(cfg.clone(), pool(devices, seed));
        let whole_report = whole.run().expect("uninterrupted run");

        let mut prefix = FleetSim::new(cfg.clone(), pool(devices, seed));
        for _ in 0..cut {
            prefix.run_epoch().expect("prefix epoch");
        }
        let snapshot = prefix.snapshot();
        let frozen = prefix.checkpoint_devices();
        drop(prefix); // the "kill": nothing survives but snapshot + checkpoints

        let mut thawed = pool(devices, seed);
        for (device, checkpoint) in thawed.iter_mut().zip(frozen) {
            device.restore_from(checkpoint).expect("thaw");
        }
        let mut resumed = FleetSim::resume(cfg, thawed, &snapshot);
        let resumed_report = resumed.run().expect("suffix run");

        prop_assert_eq!(&whole_report, &resumed_report);
        prop_assert_eq!(encoded(&whole.snapshot()), encoded(&resumed.snapshot()));
        prop_assert!(whole_report.violations.is_empty(), "{:?}", whole_report.violations);
    }

    // Rebalancing moves work, it never loses or duplicates it: every
    // tenant completes exactly the same I/Os and bytes with migrations
    // as without (only placement and latency may differ).
    #[test]
    fn migration_is_work_conserving(
        tenants in 4usize..14,
        seed in 0u64..1_000,
    ) {
        let devices = 2;
        let mut pinned = FleetSim::new(config(tenants, devices, seed, false), pool(devices, seed));
        let mut moved = FleetSim::new(config(tenants, devices, seed, true), pool(devices, seed));
        let pinned_report = pinned.run().expect("pinned run");
        let moved_report = moved.run().expect("rebalanced run");

        prop_assert!(pinned_report.violations.is_empty());
        prop_assert!(moved_report.violations.is_empty());
        prop_assert!(pinned_report.migrations.is_empty());
        for (a, b) in pinned_report.per_tenant.iter().zip(&moved_report.per_tenant) {
            prop_assert_eq!(a.id, b.id);
            prop_assert_eq!(a.ios, b.ios, "tenant {} i/o count drifted", a.id);
            prop_assert_eq!(a.bytes, b.bytes, "tenant {} byte count drifted", a.id);
        }
        for m in &moved_report.migrations {
            prop_assert!(m.from.0 != m.to.0, "a migration must change device");
            prop_assert!(m.completed_at >= m.frozen_at);
        }
    }
}

/// Acceptance criterion: the known-skewed fleet (heavy-tail tenants
/// concentrated by contiguous placement) actually migrates, and the
/// suffix-equivalence above therefore covers real migrations, not just
/// quiet fleets.
#[test]
fn skewed_fleet_migrates_and_the_record_fingerprints_the_freeze() {
    let cfg = config(12, 2, 7, true);
    let mut sim = FleetSim::new(cfg, pool(2, 7));
    let report = sim.run().expect("skewed fleet runs");
    assert!(
        !report.migrations.is_empty(),
        "expected the default policy to migrate: {:?}",
        report.fairness_per_epoch
    );
    assert!(report.violations.is_empty(), "{:?}", report.violations);
    // The freeze fingerprint is the CRC of the source device's encoded
    // checkpoint: nonzero for persistable devices, and stable run-to-run.
    let mut again = FleetSim::new(config(12, 2, 7, true), pool(2, 7));
    let report2 = again.run().expect("second run");
    for (a, b) in report.migrations.iter().zip(&report2.migrations) {
        assert_ne!(a.freeze_crc, 0, "eSSD checkpoints carry a codec");
        assert_eq!(a.freeze_crc, b.freeze_crc, "freeze must be deterministic");
    }
}

// ---- fault injection: the conservation contract has teeth -------------

/// A seeded migration bug — the migrant is dropped instead of re-homed —
/// is caught by the `every-tenant-placed` invariant of the placement
/// contract at the next epoch-boundary audit, and reported as a finding
/// rather than a panic (so operators see it in the run report).
#[test]
fn seeded_dropped_migrant_is_caught_by_tenant_conservation() {
    let cfg = config(12, 2, 7, true);
    let mut sim = FleetSim::new(cfg, pool(2, 7));
    sim.arm_migration_fault();
    let report = sim.run().expect("violations are findings, not I/O errors");
    assert!(
        report
            .violations
            .iter()
            .any(|v| v.contains("every-tenant-placed") && v.contains("uc-fleet/Placement")),
        "conservation contract missed the dropped tenant: {:?}",
        report.violations
    );
}
