//! Cross-crate integration tests: every device behind the same trait,
//! exercised end to end through the workload drivers.

use unwritten_contract::prelude::*;

fn devices() -> Vec<(&'static str, Box<dyn BlockDevice>)> {
    vec![
        (
            "ssd",
            Box::new(Ssd::new(SsdConfig::samsung_970_pro(256 << 20))) as Box<dyn BlockDevice>,
        ),
        ("essd1", Box::new(Essd::new(EssdConfig::aws_io2(256 << 20)))),
        (
            "essd2",
            Box::new(Essd::new(EssdConfig::alibaba_pl3(256 << 20))),
        ),
    ]
}

#[test]
fn every_device_runs_every_pattern() {
    for (name, mut dev) in devices() {
        for pattern in [
            AccessPattern::RandRead,
            AccessPattern::RandWrite,
            AccessPattern::SeqRead,
            AccessPattern::SeqWrite,
            AccessPattern::Mixed {
                write_ratio: 0.5,
                random: true,
            },
        ] {
            let spec = JobSpec::new(pattern, 16 << 10, 4).with_io_limit(300);
            let report =
                run_job(dev.as_mut(), &spec).unwrap_or_else(|e| panic!("{name}/{pattern:?}: {e}"));
            assert_eq!(report.ios, 300, "{name}/{pattern:?}");
            assert!(
                report.latency.mean() > SimDuration::ZERO,
                "{name}/{pattern:?}"
            );
            assert!(report.throughput_gbps() > 0.0, "{name}/{pattern:?}");
        }
    }
}

#[test]
fn devices_reject_invalid_requests_uniformly() {
    for (name, mut dev) in devices() {
        let cap = dev.info().capacity();
        // Misaligned.
        assert!(
            dev.submit(&IoRequest::read(1, 4096, SimTime::ZERO))
                .is_err(),
            "{name}"
        );
        // Zero length.
        assert!(
            dev.submit(&IoRequest::read(0, 0, SimTime::ZERO)).is_err(),
            "{name}"
        );
        // Past the end.
        assert!(
            dev.submit(&IoRequest::write(cap, 4096, SimTime::ZERO))
                .is_err(),
            "{name}"
        );
        // Valid request still accepted afterwards.
        assert!(
            dev.submit(&IoRequest::write(0, 4096, SimTime::ZERO))
                .is_ok(),
            "{name}"
        );
    }
}

#[test]
fn completions_never_precede_submissions() {
    for (name, mut dev) in devices() {
        let mut now = SimTime::ZERO;
        let mut rng = SimRng::new(42);
        let cap = dev.info().capacity();
        for _ in 0..500 {
            let slot = rng.range_u64(0, cap / 4096);
            let req = if rng.chance(0.5) {
                IoRequest::read(slot * 4096, 4096, now)
            } else {
                IoRequest::write(slot * 4096, 4096, now)
            };
            let done = dev.submit(&req).unwrap();
            assert!(done >= now, "{name}: completion before submission");
            now = done;
        }
    }
}

#[test]
fn runs_are_deterministic_across_process_reruns() {
    // Same seeds -> bit-identical reports, for each device class.
    let run_once = |which: usize| {
        let (_, mut dev) = devices().remove(which);
        let spec = JobSpec::new(AccessPattern::RandWrite, 8192, 8)
            .with_io_limit(800)
            .with_seed(7);
        let r = run_job(dev.as_mut(), &spec).unwrap();
        (
            r.finished_at,
            r.latency.mean(),
            r.latency.percentile(99.9),
            r.bytes,
        )
    };
    for which in 0..3 {
        assert_eq!(run_once(which), run_once(which), "device {which}");
    }
}

#[test]
fn essd_write_latency_dominated_by_network_not_size_at_4k() {
    // Observation 1's mechanism: at 4 KiB the ESSD's latency is fixed
    // overhead; doubling the I/O size barely moves it.
    let mut essd = Essd::new(EssdConfig::aws_io2(256 << 20));
    let small = run_job(
        &mut essd,
        &JobSpec::new(AccessPattern::RandWrite, 4096, 1).with_io_limit(500),
    )
    .unwrap();
    let mut essd = Essd::new(EssdConfig::aws_io2(256 << 20));
    let double = run_job(
        &mut essd,
        &JobSpec::new(AccessPattern::RandWrite, 8192, 1).with_io_limit(500),
    )
    .unwrap();
    let a = small.latency.mean().as_micros_f64();
    let b = double.latency.mean().as_micros_f64();
    assert!(
        b < a * 1.25,
        "4K→8K should barely change ESSD latency: {a} vs {b}"
    );
}

#[test]
fn ssd_write_latency_dominated_by_transfer_at_large_sizes() {
    // The inverse on the SSD: 128K -> 256K roughly doubles the DMA time.
    let mut ssd = Ssd::new(SsdConfig::samsung_970_pro(256 << 20));
    let a = run_job(
        &mut ssd,
        &JobSpec::new(AccessPattern::RandWrite, 128 << 10, 1).with_io_limit(200),
    )
    .unwrap()
    .latency
    .mean()
    .as_micros_f64();
    let mut ssd = Ssd::new(SsdConfig::samsung_970_pro(256 << 20));
    let b = run_job(
        &mut ssd,
        &JobSpec::new(AccessPattern::RandWrite, 256 << 10, 1).with_io_limit(200),
    )
    .unwrap()
    .latency
    .mean()
    .as_micros_f64();
    assert!(
        b / a > 1.6,
        "doubling the large-I/O size should nearly double SSD latency: {a} vs {b}"
    );
}
