//! Facade-level tests of the trace capture & replay subsystem: the full
//! generate → capture → save → load → replay loop on real device
//! models, with the same determinism bar as the segmented fig3 gates.

use std::path::PathBuf;
use unwritten_contract::core::experiments::trace::{self as trace_exp, TraceRunConfig};
use unwritten_contract::core::experiments::Executor;
use unwritten_contract::core::report::render_trace_report;
use unwritten_contract::prelude::*;
use unwritten_contract::trace::{load_trace, save_trace};

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("uc-facade-trace-tests")
        .join(format!("{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

/// The acceptance loop end to end: generate a bursty trace, save it as a
/// `uc.trace.v1` record, load it back, replay it on the SSD and an ESSD
/// — twice — and require byte-identical reports.
#[test]
fn generate_save_load_replay_is_deterministic_on_real_devices() {
    let dir = temp_dir("e2e");
    let trace = TraceSpec::bursty(
        SimDuration::from_millis(1),
        SimDuration::from_millis(3),
        20_000.0,
    )
    .with_duration(SimDuration::from_millis(40))
    .with_io_size(64 << 10)
    .with_span(64 << 20)
    .generate();

    let path = dir.join("bursty.trace");
    save_trace(&path, &trace).unwrap();
    let loaded = load_trace(&path).unwrap();
    assert_eq!(loaded, trace, "save/load is lossless");

    let config = ReplayConfig::open_loop().with_window(SimDuration::from_millis(1));
    let run = |build: &dyn Fn() -> Box<dyn BlockDevice + Send>| {
        let mut dev = build();
        let report = replay_with(&mut dev, &loaded, &config).unwrap();
        (
            report.ios,
            report.bytes,
            report.finished_at,
            report.latency.mean(),
            report.latency.percentile(99.9),
        )
    };
    for build in [
        (&|| -> Box<dyn BlockDevice + Send> {
            Box::new(Ssd::new(SsdConfig::samsung_970_pro(128 << 20)))
        }) as &dyn Fn() -> Box<dyn BlockDevice + Send>,
        &|| Box::new(Essd::new(EssdConfig::aws_io2(128 << 20))),
        &|| Box::new(Essd::new(EssdConfig::alibaba_pl3(128 << 20))),
    ] {
        let first = run(build);
        let second = run(build);
        assert_eq!(first, second, "replay must be deterministic");
        assert_eq!(first.0, trace.len() as u64, "every entry replays");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Capture → replay closes the loop exactly: replaying a capture on an
/// identical fresh device, through a second recorder, re-captures the
/// *same trace* — the recorded submission timeline is a fixed point.
#[test]
fn replaying_a_capture_recaptures_the_same_trace() {
    let spec = JobSpec::new(AccessPattern::RandWrite, 8192, 8)
        .with_io_limit(300)
        .with_seed(42);
    let mut recorder = TraceRecorder::new(Ssd::new(SsdConfig::samsung_970_pro(128 << 20)));
    let live = run_job(&mut recorder, &spec).unwrap();
    let captured = recorder.into_trace();
    assert!(captured.len() as u64 >= live.ios);

    let mut second = TraceRecorder::new(Ssd::new(SsdConfig::samsung_970_pro(128 << 20)));
    let replayed = replay_with(&mut second, &captured, &ReplayConfig::open_loop()).unwrap();
    assert_eq!(replayed.ios, captured.len() as u64);
    let recaptured = second.into_trace();
    assert_eq!(
        recaptured, captured,
        "replay reproduces the captured submission timeline entry for entry"
    );
}

/// The full experiment is deterministic at any thread count and under
/// kill-and-resume through the on-disk store — the rendered report (the
/// CI artifact) is the equality witness, as for fig3.
#[test]
fn trace_experiment_report_survives_threads_and_kill_resume() {
    let roster = DeviceRoster::with_capacities(128 << 20, 128 << 20);
    let trace = TraceSpec::bursty(
        SimDuration::from_millis(1),
        SimDuration::from_millis(3),
        15_000.0,
    )
    .with_duration(SimDuration::from_millis(30))
    .with_io_size(64 << 10)
    .with_span(64 << 20)
    .generate();
    let cfg = TraceRunConfig::open_loop(4)
        .with_replay(ReplayConfig::open_loop().with_window(SimDuration::from_millis(1)));

    let wide = trace_exp::run_pipelined(
        &roster,
        &DeviceKind::ALL,
        &trace,
        &cfg,
        &Executor::with_threads(3),
    )
    .unwrap();
    let narrow = trace_exp::run_pipelined(
        &roster,
        &DeviceKind::ALL,
        &trace,
        &cfg,
        &Executor::sequential(),
    )
    .unwrap();
    let reference = render_trace_report(&trace_exp::evaluate(wide));
    assert_eq!(
        reference,
        render_trace_report(&trace_exp::evaluate(narrow)),
        "thread count must not change the report"
    );

    // Kill-and-resume through the durable store.
    let dir = temp_dir("kill-resume");
    let store = trace_exp::TraceStore::create(&dir).unwrap();
    for &kind in &DeviceKind::ALL {
        let mut partial = trace_exp::TraceRun::start(&roster, kind, &trace, &cfg).unwrap();
        partial.advance(&trace).unwrap();
        store.save(&partial.checkpoint()).unwrap();
        // The interrupted process's state is dropped here: only the
        // on-disk checkpoint survives the "crash".
    }
    let resumed = trace_exp::run_pipelined_durable(
        &roster,
        &DeviceKind::ALL,
        &trace,
        &cfg,
        &Executor::with_threads(2),
        &store,
        true,
    )
    .unwrap();
    assert_eq!(
        reference,
        render_trace_report(&trace_exp::evaluate(resumed)),
        "kill-and-resume must render byte-identically"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// A `--speed`-accelerated replay compresses the arrival timeline: the
/// run finishes earlier and the compressed bursts queue harder — the
/// mechanism behind the trace experiment's overdrive violations.
#[test]
fn speed_compresses_bursts_into_violations() {
    let trace = TraceSpec::bursty(
        SimDuration::from_millis(1),
        SimDuration::from_millis(3),
        15_000.0,
    )
    .with_duration(SimDuration::from_millis(30))
    .with_io_size(64 << 10)
    .with_span(64 << 20)
    .generate();
    let mut dev = Essd::new(EssdConfig::aws_io2(128 << 20));
    let normal = replay_with(&mut dev, &trace, &ReplayConfig::open_loop()).unwrap();
    let mut dev = Essd::new(EssdConfig::aws_io2(128 << 20));
    let fast = replay_with(
        &mut dev,
        &trace,
        &ReplayConfig::open_loop().with_speed(10.0),
    )
    .unwrap();
    assert_eq!(fast.ios, normal.ios);
    assert!(fast.finished_at < normal.finished_at);
    assert!(
        fast.latency.mean() > normal.latency.mean(),
        "10x-compressed bursts must queue harder ({} vs {})",
        fast.latency.mean().as_micros_f64(),
        normal.latency.mean().as_micros_f64()
    );
}
