//! The invariant property suites: every core seam is driven with random
//! op sequences and audited with its [`Contract`] after every step.
//!
//! These are the machine-checked forms of the structural invariants behind
//! the paper's unwritten contract — L2P/P2L bijectivity and valid-count
//! conservation in the FTL, token/resource conservation in the simulation
//! kernel, freeze/thaw exactness at the `CheckpointDevice` seam, and trace
//! entry monotonicity plus replay schedule equivalence at the capture
//! seam. A violation anywhere is shrunk by the vendored proptest to a
//! minimal failing op sequence.
//!
//! The fault-injection tests at the bottom prove the suites have teeth: a
//! deterministic bug seeded into the FTL map update (behind the test-only
//! `fault-injection` feature) is caught and reported with a repro of at
//! most 10 ops.

use proptest::prelude::*;
use proptest::runner::find_minimal;
use proptest::test_runner::Config as RunnerConfig;
use unwritten_contract::essd::{Essd, EssdConfig};
use unwritten_contract::flash::{FlashGeometry, FlashTiming};
use unwritten_contract::ftl::{Ftl, FtlConfig, GcPolicy, MapFault};
use unwritten_contract::prelude::*;
use unwritten_contract::sim::{ParallelResource, TokenBucket};
use unwritten_contract::ssd::{Ssd, SsdConfig};

// ---- uc-ftl: bijectivity + valid-count conservation -------------------

/// A GC-prone FTL small enough to audit after every op.
fn audit_ftl() -> Ftl {
    let g = FlashGeometry::new(2, 2, 1, 16, 64, 4096).unwrap();
    Ftl::new(
        FtlConfig::new(g, FlashTiming::mlc())
            .with_over_provisioning(0.2)
            .with_gc_policy(GcPolicy::Greedy),
    )
}

/// Applies one encoded op; writes dominate so GC keeps running.
fn apply_ftl_op(ftl: &mut Ftl, now: SimTime, sel: u8, slot: u64) -> SimTime {
    let lpn = slot % ftl.logical_pages();
    match sel % 4 {
        0 | 1 => ftl.write_page(now, lpn),
        2 => {
            ftl.trim(lpn);
            now
        }
        _ => ftl.read_page(now, lpn),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    // The full structural audit holds after every single map update, GC
    // move and trim of a random op sequence.
    #[test]
    fn ftl_contract_holds_after_every_op(
        ops in proptest::collection::vec((0u8..4, 0u64..1 << 20), 1..48)
    ) {
        let mut ftl = audit_ftl();
        let mut now = SimTime::ZERO;
        for &(sel, slot) in &ops {
            now = apply_ftl_op(&mut ftl, now, sel, slot);
            if let Err(v) = ftl.check() {
                return Err(TestCaseError::fail(v.to_string()));
            }
        }
        prop_assert_eq!(ftl.mapped_pages(), ftl.total_valid_pages());
    }

    // The audit also survives a checkpoint/restore cut at any point.
    #[test]
    fn ftl_contract_survives_checkpoint_cut(
        ops in proptest::collection::vec((0u8..4, 0u64..1 << 20), 1..48),
        cut in 0usize..48,
    ) {
        let cut = cut.min(ops.len());
        let mut ftl = audit_ftl();
        let mut now = SimTime::ZERO;
        for &(sel, slot) in &ops[..cut] {
            now = apply_ftl_op(&mut ftl, now, sel, slot);
        }
        let mut resumed = Ftl::restore(ftl.checkpoint());
        for &(sel, slot) in &ops[cut..] {
            now = apply_ftl_op(&mut resumed, now, sel, slot);
            if let Err(v) = resumed.check() {
                return Err(TestCaseError::fail(v.to_string()));
            }
        }
    }
}

// ---- uc-sim: token/resource conservation ------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // Token conservation: the balance never goes negative and never
    // exceeds the burst, through grants, rate changes, resets and
    // snapshot/restore cuts.
    #[test]
    fn token_bucket_conserves_through_random_ops(
        burst in 1u64..100_000,
        rate in 1u64..1_000_000,
        ops in proptest::collection::vec((0u8..8, 0u64..1_000_000, 0u64..100_000), 1..64),
    ) {
        let mut bucket = TokenBucket::new(burst as f64, rate as f64);
        let mut now = SimTime::ZERO;
        for &(sel, advance_ns, amount) in &ops {
            now += SimDuration::from_nanos(advance_ns);
            match sel % 8 {
                0..=4 => { bucket.reserve(now, amount); }
                5 => bucket.set_rate(now, (amount + 1) as f64),
                6 => bucket.reset(now),
                _ => {
                    let thawed = TokenBucket::restore(bucket.snapshot());
                    prop_assert_eq!(thawed.snapshot(), bucket.snapshot());
                    bucket = thawed;
                }
            }
            if let Err(v) = bucket.check() {
                return Err(TestCaseError::fail(v.to_string()));
            }
        }
    }

    // Server-count conservation: the k-server station never leaks or
    // duplicates a server, and freeze/thaw is exact mid-sequence.
    #[test]
    fn parallel_resource_conserves_servers(
        servers in 1usize..9,
        ops in proptest::collection::vec((0u64..1_000_000, 1u64..1_000_000), 1..64),
        cut in 0usize..64,
    ) {
        let cut = cut.min(ops.len());
        let mut station = ParallelResource::new(servers);
        let mut now = SimTime::ZERO;
        for (i, &(advance_ns, service_ns)) in ops.iter().enumerate() {
            if i == cut {
                let thawed = ParallelResource::restore(station.snapshot());
                prop_assert_eq!(thawed.snapshot(), station.snapshot());
                station = thawed;
            }
            now += SimDuration::from_nanos(advance_ns);
            station.acquire(now, SimDuration::from_nanos(service_ns));
            if let Err(v) = station.check() {
                return Err(TestCaseError::fail(v.to_string()));
            }
        }
        prop_assert_eq!(station.capacity(), servers);
    }
}

// ---- CheckpointDevice seam: freeze/thaw exactness ---------------------

/// Drives a QD1 closed loop of `(selector, slot)` ops (same encoding as
/// tests/checkpoint.rs) and returns every completion instant.
fn drive<D: BlockDevice>(dev: &mut D, ops: &[(u8, u64)], start: SimTime) -> Vec<SimTime> {
    let capacity = dev.info().capacity();
    let mut now = start;
    let mut completions = Vec::with_capacity(ops.len());
    for &(sel, slot) in ops {
        let len: u32 = match sel / 2 {
            0 => 4096,
            1 => 65536,
            _ => 262_144,
        };
        let offset = (slot % (capacity / len as u64)) * len as u64;
        let req = if sel % 2 == 0 {
            IoRequest::write(offset, len, now)
        } else {
            IoRequest::read(offset, len, now)
        };
        now = dev.submit(&req).expect("aligned in-range request");
        completions.push(now);
    }
    completions
}

/// The shared freeze/thaw property: the frozen checkpoint passes its
/// durability audit, and thawing it onto a fresh device is observationally
/// exact (same snapshot, same future completions).
fn freeze_thaw_is_exact<D, F, S>(build: F, snapshot: S, ops: &[(u8, u64)], cut: usize)
where
    D: BlockDevice + CheckpointDevice,
    F: Fn() -> D,
    S: Fn(&D) -> String,
{
    let cut = cut.min(ops.len());
    let mut original = build();
    let head = drive(&mut original, &ops[..cut], SimTime::ZERO);

    let frozen = original.checkpoint();
    frozen.check().expect("frozen checkpoint passes its audit");

    let mut thawed = build();
    thawed
        .restore_from(frozen)
        .expect("same-device restore succeeds");
    assert_eq!(
        snapshot(&original),
        snapshot(&thawed),
        "thaw(freeze(d)) must be observationally exact"
    );
    // The suffix behaves identically on both, resuming at the cut clock.
    let t_cut = head.last().copied().unwrap_or(SimTime::ZERO);
    let a = drive(&mut original, &ops[cut..], t_cut);
    let b = drive(&mut thawed, &ops[cut..], t_cut);
    assert_eq!(a, b, "post-thaw completions must be identical");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn ssd_freeze_thaw_is_exact(
        ops in proptest::collection::vec((0u8..6, 0u64..1_000_000), 1..80),
        cut in 0usize..80,
    ) {
        freeze_thaw_is_exact(
            || Ssd::new(SsdConfig::samsung_970_pro(128 << 20)),
            |d: &Ssd| format!("{:?}", d.snapshot()),
            &ops,
            cut,
        );
    }

    #[test]
    fn essd_freeze_thaw_is_exact(
        ops in proptest::collection::vec((0u8..6, 0u64..1_000_000), 1..80),
        cut in 0usize..80,
    ) {
        freeze_thaw_is_exact(
            || Essd::new(EssdConfig::alibaba_pl3(128 << 20)),
            |d: &Essd| format!("{:?}", d.snapshot()),
            &ops,
            cut,
        );
    }
}

// ---- uc-trace / uc-workload: monotonicity + replay equivalence --------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    // Entry monotonicity: a capture through the recorder is a valid trace
    // after every recorded request, and replaying the capture open-loop
    // against an identical fresh device reproduces the schedule exactly.
    #[test]
    fn capture_is_monotone_and_replay_is_equivalent(
        ops in proptest::collection::vec((0u8..6, 0u64..1_000_000, 0u64..200_000), 1..48)
    ) {
        let mut recorder = TraceRecorder::new(Ssd::new(SsdConfig::samsung_970_pro(128 << 20)));
        let capacity = recorder.info().capacity();
        let mut now = SimTime::ZERO;
        let mut completions = Vec::with_capacity(ops.len());
        for &(sel, slot, advance_ns) in &ops {
            now += SimDuration::from_nanos(advance_ns);
            let len: u32 = 4096 << (sel / 2 % 3);
            let offset = (slot % (capacity / len as u64)) * len as u64;
            let req = if sel % 2 == 0 {
                IoRequest::write(offset, len, now)
            } else {
                IoRequest::read(offset, len, now)
            };
            completions.push(recorder.submit(&req).expect("valid request"));
            if let Err(v) = recorder.trace().check() {
                return Err(TestCaseError::fail(v.to_string()));
            }
        }
        let trace = recorder.into_trace();
        prop_assert_eq!(trace.len(), ops.len());

        // Replay schedule equivalence: the same arrivals on an identical
        // fresh device complete at the same instants.
        let mut fresh = Ssd::new(SsdConfig::samsung_970_pro(128 << 20));
        let report = unwritten_contract::workload::replay(&mut fresh, &trace)
            .expect("captured trace replays");
        prop_assert_eq!(report.ios, ops.len() as u64);
        let last = completions.iter().max().copied().unwrap();
        prop_assert_eq!(report.finished_at, last);
    }
}

// ---- fault injection: the suites have teeth ---------------------------

/// Runs `ops` against an FTL with `fault` armed and audits the result;
/// the closure shape `find_minimal` shrinks.
fn faulted_run(
    fault: MapFault,
    ops: &[(u8, u64)],
) -> Result<(), proptest::test_runner::TestCaseError> {
    let mut ftl = audit_ftl();
    ftl.arm_fault(fault);
    let mut now = SimTime::ZERO;
    for &(sel, slot) in ops {
        now = apply_ftl_op(&mut ftl, now, sel, slot);
    }
    ftl.check()
        .map_err(|v| proptest::test_runner::TestCaseError::fail(v.to_string()))
}

/// Acceptance criterion: a seeded torn-map-update fault is caught by the
/// invariant machinery (the O(1) write hook in strict builds, the full
/// audit otherwise) with a shrunk repro of at most 10 ops.
#[test]
fn seeded_reverse_map_fault_is_caught_with_minimal_repro() {
    let strategy = proptest::collection::vec((0u8..4, 0u64..1 << 20), 1..40);
    let found = find_minimal(
        "seeded_reverse_map_fault",
        RunnerConfig::with_cases(32),
        &strategy,
        |ops: &Vec<(u8, u64)>| faulted_run(MapFault::DropReverseMapping, ops),
    )
    .expect("an armed map fault must be caught by the invariant suite");
    assert!(
        found.value.len() <= 10,
        "repro must shrink to <= 10 ops, got {} ({:?})",
        found.value.len(),
        found.value
    );
    // The minimal repro is the single faulted write.
    assert_eq!(
        found.value.len(),
        1,
        "one write op suffices: {:?}",
        found.value
    );
    assert!(found.value[0].0 % 4 <= 1, "the surviving op is a write");
}

/// Same teeth for the conservation audit: a skipped valid-count increment
/// (invisible to the O(1) round-trip hook) is caught by the full
/// [`Contract::check`] and shrunk to a single-write repro.
#[test]
fn seeded_valid_count_fault_is_caught_with_minimal_repro() {
    let strategy = proptest::collection::vec((0u8..4, 0u64..1 << 20), 1..40);
    let found = find_minimal(
        "seeded_valid_count_fault",
        RunnerConfig::with_cases(32),
        &strategy,
        |ops: &Vec<(u8, u64)>| faulted_run(MapFault::SkipValidCount, ops),
    )
    .expect("an armed conservation fault must be caught by the invariant suite");
    assert!(
        found.value.len() <= 10,
        "repro must shrink to <= 10 ops, got {} ({:?})",
        found.value.len(),
        found.value
    );
    assert!(
        found.message.contains("conservation") || found.message.contains("valid"),
        "failure names the conservation invariant: {}",
        found.message
    );
}

/// Determinism of the whole pipeline: the same seeded fault reports the
/// same minimal counterexample on every run.
#[test]
fn seeded_fault_repro_is_deterministic() {
    let strategy = proptest::collection::vec((0u8..4, 0u64..1 << 20), 1..40);
    let run = || {
        find_minimal(
            "seeded_fault_determinism",
            RunnerConfig::with_cases(16),
            &strategy,
            |ops: &Vec<(u8, u64)>| faulted_run(MapFault::DropReverseMapping, ops),
        )
        .expect("fault caught")
    };
    let first = run();
    let second = run();
    assert_eq!(first.value, second.value);
    assert_eq!(first.case, second.case);
    assert_eq!(first.shrink_steps, second.shrink_steps);
}
