//! Property-based tests over the core data structures and invariants.

use proptest::prelude::*;
use unwritten_contract::cluster::ChunkMap;
use unwritten_contract::flash::{FlashGeometry, FlashTiming};
use unwritten_contract::ftl::{Ftl, FtlConfig, GcPolicy};
use unwritten_contract::metrics::LatencyHistogram;
use unwritten_contract::prelude::*;
use unwritten_contract::sim::{EventQueue, TokenBucket};

/// Drives one op sequence against a fresh FTL and checks the mapping
/// invariants after every operation. Shared by the fast default proptest
/// and the `#[ignore]`-gated heavy configuration.
fn ftl_coherence_case(geometry: FlashGeometry, ops: &[(u8, u64)], policy: GcPolicy) {
    let mut ftl = Ftl::new(
        FtlConfig::new(geometry, FlashTiming::slc())
            .with_over_provisioning(0.12)
            .with_gc_policy(policy),
    );
    let pages = ftl.logical_pages();
    let mut now = SimTime::ZERO;
    let mut mapped = std::collections::HashSet::new();
    for &(op, lpn) in ops {
        let lpn = lpn % pages;
        match op {
            0 => {
                now = ftl.write_page(now, lpn);
                mapped.insert(lpn);
            }
            1 => {
                now = ftl.read_page(now, lpn);
            }
            _ => {
                ftl.trim(lpn);
                mapped.remove(&lpn);
            }
        }
        // Core invariants after every operation.
        assert_eq!(ftl.mapped_pages(), mapped.len() as u64);
        assert_eq!(ftl.total_valid_pages(), mapped.len() as u64);
    }
    for &lpn in &mapped {
        assert!(ftl.is_mapped(lpn));
    }
    assert!(ftl.free_blocks() > 0);
    assert!(ftl.stats().write_amplification() >= 1.0 || mapped.is_empty());
}

/// The original heavy FTL coherence sweep: 64 cases × up to 600 ops on
/// the full 2×2-die geometry, for all three GC policies. ~6 s, so it is
/// `#[ignore]`-gated; run it with `cargo test -- --ignored` before
/// touching the FTL or GC code.
#[test]
#[ignore = "heavy FTL sweep (~6 s); run with --ignored when changing uc-ftl"]
fn ftl_mapping_stays_coherent_heavy() {
    let mut rng = unwritten_contract::sim::SimRng::new(0xF71);
    for case in 0..64u64 {
        let len = rng.range_u64(1, 600) as usize;
        let ops: Vec<(u8, u64)> = (0..len)
            .map(|_| (rng.range_u64(0, 3) as u8, rng.range_u64(0, 2048)))
            .collect();
        let policy = match case % 3 {
            0 => GcPolicy::Greedy,
            1 => GcPolicy::CostBenefit,
            _ => GcPolicy::Fifo,
        };
        ftl_coherence_case(
            FlashGeometry::new(2, 2, 1, 32, 32, 4096).unwrap(),
            &ops,
            policy,
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // ---- histogram ----------------------------------------------------

    #[test]
    fn histogram_percentiles_are_monotone_and_bounded(
        values in proptest::collection::vec(0u64..10_000_000_000, 1..400)
    ) {
        let mut h = LatencyHistogram::new();
        for &v in &values {
            h.record(SimDuration::from_nanos(v));
        }
        let mut last = SimDuration::ZERO;
        for p in [0.0, 25.0, 50.0, 75.0, 90.0, 99.0, 99.9, 100.0] {
            let q = h.percentile(p);
            prop_assert!(q >= last);
            prop_assert!(q >= h.min());
            prop_assert!(q <= h.max());
            last = q;
        }
        // Quantization never distorts more than ~1/64 relative error on
        // the max.
        let true_max = *values.iter().max().unwrap();
        prop_assert_eq!(h.max().as_nanos(), true_max);
        prop_assert_eq!(h.count(), values.len() as u64);
    }

    #[test]
    fn histogram_merge_equals_bulk_recording(
        a in proptest::collection::vec(1u64..1_000_000_000, 0..100),
        b in proptest::collection::vec(1u64..1_000_000_000, 0..100),
    ) {
        let mut ha = LatencyHistogram::new();
        let mut hb = LatencyHistogram::new();
        let mut hall = LatencyHistogram::new();
        for &v in &a {
            ha.record(SimDuration::from_nanos(v));
            hall.record(SimDuration::from_nanos(v));
        }
        for &v in &b {
            hb.record(SimDuration::from_nanos(v));
            hall.record(SimDuration::from_nanos(v));
        }
        ha.merge(&hb);
        prop_assert_eq!(ha.count(), hall.count());
        prop_assert_eq!(ha.mean(), hall.mean());
        prop_assert_eq!(ha.percentile(99.0), hall.percentile(99.0));
    }

    // ---- token bucket ---------------------------------------------------

    #[test]
    fn token_bucket_never_exceeds_rate_plus_burst(
        requests in proptest::collection::vec(1u64..200_000, 1..200),
        rate in 1_000.0f64..1e9,
        burst in 1.0f64..1e6,
    ) {
        let mut tb = TokenBucket::new(burst, rate);
        let mut grant = SimTime::ZERO;
        let mut total = 0u64;
        for &r in &requests {
            grant = tb.reserve(grant, r);
            total += r;
        }
        // Everything granted by `grant` must fit in burst + rate*elapsed,
        // up to one nanosecond of grant-time rounding per reserve call.
        let elapsed = grant.as_secs_f64();
        let rounding_slack = requests.len() as f64 * rate * 1e-9 + 1.0;
        prop_assert!(
            total as f64 <= burst + rate * elapsed + rounding_slack,
            "granted {} tokens in {}s at rate {} burst {}",
            total, elapsed, rate, burst
        );
    }

    #[test]
    fn token_bucket_grants_are_monotone(
        requests in proptest::collection::vec(1u64..100_000, 1..100),
    ) {
        let mut tb = TokenBucket::new(1e4, 1e6);
        let mut last = SimTime::ZERO;
        for &r in &requests {
            let g = tb.reserve(last, r);
            prop_assert!(g >= last);
            last = g;
        }
    }

    // ---- event queue ----------------------------------------------------

    #[test]
    fn event_queue_pops_sorted(times in proptest::collection::vec(0u64..1_000_000, 0..300)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(SimTime::from_nanos(t), i);
        }
        let mut last = SimTime::ZERO;
        let mut n = 0;
        while let Some((t, _)) = q.pop() {
            prop_assert!(t >= last);
            last = t;
            n += 1;
        }
        prop_assert_eq!(n, times.len());
    }

    // ---- chunk map -------------------------------------------------------

    #[test]
    fn chunk_map_fragments_partition_any_range(
        chunk_kib in 1u64..4096,
        offset in 0u64..(1 << 40),
        len in 1u32..(64 << 20),
    ) {
        let map = ChunkMap::new(chunk_kib * 1024, 8, 3, 42);
        let frags = map.fragments(offset, len);
        let total: u64 = frags.iter().map(|&(_, l)| l as u64).sum();
        prop_assert_eq!(total, len as u64);
        // Fragments are contiguous and chunk-monotone.
        let mut cursor = offset;
        for &(chunk, l) in &frags {
            prop_assert_eq!(map.chunk_of(cursor), chunk);
            // No fragment crosses a chunk boundary.
            prop_assert_eq!(map.chunk_of(cursor + l as u64 - 1), chunk);
            cursor += l as u64;
        }
    }

    #[test]
    fn chunk_map_replicas_always_distinct(
        nodes in 3usize..50,
        replication in 1usize..3,
        chunk in 0u64..1_000_000,
        seed in any::<u64>(),
    ) {
        let map = ChunkMap::new(1 << 20, nodes, replication.min(nodes), seed);
        let replicas = map.replicas(chunk);
        let mut sorted = replicas.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), replicas.len());
        prop_assert!(replicas.iter().all(|&n| n < nodes));
    }

    // ---- FTL --------------------------------------------------------------

    // The fast default: a geometry a quarter the heavy one's size and
    // shorter op sequences still walk every GC policy through allocation,
    // overwrite, trim and collection. The original 64-case × 600-op
    // configuration (~6 s of the test wall clock) lives on in the
    // `#[ignore]`-gated `ftl_mapping_stays_coherent_heavy` below.
    #[test]
    fn ftl_mapping_stays_coherent_under_arbitrary_ops(
        ops in proptest::collection::vec((0u8..3, 0u64..1024), 1..150),
        policy in prop_oneof![
            Just(GcPolicy::Greedy),
            Just(GcPolicy::CostBenefit),
            Just(GcPolicy::Fifo)
        ],
    ) {
        ftl_coherence_case(FlashGeometry::new(2, 1, 1, 16, 32, 4096).unwrap(), &ops, policy);
    }

    // ---- drivers ----------------------------------------------------------

    #[test]
    fn driver_conserves_io_accounting(
        qd in 1usize..16,
        ios in 1u64..300,
        io_size_kib in 1u32..64,
    ) {
        let mut dev = Ssd::new(SsdConfig::samsung_970_pro(256 << 20));
        let spec = JobSpec::new(AccessPattern::RandWrite, io_size_kib * 4096, qd)
            .with_io_limit(ios);
        let report = run_job(&mut dev, &spec).unwrap();
        prop_assert_eq!(report.ios, ios);
        prop_assert_eq!(report.bytes, ios * (io_size_kib as u64 * 4096));
        prop_assert_eq!(report.latency.count(), ios);
        prop_assert_eq!(
            report.read_latency.count() + report.write_latency.count(),
            ios
        );
        prop_assert_eq!(report.throughput.total_bytes(), report.bytes);
    }
}
