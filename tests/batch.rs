//! Queue-pair API contract tests: batched submission must reproduce the
//! request-at-a-time schedules exactly, and the parallel experiment
//! executor must produce byte-identical results at any width.

use proptest::prelude::*;
use unwritten_contract::core::experiments::{fig2, fig5, Executor, Fig2Config, Fig5Config};
use unwritten_contract::core::report::{render_fig2_grid, render_fig5};
use unwritten_contract::prelude::*;

/// Builds the request sequence an op list encodes: 4 KiB-aligned,
/// in-range, with non-decreasing submit times.
fn requests_from_ops(ops: &[(u8, u64, u64)], capacity: u64) -> Vec<IoRequest> {
    let mut now = SimTime::ZERO;
    ops.iter()
        .map(|&(kind, slot, advance_ns)| {
            now += SimDuration::from_nanos(advance_ns);
            let len = 4096u32 << (kind % 3); // 4, 8 or 16 KiB
            let offset = (slot % (capacity / (64 << 10))) * (64 << 10);
            if kind % 2 == 0 {
                IoRequest::read(offset, len, now)
            } else {
                IoRequest::write(offset, len, now)
            }
        })
        .collect()
}

/// Asserts `submit_batch` equals consecutive `submit` calls on two fresh
/// instances of the same device, for every chunking of the sequence.
fn assert_batch_equivalence<D: BlockDevice>(mut sequential: D, mut batched: D, reqs: &[IoRequest]) {
    let expected: Vec<SimTime> = reqs.iter().map(|r| sequential.submit(r).unwrap()).collect();
    let mut got = Vec::with_capacity(reqs.len());
    // Mixed batch sizes: 1, then 2, then 4, ... exercises both the
    // singleton path and fat doorbells.
    let mut cursor = 0usize;
    let mut width = 1usize;
    while cursor < reqs.len() {
        let end = (cursor + width).min(reqs.len());
        let batch: IoBatch = reqs[cursor..end].iter().copied().collect();
        for c in batched.submit_batch(&batch).unwrap() {
            got.push(c.completes);
        }
        cursor = end;
        width = (width * 2).min(64);
    }
    assert_eq!(got, expected);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn ssd_batch_completions_match_sequential_submit(
        ops in proptest::collection::vec((0u8..6, 0u64..4096, 0u64..200_000), 1..120)
    ) {
        let capacity = 256 << 20;
        let reqs = requests_from_ops(&ops, capacity);
        assert_batch_equivalence(
            Ssd::new(SsdConfig::samsung_970_pro(capacity)),
            Ssd::new(SsdConfig::samsung_970_pro(capacity)),
            &reqs,
        );
    }

    #[test]
    fn essd_batch_completions_match_sequential_submit(
        ops in proptest::collection::vec((0u8..6, 0u64..4096, 0u64..200_000), 1..120)
    ) {
        let capacity = 256 << 20;
        let reqs = requests_from_ops(&ops, capacity);
        assert_batch_equivalence(
            Essd::new(EssdConfig::aws_io2(capacity)),
            Essd::new(EssdConfig::aws_io2(capacity)),
            &reqs,
        );
        assert_batch_equivalence(
            Essd::new(EssdConfig::alibaba_pl3(capacity)),
            Essd::new(EssdConfig::alibaba_pl3(capacity)),
            &reqs,
        );
    }
}

// ---- parallel experiment determinism ----------------------------------

fn small_roster() -> DeviceRoster {
    DeviceRoster::with_capacities(128 << 20, 256 << 20)
}

#[test]
fn parallel_fig2_is_byte_identical_to_sequential() {
    let roster = small_roster();
    let cfg = Fig2Config {
        io_sizes: vec![4 << 10, 64 << 10],
        queue_depths: vec![1, 8],
        ios_per_cell: 300,
    };
    let ssd_seq =
        fig2::run_with(&roster, DeviceKind::LocalSsd, &cfg, &Executor::sequential()).unwrap();
    let ssd_par = fig2::run_with(
        &roster,
        DeviceKind::LocalSsd,
        &cfg,
        &Executor::with_threads(8),
    )
    .unwrap();
    let essd_seq =
        fig2::run_with(&roster, DeviceKind::Essd1, &cfg, &Executor::sequential()).unwrap();
    let essd_par =
        fig2::run_with(&roster, DeviceKind::Essd1, &cfg, &Executor::with_threads(3)).unwrap();
    assert_eq!(ssd_seq, ssd_par);
    assert_eq!(essd_seq, essd_par);
    // The rendered report — what the bench binaries print — is identical
    // down to the byte.
    for pattern in 0..4 {
        assert_eq!(
            render_fig2_grid(&essd_par, &ssd_par, pattern, true),
            render_fig2_grid(&essd_seq, &ssd_seq, pattern, true),
        );
    }
}

#[test]
fn parallel_fig5_is_byte_identical_to_sequential() {
    let roster = small_roster();
    let cfg = Fig5Config {
        write_ratios: vec![0.0, 0.5, 1.0],
        ios_per_cell: 400,
        ..Fig5Config::paper()
    };
    for kind in DeviceKind::ALL {
        let seq = fig5::run_with(&roster, kind, &cfg, &Executor::sequential()).unwrap();
        let par = fig5::run_with(&roster, kind, &cfg, &Executor::with_threads(5)).unwrap();
        assert_eq!(seq, par, "{kind}");
        assert_eq!(render_fig5(&seq), render_fig5(&par), "{kind}");
    }
}

#[test]
fn scaled_roster_keeps_contract_shapes() {
    // A 2x-scaled roster doubles every capacity but must preserve the
    // qualitative contract (Observation 4 shape at reduced cells).
    let roster = DeviceRoster::with_capacities(96 << 20, 128 << 20).with_scale(2);
    assert_eq!(roster.capacity_of(DeviceKind::LocalSsd), 192 << 20);
    let cfg = Fig5Config {
        write_ratios: vec![0.0, 0.5, 1.0],
        ios_per_cell: 400,
        ..Fig5Config::paper()
    };
    let ssd = fig5::run(&roster, DeviceKind::LocalSsd, &cfg).unwrap();
    let e1 = fig5::run(&roster, DeviceKind::Essd1, &cfg).unwrap();
    let verdict = unwritten_contract::core::contract::check_observation4(&ssd, &[&e1]);
    assert!(verdict.passed, "{verdict}");
}
