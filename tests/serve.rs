//! Facade-level end-to-end tests of the served frontend: real sockets,
//! real threads, concurrent replay clients.
//!
//! The contract under test is the subsystem's acceptance bar: driving a
//! replay through a loopback server must produce a device-side report
//! **equal** (and byte-identically rendered) to the same replay run
//! in-process — plus the liveness properties around it (a stalled
//! client cannot block other sessions; ring-full backpressure always
//! converges).

use std::sync::Arc;
use unwritten_contract::core::report::render_serve_report;
use unwritten_contract::prelude::*;
use unwritten_contract::serve::{
    serve_sessions, Endpoint, Listener, PoolConfig, RemoteDevice, ServePool,
};
use unwritten_contract::workload::TraceEntry;

/// The lanes both the server under test and the in-process baseline
/// build: one per device class, in roster order.
fn lanes() -> Vec<(String, Box<dyn BlockDevice + Send>)> {
    let roster = DeviceRoster::scaled_default();
    DeviceKind::ALL
        .into_iter()
        .enumerate()
        .map(|(i, kind)| (format!("lane{i}-{}", kind.label()), roster.build(kind)))
        .collect()
}

/// The per-lane replay trace: seeded by lane so concurrent clients make
/// distinct (but individually deterministic) traffic.
fn lane_trace(lane: usize) -> Trace {
    Trace::bursty_writes(
        4,
        8,
        SimDuration::from_millis(1),
        4096,
        16 << 20,
        0x7ACE + lane as u64,
    )
}

/// A TCP loopback server, one concurrent replay client per lane: the
/// device-side report equals — and renders byte-identically to — the
/// same replays driven in-process. The network must not perturb the
/// simulated schedule.
#[test]
fn loopback_replay_matches_in_process_report() {
    let pool = Arc::new(ServePool::new(lanes(), PoolConfig::default()));
    let listener = Listener::bind(&Endpoint::parse("tcp:127.0.0.1:0").unwrap()).unwrap();
    let endpoint = listener.local_endpoint().unwrap();
    let server = {
        let pool = Arc::clone(&pool);
        let sessions = DeviceKind::ALL.len();
        std::thread::spawn(move || serve_sessions(&listener, &pool, sessions))
    };

    let clients: Vec<_> = (0..DeviceKind::ALL.len())
        .map(|lane| {
            let endpoint = endpoint.clone();
            std::thread::spawn(move || {
                let mut dev = RemoteDevice::open(&endpoint, lane as u32).unwrap();
                let trace = lane_trace(lane);
                let report = replay_with(&mut dev, &trace, &ReplayConfig::open_loop()).unwrap();
                assert_eq!(report.ios as usize, trace.len(), "lane {lane}");
                dev.close().unwrap();
            })
        })
        .collect();
    for c in clients {
        c.join().unwrap();
    }
    server.join().unwrap().unwrap();
    let over_the_wire = pool.report();

    // The same replays, in-process on a fresh pool (lanes are
    // independent, so sequential == concurrent).
    let baseline_pool = ServePool::new(lanes(), PoolConfig::default());
    for lane in 0..DeviceKind::ALL.len() {
        let mut dev = baseline_pool.device(lane).unwrap();
        replay_with(&mut dev, &lane_trace(lane), &ReplayConfig::open_loop()).unwrap();
    }
    let in_process = baseline_pool.report();

    assert_eq!(over_the_wire, in_process);
    assert_eq!(
        render_serve_report(&over_the_wire),
        render_serve_report(&in_process)
    );
    assert_eq!(over_the_wire.busy_ring_full, 0);
    assert_eq!(over_the_wire.shed_overload, 0);
}

/// A client that opens a session and then stalls holds its connection —
/// but not the pool: another session's full replay completes while the
/// slow client sits silent.
#[test]
fn stalled_client_does_not_block_other_sessions() {
    let pool = Arc::new(ServePool::new(lanes(), PoolConfig::default()));
    let listener = Listener::bind(&Endpoint::parse("tcp:127.0.0.1:0").unwrap()).unwrap();
    let endpoint = listener.local_endpoint().unwrap();
    let server = {
        let pool = Arc::clone(&pool);
        std::thread::spawn(move || serve_sessions(&listener, &pool, 2))
    };

    // The slow client: opens lane 0, then does nothing until told.
    let (release, released) = std::sync::mpsc::channel::<()>();
    let slow = {
        let endpoint = endpoint.clone();
        std::thread::spawn(move || {
            let dev = RemoteDevice::open(&endpoint, 0).unwrap();
            released.recv().unwrap();
            dev.close().unwrap();
        })
    };

    // The fast client replays a full trace on lane 1 while the slow one
    // is still stalled mid-session.
    let mut dev = RemoteDevice::open(&endpoint, 1).unwrap();
    let trace = lane_trace(1);
    let report = replay_with(&mut dev, &trace, &ReplayConfig::open_loop()).unwrap();
    assert_eq!(report.ios as usize, trace.len());
    let stats = dev.session_stats().unwrap();
    assert_eq!(stats.stats.ios as usize, trace.len());
    dev.close().unwrap();

    release.send(()).unwrap();
    slow.join().unwrap();
    server.join().unwrap().unwrap();
    assert_eq!(pool.report().total_ios() as usize, trace.len());
}

/// A server ring smaller than the client's doorbells: every submit is
/// refused ring-full, the client splits until batches fit, and the
/// replay still lands every I/O — backpressure converges, with the
/// device-side ledger intact.
#[test]
fn ring_full_splits_converge_and_account_every_io() {
    let config = PoolConfig {
        ring: 4,
        ..Default::default()
    };
    let pool = Arc::new(ServePool::new(lanes(), config));
    let listener = Listener::bind(&Endpoint::parse("tcp:127.0.0.1:0").unwrap()).unwrap();
    let endpoint = listener.local_endpoint().unwrap();
    let server = {
        let pool = Arc::clone(&pool);
        std::thread::spawn(move || serve_sessions(&listener, &pool, 1))
    };

    // Three 16-wide same-instant bursts: the open-loop replayer
    // doorbells each burst whole, which the 4-slot server ring refuses.
    let entries: Vec<TraceEntry> = (0..48)
        .map(|i| TraceEntry {
            at: SimTime::from_nanos((i / 16) * 1_000_000),
            kind: unwritten_contract::blockdev::IoKind::Write,
            offset: (i % 16) * 8192,
            len: 4096,
        })
        .collect();
    let trace = Trace::from_entries(entries);

    let mut dev = RemoteDevice::open(&endpoint, 0).unwrap();
    let report = replay_with(&mut dev, &trace, &ReplayConfig::open_loop()).unwrap();
    assert_eq!(report.ios, 48);
    assert!(
        dev.ring_full_splits() > 0,
        "a 16-wide doorbell must have been refused by the 4-slot ring"
    );
    dev.close().unwrap();
    server.join().unwrap().unwrap();

    let report = pool.report();
    assert!(report.busy_ring_full > 0);
    assert_eq!(report.total_ios(), 48);
    assert_eq!(report.total_bytes(), 48 * 4096);
}
