//! Facade-level end-to-end tests of the served frontend: real sockets,
//! real threads, concurrent replay clients — all driven by the
//! single-thread `uc.wire.v2` event loop.
//!
//! The contract under test is the subsystem's acceptance bar: driving a
//! replay through a loopback server must produce a device-side report
//! **equal** (and byte-identically rendered) to the same replay run
//! in-process — *including* when the TCP connection is killed at an
//! arbitrary frame boundary and the client reconnects and RESUMEs. The
//! liveness properties ride along: a stalled client cannot block other
//! sessions, ring-full backpressure always converges, and an
//! overloaded pool sheds typed `BUSY` frames it later recovers from.

use proptest::prelude::*;
use std::sync::{Arc, OnceLock};
use unwritten_contract::core::report::render_serve_report;
use unwritten_contract::fleet::{FleetDevice, TenantSpec};
use unwritten_contract::prelude::*;
use unwritten_contract::serve::{
    serve_events, Body, BusyReason, Endpoint, Frame, FrameHeader, LaneTarget, Listener, PoolConfig,
    RemoteDevice, ServePool, ServeReport, WireClient, WIRE_VERSION,
};
use unwritten_contract::workload::TraceEntry;

/// The lanes both the server under test and the in-process baseline
/// build: one per device class, in roster order.
fn lanes() -> Vec<(String, Box<dyn BlockDevice + Send>)> {
    let roster = DeviceRoster::scaled_default();
    DeviceKind::ALL
        .into_iter()
        .enumerate()
        .map(|(i, kind)| (format!("lane{i}-{}", kind.label()), roster.build(kind)))
        .collect()
}

/// The per-lane replay trace: seeded by lane so concurrent clients make
/// distinct (but individually deterministic) traffic.
fn lane_trace(lane: usize) -> Trace {
    Trace::bursty_writes(
        4,
        8,
        SimDuration::from_millis(1),
        4096,
        16 << 20,
        0x7ACE + lane as u64,
    )
}

fn tcp_listener() -> (Listener, Endpoint) {
    let listener = Listener::bind(&Endpoint::parse("tcp:127.0.0.1:0").unwrap()).unwrap();
    let endpoint = listener.local_endpoint().unwrap();
    (listener, endpoint)
}

/// A TCP loopback server, one concurrent replay client per lane: the
/// device-side report equals — and renders byte-identically to — the
/// same replays driven in-process. The network must not perturb the
/// simulated schedule.
#[test]
fn loopback_replay_matches_in_process_report() {
    let pool = Arc::new(ServePool::new(lanes(), PoolConfig::default()));
    let (listener, endpoint) = tcp_listener();
    let server = {
        let pool = Arc::clone(&pool);
        let sessions = DeviceKind::ALL.len();
        std::thread::spawn(move || serve_events(&listener, &pool, sessions))
    };

    let clients: Vec<_> = (0..DeviceKind::ALL.len())
        .map(|lane| {
            let endpoint = endpoint.clone();
            std::thread::spawn(move || {
                let mut dev = RemoteDevice::open(&endpoint, lane as u32).unwrap();
                let trace = lane_trace(lane);
                let report = replay_with(&mut dev, &trace, &ReplayConfig::open_loop()).unwrap();
                assert_eq!(report.ios as usize, trace.len(), "lane {lane}");
                dev.close().unwrap();
            })
        })
        .collect();
    for c in clients {
        c.join().unwrap();
    }
    let stats = server.join().unwrap().unwrap();
    assert_eq!(stats.sessions_served as usize, DeviceKind::ALL.len());
    assert_eq!(stats.resumes, 0, "no connection was killed");
    let over_the_wire = pool.report();

    // The same replays, in-process on a fresh pool (lanes are
    // independent, so sequential == concurrent).
    let baseline_pool = ServePool::new(lanes(), PoolConfig::default());
    for lane in 0..DeviceKind::ALL.len() {
        let mut dev = baseline_pool.device(lane).unwrap();
        replay_with(&mut dev, &lane_trace(lane), &ReplayConfig::open_loop()).unwrap();
    }
    let in_process = baseline_pool.report();

    assert_eq!(over_the_wire, in_process);
    assert_eq!(
        render_serve_report(&over_the_wire),
        render_serve_report(&in_process)
    );
    assert_eq!(over_the_wire.busy_ring_full, 0);
    assert_eq!(over_the_wire.shed_overload, 0);
}

/// One session, many lanes: a single `WireClient` attaches every device
/// class and interleaves their submits over one connection — the pool
/// ledger comes out identical to the same submits driven in-process,
/// lane by lane.
#[test]
fn one_session_multiplexes_every_device_lane() {
    let pool = Arc::new(ServePool::new(lanes(), PoolConfig::default()));
    let (listener, endpoint) = tcp_listener();
    let server = {
        let pool = Arc::clone(&pool);
        std::thread::spawn(move || serve_events(&listener, &pool, 1))
    };

    let mut client = WireClient::connect(&endpoint).unwrap();
    let traces: Vec<Trace> = (0..DeviceKind::ALL.len()).map(lane_trace).collect();
    let wire_lanes: Vec<u32> = (0..DeviceKind::ALL.len())
        .map(|d| {
            let (lane, _, capacity, _) = client.attach(LaneTarget::Device(d as u32)).unwrap();
            assert!(capacity > 0);
            lane
        })
        .collect();
    // Round-robin across lanes, one request at a time: the whole point
    // of multiplexing is that interleaving cannot perturb any lane's
    // deterministic schedule.
    let deepest = traces.iter().map(Trace::len).max().unwrap();
    for i in 0..deepest {
        for (d, trace) in traces.iter().enumerate() {
            let Some(e) = trace.entries().get(i) else {
                continue;
            };
            let req = match e.kind {
                unwritten_contract::blockdev::IoKind::Write => {
                    IoRequest::write(e.offset, e.len, e.at)
                }
                unwritten_contract::blockdev::IoKind::Read => {
                    IoRequest::read(e.offset, e.len, e.at)
                }
            };
            match client
                .call(wire_lanes[d], Body::Submit { reqs: vec![req] })
                .unwrap()
            {
                Body::Completions { completions } => assert_eq!(completions.len(), 1),
                other => panic!("lane {d}: expected COMPLETIONS, got {other:?}"),
            }
        }
    }
    client.close().unwrap();
    let stats = server.join().unwrap().unwrap();
    assert_eq!(stats.sessions_served, 1, "all lanes rode one session");
    assert_eq!(stats.connections_accepted, 1);

    // The same submits, in-process, one pool session per device in the
    // same attach order.
    let baseline_pool = ServePool::new(lanes(), PoolConfig::default());
    for (d, trace) in traces.iter().enumerate() {
        let mut dev = baseline_pool.device(d).unwrap();
        for e in trace.entries() {
            let req = match e.kind {
                unwritten_contract::blockdev::IoKind::Write => {
                    IoRequest::write(e.offset, e.len, e.at)
                }
                unwritten_contract::blockdev::IoKind::Read => {
                    IoRequest::read(e.offset, e.len, e.at)
                }
            };
            dev.submit(&req).unwrap();
        }
    }
    assert_eq!(pool.report(), baseline_pool.report());
}

/// A client that opens a session and then stalls holds its connection —
/// but not the pool: another session's full replay completes while the
/// slow client sits silent.
#[test]
fn stalled_client_does_not_block_other_sessions() {
    let pool = Arc::new(ServePool::new(lanes(), PoolConfig::default()));
    let (listener, endpoint) = tcp_listener();
    let server = {
        let pool = Arc::clone(&pool);
        std::thread::spawn(move || serve_events(&listener, &pool, 2))
    };

    // The slow client: opens lane 0, then does nothing until told.
    let (release, released) = std::sync::mpsc::channel::<()>();
    let slow = {
        let endpoint = endpoint.clone();
        std::thread::spawn(move || {
            let dev = RemoteDevice::open(&endpoint, 0).unwrap();
            released.recv().unwrap();
            dev.close().unwrap();
        })
    };

    // The fast client replays a full trace on lane 1 while the slow one
    // is still stalled mid-session.
    let mut dev = RemoteDevice::open(&endpoint, 1).unwrap();
    let trace = lane_trace(1);
    let report = replay_with(&mut dev, &trace, &ReplayConfig::open_loop()).unwrap();
    assert_eq!(report.ios as usize, trace.len());
    let stats = dev.session_stats().unwrap();
    assert_eq!(stats.stats.ios as usize, trace.len());
    dev.close().unwrap();

    release.send(()).unwrap();
    slow.join().unwrap();
    server.join().unwrap().unwrap();
    assert_eq!(pool.report().total_ios() as usize, trace.len());
}

/// A server ring smaller than the client's doorbells: every submit is
/// refused ring-full, the client splits until batches fit, and the
/// replay still lands every I/O — backpressure converges, with the
/// device-side ledger intact.
#[test]
fn ring_full_splits_converge_and_account_every_io() {
    let config = PoolConfig {
        ring: 4,
        ..Default::default()
    };
    let pool = Arc::new(ServePool::new(lanes(), config));
    let (listener, endpoint) = tcp_listener();
    let server = {
        let pool = Arc::clone(&pool);
        std::thread::spawn(move || serve_events(&listener, &pool, 1))
    };

    // Three 16-wide same-instant bursts: the open-loop replayer
    // doorbells each burst whole, which the 4-slot server ring refuses.
    let entries: Vec<TraceEntry> = (0..48)
        .map(|i| TraceEntry {
            at: SimTime::from_nanos((i / 16) * 1_000_000),
            kind: unwritten_contract::blockdev::IoKind::Write,
            offset: (i % 16) * 8192,
            len: 4096,
        })
        .collect();
    let trace = Trace::from_entries(entries);

    let mut dev = RemoteDevice::open(&endpoint, 0).unwrap();
    let report = replay_with(&mut dev, &trace, &ReplayConfig::open_loop()).unwrap();
    assert_eq!(report.ios, 48);
    assert!(
        dev.ring_full_splits() > 0,
        "a 16-wide doorbell must have been refused by the 4-slot ring"
    );
    dev.close().unwrap();
    server.join().unwrap().unwrap();

    let report = pool.report();
    assert!(report.busy_ring_full > 0);
    assert_eq!(report.total_ios(), 48);
    assert_eq!(report.total_bytes(), 48 * 4096);
}

/// One full churn run: a single-lane replay over TCP, optionally with
/// the connection killed after `kill` data-frame writes. Returns the
/// pool report, its rendering, the data frames the client wrote, and
/// the resumes it performed.
fn churn_run(kill: Option<u64>) -> (ServeReport, String, u64, u64) {
    let lane: Vec<(String, Box<dyn BlockDevice + Send>)> = vec![(
        "lane0-churn".to_string(),
        DeviceRoster::scaled_default().build(DeviceKind::LocalSsd),
    )];
    let pool = Arc::new(ServePool::new(lane, PoolConfig::default()));
    let (listener, endpoint) = tcp_listener();
    let server = {
        let pool = Arc::clone(&pool);
        std::thread::spawn(move || serve_events(&listener, &pool, 1))
    };
    let mut dev = RemoteDevice::open(&endpoint, 0).unwrap();
    if let Some(frames) = kill {
        dev.set_kill_after(frames);
    }
    let trace = lane_trace(0);
    let report = replay_with(&mut dev, &trace, &ReplayConfig::open_loop()).unwrap();
    assert_eq!(report.ios as usize, trace.len());
    let frames = dev.frames_sent();
    let resumes = dev.resumes();
    dev.close().unwrap();
    server.join().unwrap().unwrap();
    let report = pool.report();
    let rendered = render_serve_report(&report);
    (report, rendered, frames, resumes)
}

/// The uninterrupted run every killed run is compared against, measured
/// once (also yields the frame count the kill points are drawn from).
fn churn_baseline() -> &'static (ServeReport, String, u64) {
    static BASELINE: OnceLock<(ServeReport, String, u64)> = OnceLock::new();
    BASELINE.get_or_init(|| {
        let (report, rendered, frames, resumes) = churn_run(None);
        assert_eq!(resumes, 0);
        assert!(frames > 2, "the replay must span several frames");
        (report, rendered, frames)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    // The tentpole's determinism bar: kill the TCP connection after a
    // *random* number of frames — anywhere from the first attach to the
    // last submit — and the reconnect-and-RESUME replay must land a
    // pool report byte-identical to the uninterrupted run. (Killing on
    // the CLOSE frame is out of contract: a closed session is gone
    // server-side, by design.)
    #[test]
    fn a_killed_connection_resumes_to_a_byte_identical_report(kill_seed in any::<u64>()) {
        let (base_report, base_rendered, frames) = churn_baseline();
        // The kill counter arms *after* the attach, so `frames - 1` is
        // the last write that still belongs to the replay: every kill
        // point here severs the connection with submits outstanding.
        let kill = 1 + kill_seed % (frames - 1);
        let (report, rendered, _, resumes) = churn_run(Some(kill));
        prop_assert!(resumes >= 1, "the kill at frame {} must force a resume", kill);
        prop_assert_eq!(&report, base_report, "kill at frame {}", kill);
        prop_assert_eq!(&rendered, base_rendered, "kill at frame {}", kill);
    }
}

/// Overload shedding is typed and recoverable: with a one-batch
/// in-flight ceiling, a client that submits a huge batch and never
/// reads its completions parks the pool's only slot (the response
/// cannot drain into the dead socket buffer) — a second client's
/// submits are then refused with `BUSY(overload)`, and succeed again
/// once the stalled client finally drains.
#[test]
fn overload_shed_is_typed_and_the_pool_recovers() {
    const STALL_REQS: u64 = 32 * 1024;
    let sock = std::env::temp_dir().join(format!("uc-serve-overload-{}.sock", std::process::id()));
    let _ = std::fs::remove_file(&sock);
    // A Unix socket's default buffers are far smaller than the ~1 MiB
    // completions response, so the stall is deterministic.
    let endpoint = Endpoint::parse(&format!("uds:{}", sock.display())).unwrap();
    let config = PoolConfig {
        ring: STALL_REQS as usize,
        max_inflight: 1,
        ..Default::default()
    };
    let pool = Arc::new(ServePool::new(lanes(), config));
    let listener = Listener::bind(&endpoint).unwrap();
    let server = {
        let pool = Arc::clone(&pool);
        std::thread::spawn(move || serve_events(&listener, &pool, 2))
    };

    // The stalling client, hand-framed so it can *not* read: open,
    // attach, submit the huge batch, then leave the response parked.
    let mut stall_rx = endpoint.connect().unwrap();
    let mut stall_tx = stall_rx.try_clone_stream().unwrap();
    Frame::new(
        FrameHeader::connection(),
        Body::Open {
            version: WIRE_VERSION,
        },
    )
    .write_to(&mut stall_tx)
    .unwrap();
    let token = match Frame::read_from(&mut stall_rx).unwrap().unwrap().body {
        Body::OpenOk { token } => token,
        other => panic!("expected OPEN_OK, got {other:?}"),
    };
    let header = |lane: u32, seq: u64| FrameHeader {
        session: token,
        lane,
        seq,
    };
    Frame::new(
        header(0, 1),
        Body::Attach {
            target: LaneTarget::Device(0),
        },
    )
    .write_to(&mut stall_tx)
    .unwrap();
    let lane = match Frame::read_from(&mut stall_rx).unwrap().unwrap().body {
        Body::AttachOk { lane, .. } => lane,
        other => panic!("expected ATTACH_OK, got {other:?}"),
    };
    let reqs: Vec<IoRequest> = (0..STALL_REQS)
        .map(|i| IoRequest::write((i % 4096) * 4096, 4096, SimTime::from_nanos(i)))
        .collect();
    Frame::new(header(lane, 1), Body::Submit { reqs })
        .write_to(&mut stall_tx)
        .unwrap();

    // The probing client: poke with single-request submits until the
    // parked batch trips the in-flight ceiling.
    let mut probe = WireClient::connect(&endpoint).unwrap();
    let (probe_lane, ..) = probe.attach(LaneTarget::Device(0)).unwrap();
    let mut shed = false;
    for i in 0..500u64 {
        let req = IoRequest::write(0, 4096, SimTime::from_nanos(STALL_REQS + i));
        match probe
            .call(probe_lane, Body::Submit { reqs: vec![req] })
            .unwrap()
        {
            Body::Busy {
                reason: BusyReason::Overload,
            } => {
                shed = true;
                break;
            }
            Body::Completions { .. } => std::thread::sleep(std::time::Duration::from_millis(2)),
            other => panic!("expected COMPLETIONS or BUSY, got {other:?}"),
        }
    }
    assert!(shed, "the parked batch must trip the in-flight ceiling");

    // The stalled client drains its completions: the slot frees and the
    // probe's submits succeed again.
    match Frame::read_from(&mut stall_rx).unwrap().unwrap().body {
        Body::Completions { completions } => assert_eq!(completions.len() as u64, STALL_REQS),
        other => panic!("expected the parked COMPLETIONS, got {other:?}"),
    }
    let mut recovered = false;
    for i in 0..500u64 {
        let req = IoRequest::write(0, 4096, SimTime::from_nanos(2 * STALL_REQS + i));
        match probe
            .call(probe_lane, Body::Submit { reqs: vec![req] })
            .unwrap()
        {
            Body::Completions { .. } => {
                recovered = true;
                break;
            }
            Body::Busy { .. } => std::thread::sleep(std::time::Duration::from_millis(2)),
            other => panic!("expected COMPLETIONS or BUSY, got {other:?}"),
        }
    }
    assert!(recovered, "draining the stalled client must free the slot");

    probe.close().unwrap();
    Frame::new(header(0, 2), Body::Close)
        .write_to(&mut stall_tx)
        .unwrap();
    match Frame::read_from(&mut stall_rx).unwrap().unwrap().body {
        Body::CloseOk => {}
        other => panic!("expected CLOSE_OK, got {other:?}"),
    }
    server.join().unwrap().unwrap();
    assert!(pool.report().shed_overload >= 1);
    let _ = std::fs::remove_file(&sock);
}

/// Fleet tenants served as wire lanes: three multi-lane clients feed a
/// fed fleet over loopback — one of them killed and resumed mid-epoch —
/// and the server-side fleet report equals the same fleet generated and
/// run in-process.
#[test]
fn fleet_lanes_over_the_wire_match_the_in_process_fleet() {
    const TENANTS: usize = 6;
    const CLIENTS: usize = 3;
    const EPOCHS: usize = 2;
    let fleet_config = || {
        FleetConfig::new(TENANTS, 2)
            .with_duration(SimDuration::from_millis(20))
            .with_epochs(EPOCHS)
            .with_rebalance(RebalancePolicy::default())
    };
    let fleet_pool = || -> Vec<FleetDevice> {
        (0..2)
            .map(|i| {
                let config = EssdConfig::alibaba_pl3(64 << 20)
                    .with_name(format!("fleet-essd-{i}"))
                    .with_seed(7 ^ i as u64);
                Box::new(Essd::new(config)) as FleetDevice
            })
            .collect()
    };

    let in_process = FleetSim::new(fleet_config(), fleet_pool())
        .run()
        .expect("in-process fleet runs");

    let pool = Arc::new(ServePool::new_fleet(
        FleetSim::new_fed(fleet_config(), fleet_pool()),
        PoolConfig::default(),
    ));
    let (listener, endpoint) = tcp_listener();
    let server = {
        let pool = Arc::clone(&pool);
        std::thread::spawn(move || serve_events(&listener, &pool, CLIENTS))
    };

    let clients: Vec<_> = (0..CLIENTS)
        .map(|i| {
            let endpoint = endpoint.clone();
            let config = fleet_config();
            std::thread::spawn(move || {
                let mut client = WireClient::connect(&endpoint).unwrap();
                if i == 1 {
                    // One client loses its connection mid-stream; the
                    // resumed replay must not perturb the fleet.
                    client.set_kill_after(3);
                }
                let mut wire_lanes = Vec::new();
                for t in (i..TENANTS).step_by(CLIENTS) {
                    let (lane, _, span, io_size) =
                        client.attach(LaneTarget::Tenant(t as u32)).unwrap();
                    // The client synthesizes the tenant's trace from the
                    // advertised geometry — same spec the fleet would
                    // generate itself.
                    let spec = TenantSpec::synthesize(
                        t as u32,
                        &config.mix,
                        config.seed,
                        span,
                        config.duration,
                        io_size,
                    );
                    let trace = spec.trace.generate();
                    for chunk in trace.entries().chunks(512) {
                        let reqs: Vec<IoRequest> = chunk
                            .iter()
                            .map(|e| match e.kind {
                                unwritten_contract::blockdev::IoKind::Write => {
                                    IoRequest::write(e.offset, e.len, e.at)
                                }
                                unwritten_contract::blockdev::IoKind::Read => {
                                    IoRequest::read(e.offset, e.len, e.at)
                                }
                            })
                            .collect();
                        match client.call(lane, Body::Submit { reqs }).unwrap() {
                            Body::PushOk { .. } => {}
                            other => panic!("tenant {t}: expected PUSH_OK, got {other:?}"),
                        }
                    }
                    wire_lanes.push(lane);
                }
                for epoch in 0..EPOCHS as u64 {
                    client.flush_epoch(&wire_lanes, epoch).unwrap();
                }
                let resumes = client.resumes();
                client.close().unwrap();
                resumes
            })
        })
        .collect();
    let resumes: u64 = clients.into_iter().map(|c| c.join().unwrap()).sum();
    let stats = server.join().unwrap().unwrap();
    assert!(resumes >= 1, "the killed client must have resumed");
    assert!(stats.resumes >= 1);
    assert_eq!(stats.sessions_served as usize, CLIENTS);

    assert_eq!(pool.fleet_report().unwrap(), in_process);
}
