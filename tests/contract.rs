//! End-to-end contract reproduction at reduced scale, plus failure
//! injection: the checker must *detect* devices that violate the contract.

use unwritten_contract::core::contract::{
    check_observation1, check_observation2, check_observation3, check_observation4,
};
use unwritten_contract::core::devices::{DeviceKind, DeviceRoster};
use unwritten_contract::core::experiments::{
    fig2, fig3, fig4, fig5, Fig2Config, Fig3Config, Fig4Config, Fig5Config,
};
use unwritten_contract::prelude::*;

fn small_roster() -> DeviceRoster {
    DeviceRoster::with_capacities(192 << 20, 384 << 20)
}

#[test]
fn observation1_reproduces_at_small_scale() {
    let roster = small_roster();
    let cfg = Fig2Config {
        io_sizes: vec![4 << 10, 256 << 10],
        queue_depths: vec![1, 16],
        ios_per_cell: 1_500,
    };
    let ssd = fig2::run(&roster, DeviceKind::LocalSsd, &cfg).unwrap();
    let e1 = fig2::run(&roster, DeviceKind::Essd1, &cfg).unwrap();
    let e2 = fig2::run(&roster, DeviceKind::Essd2, &cfg).unwrap();
    let verdict = check_observation1(&ssd, &[&e1, &e2]);
    assert!(verdict.passed, "{verdict}");
}

#[test]
fn observation2_reproduces_with_throttle_knee() {
    let roster = small_roster();
    // Run to 3x so ESSD-1's 2.55x flow limit becomes visible.
    let cfg = Fig3Config::paper();
    let ssd = fig3::run(&roster, DeviceKind::LocalSsd, &cfg).unwrap();
    let e1 = fig3::run(&roster, DeviceKind::Essd1, &cfg).unwrap();
    let e2 = fig3::run(&roster, DeviceKind::Essd2, &cfg).unwrap();
    let verdict = check_observation2(&[&ssd, &e1, &e2]);
    assert!(verdict.passed, "{verdict}");
    // ESSD-1's knee is the provider throttle, near its configured point.
    let knee = e1.knee_multiple().expect("ESSD-1 must be flow-limited");
    assert!(
        (2.3..2.9).contains(&knee),
        "throttle knee at {knee}, expected ~2.55"
    );
    // ESSD-2 never collapses.
    assert!(e2.knee_multiple().is_none());
}

#[test]
fn observation3_reproduces_with_provider_split() {
    let roster = small_roster();
    let cfg = Fig4Config {
        io_sizes: vec![4 << 10, 64 << 10],
        queue_depths: vec![32],
        ios_per_cell: 1_500,
    };
    let ssd = fig4::run(&roster, DeviceKind::LocalSsd, &cfg).unwrap();
    let e1 = fig4::run(&roster, DeviceKind::Essd1, &cfg).unwrap();
    let e2 = fig4::run(&roster, DeviceKind::Essd2, &cfg).unwrap();
    let verdict = check_observation3(&[&ssd, &e1, &e2]);
    assert!(verdict.passed, "{verdict}");
    // The provider asymmetry the paper stresses: ESSD-2's gain dwarfs
    // ESSD-1's.
    assert!(e2.max_gain().0 > e1.max_gain().0);
}

#[test]
fn observation4_reproduces() {
    let roster = small_roster();
    let cfg = Fig5Config {
        write_ratios: vec![0.0, 0.25, 0.5, 0.75, 1.0],
        io_size: 128 << 10,
        queue_depth: 32,
        ios_per_cell: 1_500,
    };
    let ssd = fig5::run(&roster, DeviceKind::LocalSsd, &cfg).unwrap();
    let e1 = fig5::run(&roster, DeviceKind::Essd1, &cfg).unwrap();
    let e2 = fig5::run(&roster, DeviceKind::Essd2, &cfg).unwrap();
    let verdict = check_observation4(&ssd, &[&e1, &e2]);
    assert!(verdict.passed, "{verdict}");
    // The budgets themselves: ~3.0 and ~1.1 GB/s.
    assert!(
        (e1.mean_total_gbps() - 3.0).abs() < 0.35,
        "{}",
        e1.mean_total_gbps()
    );
    assert!(
        (e2.mean_total_gbps() - 1.1).abs() < 0.2,
        "{}",
        e2.mean_total_gbps()
    );
}

// ---- failure injection: the checker must notice broken devices --------

#[test]
fn checker_detects_essd_without_budget_clamp() {
    // An "elastic" device with a sky-high budget behaves like raw backend
    // hardware: its bandwidth follows the mix and Observation 4 must fail
    // or the mean must drift from the nominal budget.
    let mut wobbly = fig5::Fig5Result {
        device: DeviceKind::Essd1,
        write_ratios: vec![0.0, 0.5, 1.0],
        total_gbps: vec![5.2, 3.1, 2.4],
        write_gbps: vec![0.0, 1.5, 2.4],
    };
    let ssd = fig5::Fig5Result {
        device: DeviceKind::LocalSsd,
        write_ratios: vec![0.0, 0.5, 1.0],
        total_gbps: vec![3.5, 3.0, 2.7],
        write_gbps: vec![0.0, 1.5, 2.7],
    };
    let verdict = check_observation4(&ssd, &[&wobbly]);
    assert!(!verdict.passed, "checker must flag unclamped bandwidth");
    // And a flat one passes.
    wobbly.total_gbps = vec![3.0, 3.0, 3.0];
    assert!(check_observation4(&ssd, &[&wobbly]).passed);
}

#[test]
fn checker_detects_cloud_latency_parity() {
    // If someone "fixes" the network away, Observation 1 must fail: build
    // a fake ESSD result equal to the SSD's grid.
    let roster = small_roster();
    let cfg = Fig2Config {
        io_sizes: vec![4 << 10],
        queue_depths: vec![1],
        ios_per_cell: 400,
    };
    let ssd = fig2::run(&roster, DeviceKind::LocalSsd, &cfg).unwrap();
    let mut fake = ssd.clone();
    fake.device = DeviceKind::Essd1;
    let verdict = check_observation1(&ssd, &[&fake]);
    assert!(!verdict.passed, "latency parity must violate Observation 1");
}

#[test]
fn throttle_can_be_disabled_and_the_knee_disappears() {
    // Ablating the provider policy removes ESSD-1's Figure 3 knee — the
    // knee really is the throttle, not an emergent artifact.
    let capacity = 192 << 20;
    let mut dev = Essd::new(EssdConfig::aws_io2(capacity).with_throttle(None));
    let spec = JobSpec::new(AccessPattern::RandWrite, 128 << 10, 32)
        .with_byte_limit(capacity * 3)
        .with_throughput_window(SimDuration::from_millis(2));
    let report = run_job(&mut dev, &spec).unwrap();
    let series = report.throughput.series().moving_average(5);
    let plateau = series.points()[series.len() / 10].1;
    let tail = series.points()[series.len() - 2].1;
    assert!(
        tail > plateau * 0.6,
        "without the throttle the run must sustain: plateau {plateau}, tail {tail}"
    );
}
