//! Facade-level acceptance tests for the observability stack: the
//! telemetry a run emits is *part of the run's deterministic output*,
//! not a best-effort side channel.
//!
//! Three bars are pinned:
//!
//! * **byte determinism** — two same-seed runs (served pool replay, and
//!   a full fleet simulation) capture `uc.obs.v1` reports that are
//!   byte-identical, both as rendered text and as framed record bytes
//!   (the CI obs-determinism step runs the same comparison through the
//!   `serve`/`fleet` binaries' `--obs-dump`);
//! * **live export equivalence** — a `uc.wire.metrics.v2` pull over a
//!   real socket returns the same rows a server-side snapshot shows,
//!   and the Prometheus endpoint renders that same snapshot;
//! * **postmortem usefulness** — a seeded contract violation produces a
//!   flight dump (written to disk, read back through the checksummed
//!   record envelope) whose last events name the violating seam.

use std::path::PathBuf;
use std::sync::Arc;
use unwritten_contract::essd::{Essd, EssdConfig};
use unwritten_contract::fleet::{FleetConfig, FleetDevice, FleetSim, RebalancePolicy};
use unwritten_contract::obs::ObsReport;
use unwritten_contract::prelude::*;
use unwritten_contract::serve::{
    serve_events, Endpoint, Listener, PoolConfig, RemoteDevice, ServePool, WireClient,
};

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("uc-facade-obs-tests")
        .join(format!("{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

/// The lanes the serve-path tests build: one per device class, in
/// roster order — the same construction `serve --inprocess` uses.
fn lanes() -> Vec<(String, Box<dyn BlockDevice + Send>)> {
    let roster = DeviceRoster::scaled_default();
    DeviceKind::ALL
        .into_iter()
        .enumerate()
        .map(|(i, kind)| (format!("lane{i}-{}", kind.label()), roster.build(kind)))
        .collect()
}

/// Per-lane replay traffic, seeded by lane.
fn lane_trace(lane: usize) -> Trace {
    Trace::bursty_writes(
        4,
        8,
        SimDuration::from_millis(1),
        4096,
        16 << 20,
        0x7ACE + lane as u64,
    )
}

/// Drives every lane of a fresh pool with its trace and captures the
/// pool's full telemetry report.
fn replayed_pool_report() -> ObsReport {
    let pool = ServePool::new(lanes(), PoolConfig::default());
    for lane in 0..DeviceKind::ALL.len() {
        let mut dev = pool.device(lane).unwrap();
        replay_with(&mut dev, &lane_trace(lane), &ReplayConfig::open_loop()).unwrap();
    }
    pool.obs_report()
}

/// A pool of small eSSDs for the fleet-path tests.
fn fleet_pool(devices: usize, seed: u64) -> Vec<FleetDevice> {
    (0..devices)
        .map(|i| {
            let config = EssdConfig::alibaba_pl3(64 << 20)
                .with_name(format!("fleet-essd-{i}"))
                .with_seed(seed ^ i as u64);
            Box::new(Essd::new(config)) as FleetDevice
        })
        .collect()
}

fn fleet_config(tenants: usize, devices: usize, seed: u64) -> FleetConfig {
    FleetConfig::new(tenants, devices)
        .with_duration(SimDuration::from_millis(10))
        .with_seed(seed)
        .with_rebalance(RebalancePolicy::default())
}

/// Runs a full fleet simulation and captures its telemetry.
fn fleet_report(seed: u64) -> ObsReport {
    let mut sim = FleetSim::new(fleet_config(10, 2, seed), fleet_pool(2, seed));
    sim.run().expect("fleet run");
    sim.obs_report()
}

/// Two identical served replays capture byte-identical `uc.obs.v1`
/// reports — rendered text and framed record bytes both.
#[test]
fn served_replay_telemetry_is_byte_deterministic() {
    let (a, b) = (replayed_pool_report(), replayed_pool_report());
    assert!(
        a.snapshot.counter("serve.pool.ios").unwrap() > 0,
        "the report must carry real traffic"
    );
    assert!(
        a.snapshot
            .histogram("serve.lane0.service_ns")
            .is_some_and(|h| h.count > 0),
        "per-lane service latency must be populated"
    );
    assert_eq!(a, b);
    assert_eq!(a.render_text(), b.render_text());
    assert_eq!(a.to_record_bytes(), b.to_record_bytes());
}

/// Two same-seed fleet simulations capture byte-identical telemetry —
/// including the flight-recorder tail (migration phases ride in it).
#[test]
fn fleet_telemetry_is_byte_deterministic() {
    let (a, b) = (fleet_report(0xF1EE7), fleet_report(0xF1EE7));
    assert!(
        a.snapshot.counter("fleet.ios").unwrap() > 0,
        "the report must carry real traffic"
    );
    assert!(
        a.snapshot
            .histogram("fleet.tenant_latency_ns")
            .is_some_and(|h| h.count > 0),
        "fleet-wide tenant latency must be populated"
    );
    assert_eq!(a, b);
    assert_eq!(a.to_record_bytes(), b.to_record_bytes());
    // A different seed genuinely changes the bytes — the comparison
    // above is not vacuous.
    assert_ne!(a.to_record_bytes(), fleet_report(0xBEEF).to_record_bytes());
}

/// A `uc.wire.metrics.v2` pull over a real socket returns the same rows
/// a server-side snapshot shows: remote observability is not a second,
/// subtly different bookkeeping path.
#[test]
fn wire_metrics_pull_matches_server_side_snapshot() {
    let pool = Arc::new(ServePool::new(lanes(), PoolConfig::default()));
    let listener = Listener::bind(&Endpoint::parse("tcp:127.0.0.1:0").unwrap()).unwrap();
    let endpoint = listener.local_endpoint().unwrap();
    let server = {
        let pool = Arc::clone(&pool);
        std::thread::spawn(move || serve_events(&listener, &pool, 2))
    };

    // Session 1: put traffic on lane 0, then pull metrics in-band.
    let mut dev = RemoteDevice::open(&endpoint, 0).unwrap();
    replay_with(&mut dev, &lane_trace(0), &ReplayConfig::open_loop()).unwrap();
    let pulled = dev.metrics().unwrap();
    dev.close().unwrap();

    // Session 2: a metrics-only observer session sees the same totals.
    let mut observer = WireClient::connect(&endpoint).unwrap();
    let observed = observer.metrics().unwrap();
    observer.close().unwrap();
    server.join().unwrap().unwrap();

    let server_side = pool.obs_snapshot();
    assert_eq!(
        pulled.counter("serve.pool.ios"),
        server_side.counter("serve.pool.ios")
    );
    assert_eq!(
        pulled.counter("serve.pool.ios"),
        Some(pool.report().total_ios())
    );
    assert_eq!(
        pulled.histogram("serve.lane0.service_ns").map(|h| h.count),
        server_side
            .histogram("serve.lane0.service_ns")
            .map(|h| h.count)
    );
    // The device's own internals crossed the wire too.
    assert_eq!(
        pulled.counter("serve.device0.ftl.host_pages_written"),
        server_side.counter("serve.device0.ftl.host_pages_written")
    );
    // The observer pulled after the replay session closed, so its view
    // contains the same pool totals.
    assert_eq!(
        observed.counter("serve.pool.ios"),
        server_side.counter("serve.pool.ios")
    );
    // The loop's own counters ride the pull (appended after the pool
    // rows) but stay out of the deterministic pool snapshot.
    assert!(observed.counter("serve.loop.polls").unwrap() > 0);
    assert_eq!(server_side.counter("serve.loop.polls"), None);
}

/// A seeded contract violation produces a flight dump — written to disk
/// through the `uc.obs.v1` record envelope and read back — whose last
/// events name the violating seam.
#[test]
fn seeded_violation_dump_names_the_violating_seam() {
    let dir = temp_dir("violation-dump");
    // 12 skewed tenants on 2 devices reliably migrate under the default
    // policy (the fleet suite pins this), so the armed fault fires.
    let seed = 7;
    let mut sim = FleetSim::new(fleet_config(12, 2, seed), fleet_pool(2, seed));
    sim.arm_migration_fault();
    let report = sim.run().expect("violations are findings, not errors");
    assert!(
        !report.violations.is_empty(),
        "the fault must trip a contract"
    );

    // Dump and reload through the checksummed record file — the same
    // artifact the crash hook and `--obs-dump` write.
    let path = dir.join("violation.obs");
    sim.obs_report().save_to(&path).unwrap();
    let dump = ObsReport::load_from(&path).unwrap();

    let tail: Vec<&str> = dump
        .events
        .iter()
        .rev()
        .take(8)
        .map(|e| e.what.as_str())
        .collect();
    assert!(
        tail.iter()
            .any(|w| w.starts_with("contract-violation:") && w.contains("every-tenant-placed")),
        "the dump's last events must name the violating seam: {tail:#?}"
    );
    assert!(dump.snapshot.counter("fleet.violations").unwrap() > 0);
    let _ = std::fs::remove_dir_all(&dir);
}
